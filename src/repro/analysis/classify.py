"""Static classification of indirect-branch sites.

Every ``jr``/``jalr``/``ret`` in the text section is tagged with a *role*
and, where the defining instructions are statically visible, a **sound
upper bound** on its target set:

``return``
    ``ret`` or ``jr ra``.  Bound: the return sites of the enclosing
    function — one past every direct call to it, plus one past every
    indirect call site if the function's address is taken.
``jump-table``
    ``jr`` fed by the canonical bounds-checked table-load idiom the MiniC
    compiler emits.  Bound: the distinct code addresses stored in the
    recovered table.
``indirect-call``
    ``jalr``.  Bound: the *address-taken* set — every code address
    materialised as a constant in text or stored as a word in data.
``computed-jump``
    a ``jr`` whose defining instructions could not be recovered.  Bound:
    every instruction address in text (the trivial top — still sound).

The bounds are deliberately conservative: the cross-validator in
:mod:`repro.eval.static_dynamic` asserts ``dynamic targets ⊆ static
bound`` for every site of every workload, which is the correctness oracle
for both this analyzer and the VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import (
    CFG,
    TERM_BRANCH,
    TERM_FALL,
    build_cfg,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Op
from repro.isa.program import Program
from repro.isa.registers import REG_RA, REG_ZERO

#: How far a backward use-def scan may walk when recovering a jump table.
_SCAN_WINDOW = 64


@dataclass(frozen=True, slots=True)
class JumpTable:
    """A recovered bounds-checked jump table."""

    jr_pc: int
    base: int            # address of the first table word
    span: int            # number of entries (from the bounds check)
    targets: frozenset[int]
    #: Addresses of the table words themselves (for address-taken pruning).
    word_addrs: frozenset[int]


@dataclass(frozen=True, slots=True)
class FuncExtent:
    """One function: ``[entry, limit)`` in the text section."""

    entry: int
    limit: int
    name: str | None = None

    def contains(self, pc: int) -> bool:
        return self.entry <= pc < self.limit


@dataclass(slots=True)
class IBSite:
    """One static indirect-branch site."""

    pc: int
    kind: str            # dynamic class: "ijump" | "icall" | "ret"
    role: str            # "return" | "indirect-call" | "jump-table" | "computed-jump"
    bounded: bool        # a non-trivial bound was recovered
    targets: frozenset[int] = frozenset()
    bound: int = 0       # static fan-out upper bound (== len(targets) if bounded)
    table: JumpTable | None = None
    function: str | None = None


@dataclass(slots=True)
class StaticAnalysis:
    """CFG + IB classification for one program."""

    program: Program
    cfg: CFG
    sites: dict[int, IBSite]
    functions: list[FuncExtent]
    address_taken: frozenset[int]
    jump_tables: list[JumpTable] = field(default_factory=list)

    def function_of(self, pc: int) -> FuncExtent | None:
        for func in self.functions:
            if func.contains(pc):
                return func
        return None

    def sites_by_role(self) -> dict[str, list[IBSite]]:
        grouped: dict[str, list[IBSite]] = {}
        for site in self.sites.values():
            grouped.setdefault(site.role, []).append(site)
        return grouped

    def indirect_successors(self) -> dict[int, set[int]]:
        """pc -> resolved static targets, for CFG reachability walks."""
        out: dict[int, set[int]] = {}
        for site in self.sites.values():
            if site.bounded and site.role != "return":
                out[site.pc] = set(site.targets)
        return out


# -- constant tracking ------------------------------------------------------


def constant_states(
    instrs: list[tuple[int, Instruction]]
) -> list[tuple[int, Instruction, dict[int, int]]]:
    """Linear constant propagation: value of each register *before* each
    instruction, for registers holding statically known constants.

    State is reset at every control transfer (conservative: no constants
    survive a block boundary).  ``zero`` is always 0.
    """
    out: list[tuple[int, Instruction, dict[int, int]]] = []
    consts: dict[int, int] = {REG_ZERO: 0}
    for pc, instr in instrs:
        out.append((pc, instr, dict(consts)))
        op = instr.op
        if op is Op.LUI:
            consts[instr.rt] = (instr.imm & 0xFFFF) << 16
        elif op is Op.ORI and instr.rs in consts:
            consts[instr.rt] = (consts[instr.rs] | (instr.imm & 0xFFFF)) & 0xFFFFFFFF
        elif op is Op.ADDI and instr.rs in consts:
            consts[instr.rt] = (consts[instr.rs] + instr.imm) & 0xFFFFFFFF
        else:
            dest = instr.writes_reg
            if dest is not None and dest != REG_ZERO:
                consts.pop(dest, None)
        if instr.is_control:
            consts = {REG_ZERO: 0}
        consts[REG_ZERO] = 0
    return out


# -- jump-table recovery ----------------------------------------------------


def _block_entries(cfg: CFG) -> dict[int, set[int]]:
    """Block start -> set of predecessor block starts (direct edges)."""
    entries: dict[int, set[int]] = {}
    for block in cfg.blocks.values():
        for succ in block.successors:
            start = cfg.block_start_of.get(succ)
            if start is not None:
                entries.setdefault(start, set()).add(block.start)
        if block.call_target is not None:
            start = cfg.block_start_of.get(block.call_target)
            if start is not None:
                entries.setdefault(start, set()).add(block.start)
    return entries


def _scan_floor(
    cfg: CFG,
    linear: list[tuple[int, Instruction]],
    positions: dict[int, int],
    pc: int,
) -> int:
    """Lowest linear index a backward scan from ``pc`` may reach.

    A use-def chain is only valid along instructions that dominate the
    use, so the scan must stop at the start of the containing basic
    block — *except* that it may keep walking into the linearly
    preceding block when the current block's sole entry is falling
    through from it (the MiniC jump-table idiom splits its bounds check
    and table load across exactly such a fallthrough-only boundary).
    """
    entries = _block_entries(cfg)
    indirect_entries = set(cfg.const_code_refs)
    indirect_entries.update(cfg.data_code_words.values())
    indirect_entries.add(cfg.program.entry)
    start = cfg.block_start_of.get(pc)
    floor = positions.get(start, 0) if start is not None else 0
    while start is not None and start in positions:
        floor = positions[start]
        if floor == 0 or start in indirect_entries:
            break
        prev_start = cfg.block_start_of.get(linear[floor - 1][0])
        if prev_start is None:
            break
        prev = cfg.blocks[prev_start]
        if prev.terminator not in (TERM_FALL, TERM_BRANCH):
            break  # entry crosses a call or is not a plain fallthrough
        if entries.get(start, set()) != {prev_start}:
            break  # some other edge (branch target) also enters here
        start = prev_start
    return floor


def _find_def(
    instrs: list[tuple[int, Instruction]],
    index: int,
    reg: int,
    floor: int = 0,
) -> int | None:
    """Index of the nearest preceding instruction writing ``reg``.

    The scan is bounded by the flat window *and* by ``floor`` — the
    first instruction the containing block region is guaranteed to
    execute (see :func:`_scan_floor`), so a definition found here
    dominates the use at ``index``.
    """
    stop = max(floor, index - _SCAN_WINDOW)
    for i in range(index - 1, stop - 1, -1):
        if instrs[i][1].writes_reg == reg:
            return i
    return None


def _const_at(
    instrs: list[tuple[int, Instruction]],
    index: int,
    reg: int,
    floor: int = 0,
) -> int | None:
    """Constant value of ``reg`` at ``index``, via the la/lui/ori idiom."""
    if reg == REG_ZERO:
        return 0
    d = _find_def(instrs, index, reg, floor)
    if d is None:
        return None
    instr = instrs[d][1]
    if instr.op is Op.LUI:
        return (instr.imm & 0xFFFF) << 16
    if instr.op is Op.ORI and instr.rs == reg:
        hi_idx = _find_def(instrs, d, reg, floor)
        if hi_idx is not None and instrs[hi_idx][1].op is Op.LUI:
            hi = (instrs[hi_idx][1].imm & 0xFFFF) << 16
            return (hi | (instr.imm & 0xFFFF)) & 0xFFFFFFFF
    return None


def _read_word(program: Program, addr: int) -> int | None:
    for section in (program.data, program.text):
        if section.base <= addr and addr + 4 <= section.end:
            offset = addr - section.base
            return int.from_bytes(section.data[offset : offset + 4], "little")
    return None


def _table_in_image(program: Program, base: int, span: int) -> bool:
    """True if all ``span`` table words fit inside one loaded section."""
    end = base + 4 * span
    return any(
        section.base <= base and end <= section.end
        for section in (program.data, program.text)
    )


def recover_jump_table(cfg: CFG, jr_pc: int) -> JumpTable | None:
    """Pattern-match the bounds-checked jump-table idiom feeding a ``jr``.

    Expected shape (registers are arbitrary)::

        sltiu g, i, SPAN        ; bounds check on the unscaled index
        beq   g, zero, default
        sll   s, i, 2           ; scale
        lui   b, hi(table)
        ori   b, b, lo(table)
        add   a, s, b           ; (either operand order)
        lw    x, OFF(a)
        jr    x

    Returns ``None`` when any link of the chain is missing, when the
    table would run past the end of its containing section, or when any
    table word is not a valid text address — the caller falls back to
    the trivial (still sound) bound rather than using a silently
    truncated target set.
    """
    linear = cfg.linear()
    positions = {pc: i for i, (pc, _) in enumerate(linear)}
    if jr_pc not in positions:
        return None
    jr_idx = positions[jr_pc]
    jr = linear[jr_idx][1]
    # use-def scans must not cross into blocks that do not dominate the
    # jr (they may stretch one block back across a fallthrough-only
    # boundary: the idiom's bounds check lives there)
    floor = _scan_floor(cfg, linear, positions, jr_pc)

    # 1. the value being jumped through must come from a table load
    load_idx = _find_def(linear, jr_idx, jr.rs, floor)
    if load_idx is None:
        return None
    load = linear[load_idx][1]
    if load.op is not Op.LW:
        return None

    # 2. the load address is index*4 + table base
    add_idx = _find_def(linear, load_idx, load.rs, floor)
    if add_idx is None:
        return None
    add = linear[add_idx][1]
    if add.op is not Op.ADD:
        return None

    base = None
    index_reg = None
    sll_idx = None
    for scaled, other in ((add.rs, add.rt), (add.rt, add.rs)):
        cand = _find_def(linear, add_idx, scaled, floor)
        if cand is None:
            continue
        cand_instr = linear[cand][1]
        if cand_instr.op is Op.SLL and cand_instr.shamt == 2:
            const = _const_at(linear, add_idx, other, floor)
            if const is not None:
                sll_idx = cand
                index_reg = cand_instr.rt
                base = const
                break
    if base is None or sll_idx is None or index_reg is None:
        return None

    # 3. the unscaled index must be bounds-checked by sltiu + beqz
    span = None
    stop = max(floor, sll_idx - _SCAN_WINDOW)
    for i in range(sll_idx - 1, stop - 1, -1):
        pc_i, instr_i = linear[i]
        if instr_i.op is Op.SLTIU and instr_i.rs == index_reg:
            guard = instr_i.rt
            if i + 1 < len(linear):
                nxt = linear[i + 1][1]
                if nxt.op in (Op.BEQ, Op.BNE) and guard in (nxt.rs, nxt.rt):
                    span = instr_i.imm
            break
        if instr_i.writes_reg == index_reg:
            break
    if span is None or span <= 0:
        return None

    base = (base + load.imm) & 0xFFFFFFFF
    if not _table_in_image(cfg.program, base, span):
        return None  # table runs past the end of the loaded image
    targets: set[int] = set()
    word_addrs: set[int] = set()
    for entry in range(span):
        addr = base + 4 * entry
        value = _read_word(cfg.program, addr)
        if value is None:
            return None
        word_addrs.add(addr)
        if not cfg.in_text(value):
            # a non-code word means this is not (all of) a jump table;
            # recovering a partial target set would be unsound
            return None
        targets.add(value)
    return JumpTable(
        jr_pc=jr_pc,
        base=base,
        span=span,
        targets=frozenset(targets),
        word_addrs=frozenset(word_addrs),
    )


# -- function partitioning --------------------------------------------------


def _function_extents(
    cfg: CFG, address_taken: frozenset[int]
) -> list[FuncExtent]:
    """Partition the text into functions.

    Entries are behavioural: the program entry, every direct-call target
    and every address-taken code address.  Extents are the contiguous
    ranges between consecutive entries (functions are contiguous in all
    code this toolchain produces).
    """
    program = cfg.program
    entries: set[int] = set()
    if cfg.in_text(program.entry):
        entries.add(program.entry)
    entries.add(cfg.text_lo)
    for pc, instr in cfg.linear():
        if instr.iclass is InstrClass.CALL:
            target = instr.branch_target(pc)
            if cfg.in_text(target):
                entries.add(target)
    entries.update(addr for addr in address_taken if cfg.in_text(addr))

    addr_to_name: dict[int, str] = {}
    for name, addr in sorted(program.symbols.items()):
        if not name.startswith(".") and cfg.in_text(addr):
            addr_to_name.setdefault(addr, name)

    ordered = sorted(entries)
    extents = []
    for index, entry in enumerate(ordered):
        limit = ordered[index + 1] if index + 1 < len(ordered) else cfg.text_hi
        extents.append(
            FuncExtent(entry=entry, limit=limit, name=addr_to_name.get(entry))
        )
    return extents


# -- whole-program analysis -------------------------------------------------


def analyze_program(program: Program) -> StaticAnalysis:
    """Build the CFG and classify every indirect-branch site."""
    cfg = build_cfg(program)
    linear = cfg.linear()

    # indirect sites and jump-table recovery
    ib_pcs: list[tuple[int, Instruction]] = [
        (pc, instr) for pc, instr in linear if instr.is_indirect
    ]
    tables: dict[int, JumpTable] = {}
    for pc, instr in ib_pcs:
        if instr.iclass is InstrClass.IJUMP and instr.rs != REG_RA:
            table = recover_jump_table(cfg, pc)
            if table is not None:
                tables[pc] = table

    # address-taken: constants in text + data words that are not table slots
    table_word_addrs: set[int] = set()
    for table in tables.values():
        table_word_addrs.update(table.word_addrs)
    address_taken = set(cfg.const_code_refs)
    for word_addr, value in cfg.data_code_words.items():
        if word_addr not in table_word_addrs:
            address_taken.add(value)
    address_taken_frozen = frozenset(address_taken)

    functions = _function_extents(cfg, address_taken_frozen)

    # call-site returns, for ret bounds
    direct_return_sites: dict[int, set[int]] = {}   # callee entry -> {pc+4}
    indirect_return_sites: set[int] = set()
    for pc, instr in linear:
        if instr.iclass is InstrClass.CALL:
            target = instr.branch_target(pc)
            direct_return_sites.setdefault(target, set()).add(pc + 4)
        elif instr.iclass is InstrClass.ICALL:
            indirect_return_sites.add(pc + 4)

    trivial_bound = len(linear)

    sites: dict[int, IBSite] = {}
    for pc, instr in ib_pcs:
        func = next((f for f in functions if f.contains(pc)), None)
        func_name = func.name if func is not None else None
        iclass = instr.iclass
        kind = iclass.value
        if iclass is InstrClass.RET or (
            iclass is InstrClass.IJUMP and instr.rs == REG_RA
        ):
            targets: set[int] = set()
            if func is not None:
                targets |= direct_return_sites.get(func.entry, set())
                if func.entry in address_taken_frozen:
                    targets |= indirect_return_sites
            sites[pc] = IBSite(
                pc=pc, kind=kind, role="return", bounded=True,
                targets=frozenset(targets), bound=len(targets),
                function=func_name,
            )
        elif iclass is InstrClass.ICALL:
            sites[pc] = IBSite(
                pc=pc, kind=kind, role="indirect-call", bounded=True,
                targets=address_taken_frozen, bound=len(address_taken_frozen),
                function=func_name,
            )
        else:  # IJUMP, non-ra
            table = tables.get(pc)
            if table is not None:
                sites[pc] = IBSite(
                    pc=pc, kind=kind, role="jump-table", bounded=True,
                    targets=table.targets, bound=len(table.targets),
                    table=table, function=func_name,
                )
            else:
                sites[pc] = IBSite(
                    pc=pc, kind=kind, role="computed-jump", bounded=False,
                    targets=frozenset(), bound=trivial_bound,
                    function=func_name,
                )

    return StaticAnalysis(
        program=program,
        cfg=cfg,
        sites=sites,
        functions=functions,
        address_taken=address_taken_frozen,
        jump_tables=sorted(tables.values(), key=lambda t: t.jr_pc),
    )


__all__ = [
    "IBSite",
    "JumpTable",
    "FuncExtent",
    "StaticAnalysis",
    "analyze_program",
    "recover_jump_table",
    "constant_states",
]
