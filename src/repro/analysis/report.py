"""Human- and machine-readable rendering of a static analysis."""

from __future__ import annotations

import json

from repro.analysis.classify import StaticAnalysis
from repro.analysis.targets import TargetSetReport, VERDICT_UNKNOWN


def analysis_summary(analysis: StaticAnalysis) -> dict[str, object]:
    """Structured summary of one program's static analysis."""
    cfg = analysis.cfg
    roles: dict[str, int] = {}
    for site in analysis.sites.values():
        roles[site.role] = roles.get(site.role, 0) + 1
    return {
        "text_bytes": len(analysis.program.text.data),
        "instructions": len(cfg.linear()),
        "blocks": len(cfg.blocks),
        "functions": len(analysis.functions),
        "ib_sites": len(analysis.sites),
        "sites_by_role": roles,
        "jump_tables": len(analysis.jump_tables),
        "address_taken": len(analysis.address_taken),
    }


def analysis_to_json(analysis: StaticAnalysis) -> str:
    sites = [
        {
            "pc": site.pc,
            "kind": site.kind,
            "role": site.role,
            "bounded": site.bounded,
            "bound": site.bound,
            "targets": sorted(site.targets),
            "function": site.function,
            "table": None
            if site.table is None
            else {
                "base": site.table.base,
                "span": site.table.span,
                "targets": sorted(site.table.targets),
            },
        }
        for site in sorted(analysis.sites.values(), key=lambda s: s.pc)
    ]
    functions = [
        {"entry": f.entry, "limit": f.limit, "name": f.name}
        for f in analysis.functions
    ]
    return json.dumps(
        {
            "summary": analysis_summary(analysis),
            "functions": functions,
            "sites": sites,
        },
        indent=2,
        sort_keys=True,
    )


def targets_to_json(report: TargetSetReport) -> str:
    """Deterministic (sorted-key) JSON for a target-set report."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def format_targets(report: TargetSetReport, limit: int = 20) -> str:
    """Render the ``analyze --targets`` text report."""
    counts = report.verdict_counts()
    devirt = report.devirt_candidates()
    preseed = report.preseed_map()
    lines = [
        "verdicts   : " + (
            ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            or "none"
        ),
        f"devirt     : {len(devirt)} singleton site(s)",
        f"preseed    : {len(preseed)} site(s), "
        f"{sum(len(h) for h in preseed.values())} hint(s)",
        f"dataflow   : {report.dataflow.rounds} store round(s), "
        f"{report.dataflow.iterations} block iterations"
        + (" (store untracked)" if report.dataflow.store.untracked else ""),
    ]
    shown = sorted(
        report.verdicts.values(),
        key=lambda v: (v.verdict != VERDICT_UNKNOWN, len(v.targets), v.pc),
        reverse=True,
    )
    for v in shown[:limit]:
        escape = " may-escape" if v.may_escape else ""
        mark = " [devirt]" if v.pc in devirt else ""
        lines.append(
            f"  {v.role:13s} @ {v.pc:#010x}: {v.verdict}"
            f"({len(v.targets)}){escape} via {v.certificate.rule}{mark}"
        )
    if len(shown) > limit:
        lines.append(f"  ... {len(shown) - limit} more site(s)")
    return "\n".join(lines)


def format_analysis(analysis: StaticAnalysis, limit: int = 20) -> str:
    """Render the analyze-command text report."""
    summary = analysis_summary(analysis)
    lines = [
        f"text       : {summary['text_bytes']} bytes, "
        f"{summary['instructions']} instructions",
        f"cfg        : {summary['blocks']} basic blocks, "
        f"{summary['functions']} functions",
        f"IB sites   : {summary['ib_sites']} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(summary['sites_by_role'].items())) or 'none'})",
        f"addr-taken : {summary['address_taken']} code addresses",
        f"jump tables: {summary['jump_tables']}",
    ]
    shown = sorted(analysis.sites.values(), key=lambda s: (-s.bound, s.pc))
    for site in shown[:limit]:
        func = f" in {site.function}" if site.function else ""
        bound = f"bound={site.bound}" + ("" if site.bounded else " (trivial)")
        extra = ""
        if site.table is not None:
            extra = f", table@{site.table.base:#x} span={site.table.span}"
        lines.append(
            f"  {site.role:13s} @ {site.pc:#010x}: {bound}{extra}{func}"
        )
    if len(shown) > limit:
        lines.append(f"  ... {len(shown) - limit} more site(s)")
    return "\n".join(lines)
