"""Static analysis of SR32 program images.

The subsystem has three layers, each usable on its own:

- :mod:`repro.analysis.cfg` — basic-block recovery and direct edges over
  an assembled :class:`~repro.isa.program.Program`;
- :mod:`repro.analysis.classify` — static classification of every
  indirect-branch site (return / indirect call / jump table / computed
  jump) with sound fan-out upper bounds;
- :mod:`repro.analysis.lint` — a pluggable lint engine emitting
  structured :class:`~repro.analysis.lint.Diagnostic` records.

The static bounds are cross-validated against dynamic fan-out profiles by
:mod:`repro.eval.static_dynamic`.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.classify import (
    FuncExtent,
    IBSite,
    JumpTable,
    StaticAnalysis,
    analyze_program,
)
from repro.analysis.lint import (
    LINT_CHECKS,
    Diagnostic,
    LintReport,
    lint_check,
    run_lint,
)
from repro.analysis.report import (
    analysis_summary,
    analysis_to_json,
    format_analysis,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "FuncExtent",
    "IBSite",
    "JumpTable",
    "StaticAnalysis",
    "analyze_program",
    "LINT_CHECKS",
    "Diagnostic",
    "LintReport",
    "lint_check",
    "run_lint",
    "analysis_summary",
    "analysis_to_json",
    "format_analysis",
]
