"""Static analysis of SR32 program images.

The subsystem has three layers, each usable on its own:

- :mod:`repro.analysis.cfg` — basic-block recovery and direct edges over
  an assembled :class:`~repro.isa.program.Program`;
- :mod:`repro.analysis.classify` — static classification of every
  indirect-branch site (return / indirect call / jump table / computed
  jump) with sound fan-out upper bounds;
- :mod:`repro.analysis.lint` — a pluggable lint engine emitting
  structured :class:`~repro.analysis.lint.Diagnostic` records.

- :mod:`repro.analysis.dataflow` — fixed-point abstract interpretation
  over the CFG (constant sets / strided ranges per register, plus a
  bounded word-granular store model);
- :mod:`repro.analysis.targets` — per-site target-set verdicts
  (``exact`` / ``bounded`` / ``unknown``), each carrying a
  machine-checkable soundness certificate, consumed by the SDT's
  ``static_targets`` devirtualization/preseeding pipeline.

The static bounds are cross-validated against dynamic fan-out profiles by
:mod:`repro.eval.static_dynamic`.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.classify import (
    FuncExtent,
    IBSite,
    JumpTable,
    StaticAnalysis,
    analyze_program,
)
from repro.analysis.dataflow import (
    BOT,
    TOP,
    ConstSet,
    DataflowResult,
    Strided,
    analyze_dataflow,
)
from repro.analysis.lint import (
    LINT_CHECKS,
    Diagnostic,
    LintReport,
    lint_check,
    run_lint,
)
from repro.analysis.report import (
    analysis_summary,
    analysis_to_json,
    format_analysis,
    format_targets,
    targets_to_json,
)
from repro.analysis.targets import (
    Certificate,
    TargetSetReport,
    TargetVerdict,
    analyze_targets,
    build_report,
    verify_report,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "FuncExtent",
    "IBSite",
    "JumpTable",
    "StaticAnalysis",
    "analyze_program",
    "BOT",
    "TOP",
    "ConstSet",
    "DataflowResult",
    "Strided",
    "analyze_dataflow",
    "Certificate",
    "TargetSetReport",
    "TargetVerdict",
    "analyze_targets",
    "build_report",
    "verify_report",
    "LINT_CHECKS",
    "Diagnostic",
    "LintReport",
    "lint_check",
    "run_lint",
    "analysis_summary",
    "analysis_to_json",
    "format_analysis",
    "format_targets",
    "targets_to_json",
]
