"""Static lint engine for SR32 program images.

Checks are pluggable: each is a function ``(StaticAnalysis) ->
Iterable[Diagnostic]`` registered under a stable id with
:func:`lint_check`.  :func:`run_lint` runs a selected set of checks over a
program and returns a :class:`LintReport` whose ``clean`` property is the
repo-wide gate (no error- or warning-severity findings).

Shipped checks
==============

``unreachable-code``
    decodable instructions no static path reaches (from the entry point,
    any exported label, any address-taken code address, or a recovered
    jump table).
``text-fallthrough``
    a block that can fall through past the end of the text section, or
    into an undecodable word.
``clobbered-link-register``
    a return reachable while ``ra`` no longer holds the caller's return
    address (a call or other write clobbered it and no reload happened).
``stack-imbalance``
    a return where the net stack-pointer adjustment since function entry
    is provably non-zero.
``zero-register-write``
    an instruction whose destination is the hardwired zero register
    (other than the canonical ``nop`` encoding).
``store-to-text``
    a store whose address is statically known to land inside the text
    section — self-modifying code the SDT cannot see.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.cfg import TERM_RET
from repro.analysis.classify import StaticAnalysis, analyze_program, constant_states
from repro.isa.opcodes import InstrClass, Op
from repro.isa.program import Program
from repro.isa.registers import REG_FP, REG_RA, REG_SP, REG_ZERO

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One structured lint finding."""

    check: str
    severity: str
    pc: int | None
    message: str
    function: str | None = None

    def format(self) -> str:
        where = f"{self.pc:#010x}" if self.pc is not None else "--"
        func = f" [{self.function}]" if self.function else ""
        return f"{self.severity:7s} {where} {self.check}: {self.message}{func}"

    def to_dict(self) -> dict[str, object]:
        return {
            "check": self.check,
            "severity": self.severity,
            "pc": self.pc,
            "message": self.message,
            "function": self.function,
        }


@dataclass(slots=True)
class LintReport:
    """All diagnostics from one lint run."""

    diagnostics: list[Diagnostic]
    checks_run: tuple[str, ...]

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == SEV_ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == SEV_WARNING)

    @property
    def clean(self) -> bool:
        """No findings at warning severity or above."""
        return self.errors == 0 and self.warnings == 0

    def by_check(self, check: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.check == check]

    def format(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.diagnostics)} finding(s): {self.errors} error(s), "
            f"{self.warnings} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "checks": list(self.checks_run),
                "clean": self.clean,
                "errors": self.errors,
                "warnings": self.warnings,
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )


CheckFn = Callable[[StaticAnalysis], Iterable[Diagnostic]]

#: Registry of all known checks, id -> implementation.
LINT_CHECKS: dict[str, CheckFn] = {}


def lint_check(check_id: str) -> Callable[[CheckFn], CheckFn]:
    """Register a lint check under a stable id."""

    def wrap(fn: CheckFn) -> CheckFn:
        if check_id in LINT_CHECKS:
            raise ValueError(f"duplicate lint check {check_id!r}")
        LINT_CHECKS[check_id] = fn
        return fn

    return wrap


def _func_name(analysis: StaticAnalysis, pc: int) -> str | None:
    func = analysis.function_of(pc)
    if func is None:
        return None
    if func.name:
        return func.name
    return f"func@{func.entry:#x}"


# -- checks -----------------------------------------------------------------


@lint_check("unreachable-code")
def check_unreachable(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    cfg = analysis.cfg
    program = analysis.program
    roots: set[int] = set(analysis.address_taken)
    if cfg.in_text(program.entry):
        roots.add(program.entry)
    # exported (non-local) labels count as entry points: a library image
    # may legitimately contain functions nothing in-image calls.
    for name, addr in program.symbols.items():
        if not name.startswith(".") and cfg.in_text(addr):
            roots.add(addr)
    reached = cfg.reachable_blocks(roots, analysis.indirect_successors())
    for start, block in sorted(cfg.blocks.items()):
        if start in reached or not block.instrs:
            continue
        count = len(block.instrs)
        yield Diagnostic(
            check="unreachable-code",
            severity=SEV_WARNING,
            pc=start,
            message=f"{count} unreachable instruction(s)",
            function=_func_name(analysis, start),
        )


@lint_check("text-fallthrough")
def check_text_fallthrough(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    cfg = analysis.cfg
    for start, block in sorted(cfg.blocks.items()):
        if not block.instrs or not block.falls_through:
            continue
        nxt = block.end
        if nxt >= cfg.text_hi:
            yield Diagnostic(
                check="text-fallthrough",
                severity=SEV_ERROR,
                pc=block.last[0],
                message="control can fall through past the end of .text",
                function=_func_name(analysis, start),
            )
        elif cfg.instrs.get(nxt) is None:
            yield Diagnostic(
                check="text-fallthrough",
                severity=SEV_ERROR,
                pc=block.last[0],
                message="control can fall through into a non-instruction word",
                function=_func_name(analysis, start),
            )


def _function_blocks(analysis: StaticAnalysis, entry: int, limit: int) -> list[int]:
    return [
        start
        for start in analysis.cfg.blocks
        if entry <= start < limit
    ]


@lint_check("clobbered-link-register")
def check_clobbered_link(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    cfg = analysis.cfg
    CLEAN, DIRTY = 0, 1
    for func in analysis.functions:
        block_starts = _function_blocks(analysis, func.entry, func.limit)
        if not block_starts:
            continue
        state: dict[int, int] = {}
        work = [(func.entry, CLEAN)] if func.entry in cfg.blocks else []
        reported: set[int] = set()
        while work:
            start, ra_state = work.pop()
            prev = state.get(start)
            if prev is not None and prev >= ra_state:
                continue
            state[start] = max(prev or 0, ra_state)
            block = cfg.blocks.get(start)
            if block is None:
                continue
            current = ra_state
            for pc, instr in block.instrs:
                op = instr.op
                if block.terminator == TERM_RET and (pc, instr) == block.instrs[-1]:
                    if current == DIRTY and pc not in reported:
                        reported.add(pc)
                        yield Diagnostic(
                            check="clobbered-link-register",
                            severity=SEV_ERROR,
                            pc=pc,
                            message="return executes with a clobbered ra "
                                    "(no save/restore around the clobber)",
                            function=_func_name(analysis, pc),
                        )
                    continue
                if op is Op.LW and instr.rt == REG_RA:
                    current = CLEAN
                elif op is Op.JAL or instr.writes_reg == REG_RA:
                    current = DIRTY
            for succ in block.successors:
                if func.entry <= succ < func.limit:
                    work.append((succ, current))
            last = block.last
            if last is not None and last[0] in analysis.sites:
                site = analysis.sites[last[0]]
                if site.bounded and site.role == "jump-table":
                    for target in site.targets:
                        if func.entry <= target < func.limit:
                            work.append((target, current))


@lint_check("stack-imbalance")
def check_stack_imbalance(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    cfg = analysis.cfg
    TOP = None
    for func in analysis.functions:
        entry = func.entry
        if entry not in cfg.blocks:
            continue
        # state: (sp offset, fp offset) relative to sp at function entry
        state: dict[int, tuple[int | None, int | None]] = {}
        work: list[tuple[int, tuple[int | None, int | None]]] = [(entry, (0, TOP))]
        reported: set[int] = set()
        visits = 0
        while work and visits < 4 * len(cfg.blocks) + 16:
            visits += 1
            start, incoming = work.pop()
            prev = state.get(start)
            if prev is not None:
                merged = tuple(
                    a if a == b else TOP for a, b in zip(prev, incoming)
                )
                if merged == prev:
                    continue
                incoming = merged  # type: ignore[assignment]
            state[start] = incoming  # type: ignore[assignment]
            block = cfg.blocks.get(start)
            if block is None:
                continue
            sp, fp = incoming
            for pc, instr in block.instrs:
                op = instr.op

                def value_of(reg: int) -> int | None:
                    if reg == REG_SP:
                        return sp
                    if reg == REG_FP:
                        return fp
                    return TOP

                if block.terminator == TERM_RET and (pc, instr) == block.instrs[-1]:
                    if sp is not None and sp != 0 and pc not in reported:
                        reported.add(pc)
                        yield Diagnostic(
                            check="stack-imbalance",
                            severity=SEV_WARNING,
                            pc=pc,
                            message=f"return with sp off by {sp:+d} bytes "
                                    "relative to function entry",
                            function=_func_name(analysis, pc),
                        )
                    continue
                dest = instr.writes_reg
                if dest not in (REG_SP, REG_FP):
                    continue
                new: int | None = TOP
                if op is Op.ADDI:
                    base = value_of(instr.rs)
                    if base is not None:
                        new = base + instr.imm
                elif op in (Op.OR, Op.ADD):
                    # `mv rd, rs` assembles to `or rd, rs, zero`
                    if instr.rt == REG_ZERO:
                        new = value_of(instr.rs)
                    elif instr.rs == REG_ZERO:
                        new = value_of(instr.rt)
                if dest == REG_SP:
                    sp = new
                else:
                    fp = new
            for succ in block.successors:
                if func.entry <= succ < func.limit:
                    work.append((succ, (sp, fp)))
            last = block.last
            if last is not None and last[0] in analysis.sites:
                site = analysis.sites[last[0]]
                if site.bounded and site.role == "jump-table":
                    for target in site.targets:
                        if func.entry <= target < func.limit:
                            work.append((target, (sp, fp)))


@lint_check("zero-register-write")
def check_zero_register_write(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    for pc, instr in analysis.cfg.linear():
        if instr.writes_reg != REG_ZERO:
            continue
        if instr.op is Op.SLL and instr.rd == 0 and instr.rt == 0 and instr.shamt == 0:
            continue  # canonical nop
        yield Diagnostic(
            check="zero-register-write",
            severity=SEV_WARNING,
            pc=pc,
            message=f"{instr.op.value} writes to the hardwired zero register",
            function=_func_name(analysis, pc),
        )


@lint_check("store-to-text")
def check_store_to_text(analysis: StaticAnalysis) -> Iterable[Diagnostic]:
    cfg = analysis.cfg
    for pc, instr, consts in constant_states(cfg.linear()):
        if instr.iclass is not InstrClass.STORE:
            continue
        base = consts.get(instr.rs)
        if base is None:
            continue
        addr = (base + instr.imm) & 0xFFFFFFFF
        if cfg.text_lo <= addr < cfg.text_hi:
            yield Diagnostic(
                check="store-to-text",
                severity=SEV_ERROR,
                pc=pc,
                message=f"store to {addr:#010x} inside .text "
                        "(self-modifying code)",
                function=_func_name(analysis, pc),
            )


# -- driver -----------------------------------------------------------------


def run_lint(
    target: Program | StaticAnalysis,
    only: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
) -> LintReport:
    """Run lint checks over a program (or a pre-built analysis)."""
    analysis = (
        target if isinstance(target, StaticAnalysis) else analyze_program(target)
    )
    selected = list(only) if only is not None else sorted(LINT_CHECKS)
    ignored = set(ignore)
    diagnostics: list[Diagnostic] = []
    run: list[str] = []
    for check_id in selected:
        if check_id in ignored:
            continue
        try:
            fn = LINT_CHECKS[check_id]
        except KeyError:
            raise KeyError(
                f"unknown lint check {check_id!r}; "
                f"available: {sorted(LINT_CHECKS)}"
            ) from None
        run.append(check_id)
        diagnostics.extend(fn(analysis))
    diagnostics.sort(key=lambda d: (d.pc if d.pc is not None else -1, d.check))
    return LintReport(diagnostics=diagnostics, checks_run=tuple(run))
