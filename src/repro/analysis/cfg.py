"""Control-flow graph recovery over assembled SR32 programs.

The builder works from a linked :class:`~repro.isa.program.Program` image
alone — no symbols are required (they only improve diagnostics).  Recovery
is classical: decode every text word, compute basic-block leaders (the
entry point, direct branch/jump/call targets, the instruction after any
control transfer, and every code address referenced from data or
materialised as a constant), then split the text into blocks and wire the
statically visible edges.

Indirect successors (``jr``/``jalr``/``ret``) are deliberately *not*
resolved here; that is the job of :mod:`repro.analysis.classify`, which
layers jump-table and callee-set recovery on top of this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Op
from repro.isa.program import Program
from repro.isa.registers import REG_RA

#: Block terminator categories (``BasicBlock.terminator``).
TERM_FALL = "fall"        # runs into the next block
TERM_BRANCH = "branch"    # conditional direct branch
TERM_JUMP = "jump"        # unconditional direct jump
TERM_CALL = "call"        # direct call; falls through on return
TERM_IJUMP = "ijump"      # indirect jump (jr, non-ra)
TERM_ICALL = "icall"      # indirect call (jalr); falls through on return
TERM_RET = "ret"          # return (ret, or jr ra)
TERM_HALT = "halt"        # halt
TERM_DATA = "data"        # undecodable word embedded in .text

#: Terminators after which execution may continue at ``block.end``.
FALLTHROUGH_TERMINATORS = frozenset(
    {TERM_FALL, TERM_BRANCH, TERM_CALL, TERM_ICALL}
)


@dataclass(slots=True)
class BasicBlock:
    """One maximal straight-line run of instructions."""

    start: int
    instrs: list[tuple[int, Instruction]]
    terminator: str = TERM_FALL
    #: Intra-procedural successor block starts (direct edges only).
    successors: tuple[int, ...] = ()
    #: Direct call target (``jal``), if the block ends in one.
    call_target: int | None = None

    @property
    def end(self) -> int:
        """First address past the block."""
        return self.start + 4 * max(len(self.instrs), 1)

    @property
    def last(self) -> tuple[int, Instruction] | None:
        return self.instrs[-1] if self.instrs else None

    @property
    def falls_through(self) -> bool:
        return self.terminator in FALLTHROUGH_TERMINATORS


@dataclass(slots=True)
class CFG:
    """Whole-program control-flow graph (indirect edges unresolved)."""

    program: Program
    #: Decoded instruction per text address; ``None`` for undecodable words.
    instrs: dict[int, Instruction | None]
    blocks: dict[int, BasicBlock]
    #: pc -> start address of the containing block.
    block_start_of: dict[int, int] = field(default_factory=dict)
    #: Text addresses materialised by ``lui``/``ori`` pairs in code.
    const_code_refs: frozenset[int] = frozenset()
    #: data-word address -> text address it stores.
    data_code_words: dict[int, int] = field(default_factory=dict)

    @property
    def text_lo(self) -> int:
        return self.program.text.base

    @property
    def text_hi(self) -> int:
        return self.program.text.end

    def in_text(self, addr: int) -> bool:
        return self.text_lo <= addr < self.text_hi and addr % 4 == 0

    def block_at(self, pc: int) -> BasicBlock | None:
        start = self.block_start_of.get(pc)
        return self.blocks[start] if start is not None else None

    def linear(self) -> list[tuple[int, Instruction]]:
        """All decodable instructions in address order."""
        return [
            (pc, instr)
            for pc, instr in sorted(self.instrs.items())
            if instr is not None
        ]

    def reachable_blocks(
        self, roots: set[int], indirect_successors: dict[int, set[int]] | None = None
    ) -> set[int]:
        """Block starts reachable from ``roots`` (text addresses).

        ``indirect_successors`` maps an indirect-branch pc to its resolved
        target set (e.g. recovered jump tables) and is folded into the
        walk when given.
        """
        indirect = indirect_successors or {}
        seen: set[int] = set()
        work = [self.block_start_of[r] for r in roots if r in self.block_start_of]
        while work:
            start = work.pop()
            if start in seen:
                continue
            seen.add(start)
            block = self.blocks[start]
            succ: set[int] = set(block.successors)
            if block.call_target is not None:
                succ.add(block.call_target)
            last = block.last
            if last is not None and last[0] in indirect:
                succ.update(indirect[last[0]])
            for target in succ:
                target_start = self.block_start_of.get(target)
                if target_start is not None and target_start not in seen:
                    work.append(target_start)
        return seen


def _is_return(instr: Instruction) -> bool:
    """``ret``, or the architectural spelling ``jr ra``."""
    if instr.op is Op.RET:
        return True
    return instr.op is Op.JR and instr.rs == REG_RA


def terminator_kind(instr: Instruction) -> str:
    """Terminator category for a control-transfer instruction."""
    iclass = instr.iclass
    if iclass is InstrClass.BRANCH:
        return TERM_BRANCH
    if iclass is InstrClass.JUMP:
        return TERM_JUMP
    if iclass is InstrClass.CALL:
        return TERM_CALL
    if iclass is InstrClass.ICALL:
        return TERM_ICALL
    if iclass is InstrClass.RET:
        return TERM_RET
    if iclass is InstrClass.IJUMP:
        return TERM_RET if _is_return(instr) else TERM_IJUMP
    if iclass is InstrClass.HALT:
        return TERM_HALT
    return TERM_FALL


def _decode_text(program: Program) -> dict[int, Instruction | None]:
    instrs: dict[int, Instruction | None] = {}
    base = program.text.base
    for index, word in enumerate(program.text_words()):
        pc = base + 4 * index
        try:
            instrs[pc] = decode(word)
        except DecodeError:
            instrs[pc] = None
    return instrs


def find_const_code_refs(
    instrs: list[tuple[int, Instruction]], program: Program
) -> frozenset[int]:
    """Text addresses materialised by ``lui``/``ori`` pairs (``la`` idiom)."""
    refs: set[int] = set()
    lo, hi = program.text.base, program.text.end
    for index, (_, instr) in enumerate(instrs):
        if instr.op is not Op.LUI:
            continue
        value = (instr.imm & 0xFFFF) << 16
        if index + 1 < len(instrs):
            nxt = instrs[index + 1][1]
            if (
                nxt.op is Op.ORI
                and nxt.rt == instr.rt
                and nxt.rs == instr.rt
            ):
                value |= nxt.imm & 0xFFFF
        if lo <= value < hi and value % 4 == 0:
            refs.add(value)
    return frozenset(refs)


def find_data_code_words(program: Program) -> dict[int, int]:
    """Aligned data words whose value is a text address."""
    words: dict[int, int] = {}
    raw = program.data.data
    base = program.data.base
    lo, hi = program.text.base, program.text.end
    for offset in range(0, len(raw) - len(raw) % 4, 4):
        value = int.from_bytes(raw[offset : offset + 4], "little")
        if lo <= value < hi and value % 4 == 0:
            words[base + offset] = value
    return words


def build_cfg(program: Program) -> CFG:
    """Recover basic blocks and direct edges from a program image."""
    instr_map = _decode_text(program)
    linear = [(pc, i) for pc, i in sorted(instr_map.items()) if i is not None]
    const_refs = find_const_code_refs(linear, program)
    data_words = find_data_code_words(program)

    lo, hi = program.text.base, program.text.end

    def in_text(addr: int) -> bool:
        return lo <= addr < hi and addr % 4 == 0

    leaders: set[int] = {program.entry if in_text(program.entry) else lo}
    leaders.add(lo)
    for pc, instr in instr_map.items():
        if instr is None:
            # data words break the instruction stream on both sides
            leaders.add(pc)
            if in_text(pc + 4):
                leaders.add(pc + 4)
            continue
        iclass = instr.iclass
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP, InstrClass.CALL):
            target = instr.branch_target(pc)
            if in_text(target):
                leaders.add(target)
        if instr.is_control and in_text(pc + 4):
            leaders.add(pc + 4)
    for ref in const_refs:
        leaders.add(ref)
    for value in data_words.values():
        leaders.add(value)

    ordered = sorted(leaders)
    blocks: dict[int, BasicBlock] = {}
    block_start_of: dict[int, int] = {}
    for index, start in enumerate(ordered):
        limit = ordered[index + 1] if index + 1 < len(ordered) else hi
        pc = start
        instrs: list[tuple[int, Instruction]] = []
        terminator = TERM_FALL
        while pc < limit:
            instr = instr_map.get(pc)
            if instr is None:
                terminator = TERM_DATA
                break
            instrs.append((pc, instr))
            if instr.is_control:
                terminator = terminator_kind(instr)
                pc += 4
                break
            pc += 4
        block = BasicBlock(start=start, instrs=instrs, terminator=terminator)
        blocks[start] = block
        span = max(len(instrs), 1)
        for offset in range(span):
            block_start_of[start + 4 * offset] = start

    # successors
    for block in blocks.values():
        succ: list[int] = []
        last = block.last
        if last is not None:
            pc, instr = last
            kind = block.terminator
            if kind == TERM_BRANCH:
                target = instr.branch_target(pc)
                if in_text(target):
                    succ.append(target)
                if in_text(block.end):
                    succ.append(block.end)
            elif kind == TERM_JUMP:
                target = instr.branch_target(pc)
                if in_text(target):
                    succ.append(target)
            elif kind == TERM_CALL:
                block.call_target = instr.branch_target(pc)
                if in_text(block.end):
                    succ.append(block.end)
            elif kind == TERM_ICALL:
                if in_text(block.end):
                    succ.append(block.end)
            elif kind == TERM_FALL:
                if in_text(block.end):
                    succ.append(block.end)
            # TERM_JUMP handled; ret/halt/ijump have no direct successors
        elif block.terminator == TERM_FALL and in_text(block.end):
            succ.append(block.end)
        block.successors = tuple(dict.fromkeys(succ))

    return CFG(
        program=program,
        instrs=instr_map,
        blocks=blocks,
        block_start_of=block_start_of,
        const_code_refs=const_refs,
        data_code_words=data_words,
    )
