"""Per-site indirect-branch target-set verdicts with soundness certificates.

This module combines the classifier's structural bounds
(:mod:`repro.analysis.classify`: jump tables, return sites, the
address-taken set) with the value-set dataflow fixed point
(:mod:`repro.analysis.dataflow`) into one :class:`TargetSetReport` that
gives every IB site a verdict:

``exact(targets)``
    the dynamic target is *always* a member of ``targets`` and the
    derivation is closed — proven register constants, or a recovered
    bounds-checked jump table (under assumption A2 below).
``bounded(targets, may_escape)``
    the dynamic target is a member of ``targets``, but the bound leans on
    the whole-program assumption A1; ``may_escape`` is True when the set
    is the global address-taken fallback rather than a site-local
    derivation.
``unknown``
    no non-trivial bound was recovered (still sound: the set is "all of
    text").

**Assumptions** (named in every certificate that uses them):

- ``A1`` *no fabricated code pointers*: an indirect transfer only lands
  on a recognized code address — the address-taken set, recovered table
  targets, or a return site.  This matches how the toolchain (and every
  workload generator in this repo) produces code pointers, and the
  cross-validator in :mod:`repro.eval.static_dynamic` checks it on every
  run.
- ``A2`` *jump-table words are immutable*: no store rewrites a recovered
  table's words at runtime.  Tracked stores that provably hit a table
  word *demote the site to unknown*; the assumption only covers stores
  the dataflow could not track.

Every verdict carries a :class:`Certificate` naming the rule, the
assumptions, and the evidence; :func:`verify_report` re-derives each rule
from the program image and fails on any mismatch — the machine check the
CI soundness gate runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.analysis.classify import (
    StaticAnalysis,
    analyze_program,
)
from repro.analysis.dataflow import (
    DataflowResult,
    analyze_dataflow,
    concrete,
)
from repro.isa.program import Program

#: Maximum preseed hints exported per site (IBTC/sieve warm-up budget).
MAX_PRESEED = 8

#: Verdict names, in decreasing precision order.
VERDICT_EXACT = "exact"
VERDICT_BOUNDED = "bounded"
VERDICT_UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class Certificate:
    """Machine-checkable evidence for one site verdict."""

    rule: str                      # derivation rule (see _RULES)
    assumptions: tuple[str, ...]   # subset of {"A1", "A2"}
    #: rule-specific evidence, JSON-ready (ints/strs/sorted lists only)
    evidence: dict = field(default_factory=dict)


#: Certificate rules and what verify_report re-checks for each.
_RULES = frozenset({
    "dataflow-consts",   # register value-set concretised to code addresses
    "jump-table",        # recovered bounds-checked table (A2)
    "return-sites",      # call-graph return sites (A1 when address-taken)
    "address-taken",     # global address-taken fallback (A1)
    "trivial-top",       # no bound: verdict unknown
})


@dataclass(frozen=True, slots=True)
class TargetVerdict:
    """Final verdict for one IB site."""

    pc: int
    kind: str            # "ijump" | "icall" | "ret"
    role: str            # classifier role
    verdict: str         # exact | bounded | unknown
    targets: frozenset[int]
    may_escape: bool
    certificate: Certificate
    #: preseed order: most useful targets first, capped at MAX_PRESEED
    hints: tuple[int, ...] = ()

    @property
    def singleton(self) -> int | None:
        """The sole target, when this site can be devirtualized."""
        if len(self.targets) == 1 and self.verdict != VERDICT_UNKNOWN:
            if not self.may_escape:
                return next(iter(self.targets))
        return None


@dataclass(slots=True)
class TargetSetReport:
    """Whole-program target-set analysis result."""

    program: Program
    analysis: StaticAnalysis
    dataflow: DataflowResult
    verdicts: dict[int, TargetVerdict]

    def verdict_counts(self) -> dict[str, int]:
        counts = {VERDICT_EXACT: 0, VERDICT_BOUNDED: 0, VERDICT_UNKNOWN: 0}
        for v in self.verdicts.values():
            counts[v.verdict] += 1
        return counts

    def devirt_candidates(self) -> dict[int, int]:
        """Site pc -> the single proven target (devirtualizable sites)."""
        out: dict[int, int] = {}
        for pc, v in sorted(self.verdicts.items()):
            single = v.singleton
            if single is not None:
                out[pc] = single
        return out

    def preseed_map(self) -> dict[int, tuple[int, ...]]:
        """Site pc -> preseed hints (sites worth warming, 1..MAX_PRESEED)."""
        out: dict[int, tuple[int, ...]] = {}
        for pc, v in sorted(self.verdicts.items()):
            if v.verdict == VERDICT_UNKNOWN or not v.hints:
                continue
            if len(v.hints) <= MAX_PRESEED:
                out[pc] = v.hints
        return out

    def static_bound(self, pc: int) -> frozenset[int] | None:
        """The sound target bound for a site, or ``None`` when unknown."""
        v = self.verdicts.get(pc)
        if v is None or v.verdict == VERDICT_UNKNOWN:
            return None
        return v.targets

    def to_dict(self) -> dict:
        """Deterministic JSON-ready form (sorted keys throughout)."""
        sites = {}
        for pc in sorted(self.verdicts):
            v = self.verdicts[pc]
            sites[f"{pc:#x}"] = {
                "assumptions": list(v.certificate.assumptions),
                "evidence": {
                    k: v.certificate.evidence[k]
                    for k in sorted(v.certificate.evidence)
                },
                "hints": [f"{t:#x}" for t in v.hints],
                "kind": v.kind,
                "may_escape": v.may_escape,
                "role": v.role,
                "rule": v.certificate.rule,
                "targets": sorted(f"{t:#x}" for t in v.targets),
                "verdict": v.verdict,
            }
        counts = self.verdict_counts()
        return {
            "counts": {k: counts[k] for k in sorted(counts)},
            "devirt_candidates": len(self.devirt_candidates()),
            "preseed_sites": len(self.preseed_map()),
            "rounds": self.dataflow.rounds,
            "sites": sites,
            "store_untracked": self.dataflow.store.untracked,
        }


def _resolved_values(
    dataflow: DataflowResult, analysis: StaticAnalysis, pc: int
) -> frozenset[int] | None:
    """Concrete text-address value set the dataflow proved for a site."""
    if not dataflow.reached(pc):
        return None
    values = concrete(dataflow.site_values[pc])
    if values is None:
        return None
    cfg = analysis.cfg
    if not all(cfg.in_text(v) for v in values):
        return None  # a non-code value in the set: not a proven target set
    return values


def _table_demoted(
    analysis: StaticAnalysis, dataflow: DataflowResult, site
) -> bool:
    """A2 demotion: a tracked store provably hits a table word."""
    table = site.table
    if table is None:
        return False
    return dataflow.store.stores_to(table.word_addrs)


def _hints_for(targets: frozenset[int]) -> tuple[int, ...]:
    return tuple(sorted(targets)[:MAX_PRESEED])


def build_report(
    program: Program,
    analysis: StaticAnalysis | None = None,
    dataflow: DataflowResult | None = None,
) -> TargetSetReport:
    """Run classification + dataflow and assign per-site verdicts."""
    if analysis is None:
        analysis = analyze_program(program)
    if dataflow is None:
        extra = {t for s in analysis.sites.values() for t in s.targets}
        dataflow = analyze_dataflow(analysis.cfg, extra)

    verdicts: dict[int, TargetVerdict] = {}
    for pc, site in sorted(analysis.sites.items()):
        resolved = _resolved_values(dataflow, analysis, pc)

        if site.role == "return":
            targets = site.targets
            assumptions = ("A1",) if site.function is not None else ()
            func = analysis.function_of(pc)
            escapes = (
                func is not None and func.entry in analysis.address_taken
            )
            verdicts[pc] = TargetVerdict(
                pc=pc, kind=site.kind, role=site.role,
                verdict=VERDICT_BOUNDED if targets else VERDICT_UNKNOWN,
                targets=targets,
                may_escape=escapes,
                certificate=Certificate(
                    rule="return-sites" if targets else "trivial-top",
                    assumptions=("A1",) if escapes else (),
                    evidence={
                        "function": func.name if func else None,
                        "return_sites": sorted(f"{t:#x}" for t in targets),
                    },
                ),
                hints=_hints_for(targets),
            )
            continue

        if site.role == "jump-table" and site.table is not None:
            if _table_demoted(analysis, dataflow, site):
                verdicts[pc] = TargetVerdict(
                    pc=pc, kind=site.kind, role=site.role,
                    verdict=VERDICT_UNKNOWN, targets=frozenset(),
                    may_escape=True,
                    certificate=Certificate(
                        rule="trivial-top", assumptions=(),
                        evidence={"demoted": "tracked store hits table"},
                    ),
                )
                continue
            table = site.table
            verdicts[pc] = TargetVerdict(
                pc=pc, kind=site.kind, role=site.role,
                verdict=VERDICT_EXACT, targets=table.targets,
                may_escape=False,
                certificate=Certificate(
                    rule="jump-table", assumptions=("A2",),
                    evidence={
                        "base": f"{table.base:#x}",
                        "span": table.span,
                        "words": sorted(
                            f"{a:#x}" for a in table.word_addrs
                        ),
                    },
                ),
                hints=_hints_for(table.targets),
            )
            continue

        if resolved is not None and resolved:
            # the dataflow proved the jumped-through register's value set;
            # intersect with the classifier bound when one exists
            targets = resolved
            if site.bounded and site.targets:
                targets = resolved & site.targets or resolved
            verdicts[pc] = TargetVerdict(
                pc=pc, kind=site.kind, role=site.role,
                verdict=VERDICT_EXACT, targets=frozenset(targets),
                may_escape=False,
                certificate=Certificate(
                    rule="dataflow-consts", assumptions=(),
                    evidence={
                        "loads": sorted(
                            f"{a:#x}"
                            for a in dataflow.site_loads.get(pc, ())
                        ),
                        "values": sorted(f"{t:#x}" for t in targets),
                    },
                ),
                hints=_hints_for(frozenset(targets)),
            )
            continue

        if site.role == "indirect-call" and site.targets:
            verdicts[pc] = TargetVerdict(
                pc=pc, kind=site.kind, role=site.role,
                verdict=VERDICT_BOUNDED, targets=site.targets,
                may_escape=True,
                certificate=Certificate(
                    rule="address-taken", assumptions=("A1",),
                    evidence={"size": len(site.targets)},
                ),
                hints=_hints_for(site.targets),
            )
            continue

        verdicts[pc] = TargetVerdict(
            pc=pc, kind=site.kind, role=site.role,
            verdict=VERDICT_UNKNOWN, targets=frozenset(),
            may_escape=True,
            certificate=Certificate(rule="trivial-top", assumptions=()),
        )

    return TargetSetReport(
        program=program,
        analysis=analysis,
        dataflow=dataflow,
        verdicts=verdicts,
    )


# -- certificate verification -----------------------------------------------


def verify_report(report: TargetSetReport) -> list[str]:
    """Machine-check every certificate; returns violation strings.

    Each rule is re-derived from the program image and the (re-run,
    deterministic) analyses — a report that passes with an empty list is
    internally consistent and its sets are reproducible.
    """
    violations: list[str] = []
    analysis = report.analysis
    cfg = analysis.cfg

    for pc, v in sorted(report.verdicts.items()):
        where = f"site {pc:#x} ({v.role})"
        cert = v.certificate
        if cert.rule not in _RULES:
            violations.append(f"{where}: unknown rule {cert.rule!r}")
            continue
        if v.verdict != VERDICT_UNKNOWN and not v.targets:
            violations.append(f"{where}: {v.verdict} with empty target set")
        if any(not cfg.in_text(t) for t in v.targets):
            violations.append(f"{where}: target outside text")
        if v.hints and not set(v.hints) <= set(v.targets):
            violations.append(f"{where}: hints not a subset of targets")

        site = analysis.sites.get(pc)
        if site is None:
            violations.append(f"{where}: not a classified IB site")
            continue

        if cert.rule == "jump-table":
            table = site.table
            if table is None:
                violations.append(f"{where}: no recovered table")
                continue
            if "A2" not in cert.assumptions:
                violations.append(f"{where}: jump-table without A2")
            from repro.analysis.classify import (  # local: avoid cycle
                _read_word,
                _table_in_image,
            )
            if not _table_in_image(report.program, table.base, table.span):
                violations.append(f"{where}: table runs past the image")
            rederived: set[int] = set()
            for addr in sorted(table.word_addrs):
                word = _read_word(report.program, addr)
                if word is None or not cfg.in_text(word):
                    violations.append(
                        f"{where}: table word {addr:#x} invalid"
                    )
                else:
                    rederived.add(word)
            if frozenset(rederived) != v.targets:
                violations.append(f"{where}: table targets drifted")
            if report.dataflow.store.stores_to(table.word_addrs):
                violations.append(
                    f"{where}: tracked store hits table (A2 demotion missed)"
                )
        elif cert.rule == "return-sites":
            if site.role != "return":
                violations.append(f"{where}: return-sites on non-return")
            if frozenset(site.targets) != v.targets:
                violations.append(f"{where}: return sites drifted")
        elif cert.rule == "address-taken":
            if v.targets != analysis.address_taken:
                violations.append(f"{where}: not the address-taken set")
            if "A1" not in cert.assumptions:
                violations.append(f"{where}: address-taken without A1")
        elif cert.rule == "dataflow-consts":
            resolved = _resolved_values(report.dataflow, analysis, pc)
            if resolved is None:
                violations.append(f"{where}: dataflow no longer resolves")
            elif not v.targets <= resolved:
                violations.append(f"{where}: verdict outside dataflow set")
        elif cert.rule == "trivial-top":
            if v.verdict != VERDICT_UNKNOWN:
                violations.append(f"{where}: trivial-top must be unknown")

    return violations


# -- cached entry point -----------------------------------------------------

_REPORT_CACHE: dict[str, TargetSetReport] = {}


def _program_key(program: Program) -> str:
    h = hashlib.sha256()
    h.update(program.text.base.to_bytes(4, "little"))
    h.update(bytes(program.text.data))
    h.update(program.data.base.to_bytes(4, "little"))
    h.update(bytes(program.data.data))
    h.update(program.entry.to_bytes(4, "little"))
    return h.hexdigest()


def analyze_targets(program: Program) -> TargetSetReport:
    """Cached whole-program target-set analysis (keyed by image bytes)."""
    key = _program_key(program)
    report = _REPORT_CACHE.get(key)
    if report is None:
        report = build_report(program)
        if len(_REPORT_CACHE) >= 64:
            _REPORT_CACHE.clear()
        _REPORT_CACHE[key] = report
    return report


__all__ = [
    "MAX_PRESEED",
    "VERDICT_EXACT",
    "VERDICT_BOUNDED",
    "VERDICT_UNKNOWN",
    "Certificate",
    "TargetVerdict",
    "TargetSetReport",
    "build_report",
    "verify_report",
    "analyze_targets",
]
