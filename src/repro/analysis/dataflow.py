"""Fixed-point abstract interpretation over the recovered CFG.

This is the value-set analysis underneath :mod:`repro.analysis.targets`:
every register is tracked through a small abstract domain

- ``BOT``                — unreachable / no information yet,
- ``ConstSet``           — a set of at most :data:`K_CONST` exact 32-bit
  values (function addresses, table bases, small loop counters),
- ``Strided``            — ``{base + i*stride | 0 <= i < count}``, the
  shape of a bounds-checked jump-table index after scaling,
- ``TOP``                — any value.

and propagated to a join-over-all-paths fixed point with a worklist over
basic blocks.  Joins that would exceed the constant-set budget widen to
``TOP`` (so loop-carried redefinitions converge), and conditional-branch
edges refine ``sltiu``-guarded indices into strided intervals.

**Memory.**  Word loads are resolved against the loaded image *joined
with every store the analysis can track*: a ``sw`` whose address is an
abstract constant (or small strided set) contributes its stored abstract
value to those words; a store whose address cannot be bounded marks the
whole store model *untracked*, after which every load returns ``TOP``.
Because store effects discovered late can invalidate loads served early,
the driver reruns the fixed point until the store model is stable
(bounded by :data:`MAX_ROUNDS`; the final fallback pins the model
untracked, which is trivially sound).

**Interprocedural seeding.**  Rather than matching calls and returns,
every block that can be entered "from the outside" — the program entry,
direct call targets, return sites, and every address-taken or
table-referenced block — is seeded with the all-``TOP`` state.  Constants
therefore only flow along fallthrough/branch/jump edges, which is exactly
the soundness boundary: any indirect transfer lands on a seeded block.
Syscalls clobber only ``v0`` (see :mod:`repro.machine.syscalls`) and
never write guest memory, so they are modelled precisely.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.cfg import (
    CFG,
    BasicBlock,
    TERM_BRANCH,
    TERM_CALL,
    TERM_FALL,
    TERM_ICALL,
    TERM_JUMP,
)
from repro.isa.opcodes import InstrClass, Op
from repro.isa.registers import REG_V0, REG_ZERO

#: Maximum size of a tracked constant set; joins past this widen to TOP.
K_CONST = 16

#: Maximum element count of a strided interval.
MAX_STRIDED = 4096

#: Maximum concrete addresses a tracked store may touch; beyond this the
#: store model degrades to untracked (every load becomes TOP).
MAX_STORE_FANOUT = 64

#: Maximum words a single load may gather from a strided address.
MAX_LOAD_FANOUT = 64

#: Store-model refinement rounds before pinning the model untracked.
MAX_ROUNDS = 4

_MASK = 0xFFFFFFFF


class _Top:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TOP"


class _Bot:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BOT"


TOP = _Top()
BOT = _Bot()


@dataclass(frozen=True, slots=True)
class ConstSet:
    """A set of at most :data:`K_CONST` exact 32-bit values."""

    values: frozenset[int]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "{" + ", ".join(f"{v:#x}" for v in sorted(self.values)) + "}"


@dataclass(frozen=True, slots=True)
class Strided:
    """``{(base + i*stride) & 0xffffffff | 0 <= i < count}``."""

    base: int
    stride: int
    count: int

    def concrete(self) -> frozenset[int]:
        return frozenset(
            (self.base + i * self.stride) & _MASK for i in range(self.count)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.base:#x}+{self.stride}*[0,{self.count})"


#: An abstract value: TOP, BOT, a ConstSet, or a Strided interval.
Value = object


def const(*values: int) -> Value:
    """Build a constant-set value, widening to TOP past the budget."""
    masked = frozenset(v & _MASK for v in values)
    if not masked:
        return BOT
    if len(masked) > K_CONST:
        return TOP
    return ConstSet(masked)


def concrete(value: Value, limit: int = MAX_STRIDED) -> frozenset[int] | None:
    """The concrete value set, or ``None`` for TOP/BOT/too-large."""
    if isinstance(value, ConstSet):
        return value.values
    if isinstance(value, Strided) and value.count <= limit:
        return value.concrete()
    return None


def join(a: Value, b: Value) -> Value:
    """Least upper bound (with widening past the constant-set budget)."""
    if a is BOT:
        return b
    if b is BOT:
        return a
    if a is TOP or b is TOP:
        return TOP
    if a == b:
        return a
    if isinstance(a, ConstSet) and isinstance(b, ConstSet):
        return const(*(a.values | b.values))
    # mixed const/strided: absorb when one concretises inside the other
    ca = concrete(a)
    cb = concrete(b)
    if ca is not None and cb is not None:
        if ca <= cb:
            return b
        if cb <= ca:
            return a
        if len(ca | cb) <= K_CONST:
            return const(*(ca | cb))
    return TOP


# -- register states --------------------------------------------------------
#
# A state maps register number -> Value for registers *below* TOP; a
# missing key means TOP, and ``zero`` is always the constant 0.  The
# all-TOP state (the seed for externally-enterable blocks) is ``{}``.


def _get(state: dict[int, Value], reg: int) -> Value:
    if reg == REG_ZERO:
        return const(0)
    return state.get(reg, TOP)


def _set(state: dict[int, Value], reg: int, value: Value) -> None:
    if reg == REG_ZERO:
        return
    if value is TOP:
        state.pop(reg, None)
    else:
        state[reg] = value


def join_states(
    a: dict[int, Value] | None, b: dict[int, Value]
) -> tuple[dict[int, Value], bool]:
    """Join ``b`` into ``a``; returns (joined, changed)."""
    if a is None:
        return dict(b), True
    changed = False
    for reg in list(a):
        joined = join(a[reg], b.get(reg, TOP))
        if joined is TOP:
            del a[reg]
            changed = True
        elif joined != a[reg]:
            a[reg] = joined
            changed = True
    return a, changed


# -- the store model --------------------------------------------------------


class StoreModel:
    """Join of every tracked store effect, plus the untracked flag."""

    __slots__ = ("tracked", "untracked")

    def __init__(self) -> None:
        #: word address -> join of every value stored there
        self.tracked: dict[int, Value] = {}
        #: a store with an unbounded address occurred; loads are TOP
        self.untracked = False

    def record(self, addr: Value, stored: Value) -> None:
        addrs = concrete(addr, limit=MAX_STORE_FANOUT)
        if addrs is None or len(addrs) > MAX_STORE_FANOUT:
            self.untracked = True
            return
        for a in addrs:
            word = a & ~3  # word-granular: sub-word stores smash the word
            self.tracked[word] = join(self.tracked.get(word, BOT), stored)

    def snapshot(self) -> tuple:
        return (
            self.untracked,
            tuple(sorted((a, v) for a, v in self.tracked.items())),
        )

    def stores_to(self, addrs: frozenset[int]) -> bool:
        """True if any tracked store may write one of ``addrs``."""
        return any((a & ~3) in self.tracked for a in addrs)


def _read_image_word(program, addr: int) -> int | None:
    for section in (program.data, program.text):
        if section.base <= addr and addr + 4 <= section.end:
            offset = addr - section.base
            return int.from_bytes(section.data[offset : offset + 4], "little")
    return None


def load_word(program, store: StoreModel, addr: Value) -> Value:
    """Abstract value of a word load at abstract address ``addr``."""
    if store.untracked:
        return TOP
    addrs = concrete(addr, limit=MAX_LOAD_FANOUT)
    if addrs is None or len(addrs) > MAX_LOAD_FANOUT:
        return TOP
    result: Value = BOT
    for a in addrs:
        word = _read_image_word(program, a)
        if word is None:
            return TOP  # load outside the image: value unknown
        value: Value = const(word)
        stored = store.tracked.get(a & ~3)
        if stored is not None:
            value = join(value, stored)
        result = join(result, value)
        if result is TOP:
            return TOP
    return result


# -- instruction transfer ---------------------------------------------------


def _binop(op: Op, a: int, b: int) -> int | None:
    if op is Op.ADD:
        return (a + b) & _MASK
    if op is Op.SUB:
        return (a - b) & _MASK
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.NOR:
        return ~(a | b) & _MASK
    if op is Op.SLT:
        return 1 if _s32(a) < _s32(b) else 0
    if op is Op.SLTU:
        return 1 if a < b else 0
    if op is Op.MUL:
        return (a * b) & _MASK
    if op is Op.DIV:
        return None if b == 0 else (_div(a, b)) & _MASK
    if op is Op.REM:
        return None if b == 0 else (_rem(a, b)) & _MASK
    if op is Op.SLLV:
        return (a << (b & 31)) & _MASK
    if op is Op.SRLV:
        return (a >> (b & 31)) & _MASK
    if op is Op.SRAV:
        return (_s32(a) >> (b & 31)) & _MASK
    return None


def _s32(v: int) -> int:
    return v - 0x1_0000_0000 if v & 0x8000_0000 else v


def _div(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    return int(sa / sb) if sb else 0


def _rem(a: int, b: int) -> int:
    sa, sb = _s32(a), _s32(b)
    return sa - int(sa / sb) * sb if sb else 0


def _cross(op: Op, a: Value, b: Value) -> Value:
    """Apply a binary op over two abstract values (cross product)."""
    # strided special cases first: index scaling and base displacement
    if op is Op.ADD:
        for s, c in ((a, b), (b, a)):
            if isinstance(s, Strided):
                cc = concrete(c, limit=1)
                if cc is not None and len(cc) == 1:
                    (delta,) = cc
                    return Strided(
                        (s.base + delta) & _MASK, s.stride, s.count
                    )
    ca = concrete(a, limit=K_CONST)
    cb = concrete(b, limit=K_CONST)
    if ca is None or cb is None or len(ca) * len(cb) > 4 * K_CONST:
        return TOP
    out: set[int] = set()
    for x in ca:
        for y in cb:
            r = _binop(op, x, y)
            if r is None:
                return TOP
            out.add(r)
    return const(*out)


@dataclass(slots=True)
class BlockTransfer:
    """Result of abstractly executing one basic block."""

    #: out-state per successor address (branch edges may be refined)
    out: dict[int, dict[int, Value]] = field(default_factory=dict)
    #: abstract target value when the terminator is an indirect transfer
    site_value: Value = TOP
    #: memory words this block's loads consulted (certificate support)
    loads: frozenset[int] = frozenset()


def transfer(
    cfg: CFG,
    block: BasicBlock,
    in_state: dict[int, Value],
    store: StoreModel,
) -> BlockTransfer:
    """Abstractly execute ``block`` from ``in_state``.

    Store effects are recorded into ``store`` as a side effect; branch
    successors get ``sltiu``-guard refinements applied per edge.
    """
    program = cfg.program
    state = dict(in_state)
    #: guard register -> (index register, unsigned bound) from sltiu
    guards: dict[int, tuple[int, int]] = {}
    loads: set[int] = set()
    result = BlockTransfer()

    def kill_guards(reg: int) -> None:
        for g, (idx, _n) in list(guards.items()):
            if g == reg or idx == reg:
                del guards[g]

    last = block.last
    for pc, instr in block.instrs:
        op = instr.op
        iclass = instr.iclass
        if instr.is_control:
            break  # terminator handled below
        dest = instr.writes_reg
        if op is Op.LUI:
            value: Value = const((instr.imm & 0xFFFF) << 16)
        elif op in (Op.ADDI, Op.ORI, Op.ANDI, Op.XORI, Op.SLTI, Op.SLTIU):
            src = _get(state, instr.rs)
            imm = instr.imm
            if op is Op.ADDI and isinstance(src, Strided):
                value = Strided((src.base + imm) & _MASK, src.stride,
                                src.count)
            else:
                cs = concrete(src, limit=K_CONST)
                if cs is None:
                    value = (
                        const(0, 1)
                        if op in (Op.SLTI, Op.SLTIU)
                        else TOP
                    )
                else:
                    out: set[int] = set()
                    for v in cs:
                        if op is Op.ADDI:
                            out.add((v + imm) & _MASK)
                        elif op is Op.ORI:
                            out.add(v | (imm & 0xFFFF))
                        elif op is Op.ANDI:
                            out.add(v & (imm & 0xFFFF))
                        elif op is Op.XORI:
                            out.add(v ^ (imm & 0xFFFF))
                        elif op is Op.SLTI:
                            out.add(1 if _s32(v) < imm else 0)
                        else:  # SLTIU: sign-extended imm, unsigned compare
                            out.add(1 if v < (imm & _MASK) else 0)
                    value = const(*out)
            if op is Op.SLTIU and dest is not None:
                kill_guards(dest)
                guards[dest] = (instr.rs, instr.imm & _MASK)
        elif op in (Op.SLL, Op.SRL, Op.SRA):
            src = _get(state, instr.rt)
            sh = instr.shamt & 31
            if op is Op.SLL and isinstance(src, Strided):
                value = Strided((src.base << sh) & _MASK,
                                (src.stride << sh) & _MASK, src.count)
            else:
                cs = concrete(src, limit=K_CONST)
                if cs is None:
                    value = TOP
                elif op is Op.SLL:
                    value = const(*((v << sh) & _MASK for v in cs))
                elif op is Op.SRL:
                    value = const(*(v >> sh for v in cs))
                else:
                    value = const(*((_s32(v) >> sh) & _MASK for v in cs))
        elif iclass in (InstrClass.ALU, InstrClass.SHIFT, InstrClass.MUL,
                        InstrClass.DIV):
            value = _cross(op, _get(state, instr.rs), _get(state, instr.rt))
        elif iclass is InstrClass.LOAD:
            base = _get(state, instr.rs)
            addr = _cross(Op.ADD, base, const(instr.imm))
            if op is Op.LW:
                value = load_word(program, store, addr)
                touched = concrete(addr, limit=MAX_LOAD_FANOUT)
                if touched is not None:
                    loads.update(touched)
            else:
                value = TOP  # sub-word loads never carry code pointers
        elif iclass is InstrClass.STORE:
            base = _get(state, instr.rs)
            addr = _cross(Op.ADD, base, const(instr.imm))
            store.record(addr, _get(state, instr.rt)
                         if op is Op.SW else TOP)
            continue
        elif iclass is InstrClass.SYSCALL:
            # syscalls write v0 only (read-int, sbrk) and never touch
            # guest memory — see repro.machine.syscalls
            kill_guards(REG_V0)
            _set(state, REG_V0, TOP)
            continue
        else:
            value = TOP
        if dest is not None:
            kill_guards(dest)
            _set(state, dest, value)

    # -- terminator ---------------------------------------------------------
    term = block.terminator
    if last is not None and block.instrs and block.instrs[-1][1].is_control:
        term_pc, term_instr = block.instrs[-1]
    else:
        term_pc, term_instr = (0, None)

    if term_instr is not None and term_instr.is_indirect:
        if term_instr.op is Op.RET:
            result.site_value = TOP  # ra tracked by return-site analysis
        else:
            result.site_value = _get(state, term_instr.rs)

    def out_for(succ: int, refined: dict[int, Value] | None = None) -> None:
        result.out[succ] = refined if refined is not None else dict(state)

    if term == TERM_BRANCH and term_instr is not None:
        target = term_instr.branch_target(term_pc)
        fall = block.end
        taken_state = dict(state)
        fall_state = dict(state)
        # sltiu-guard refinement: `sltiu g, i, N` + beq/bne g, zero
        if term_instr.op in (Op.BEQ, Op.BNE):
            for g_reg, other in ((term_instr.rs, term_instr.rt),
                                 (term_instr.rt, term_instr.rs)):
                if other == REG_ZERO and g_reg in guards:
                    idx, bound = guards[g_reg]
                    if 0 < bound <= MAX_STRIDED:
                        inside = Strided(0, 1, bound)
                        # beq g,zero: fallthrough has g!=0 (index < N);
                        # bne g,zero: taken edge has g!=0
                        edge = (fall_state if term_instr.op is Op.BEQ
                                else taken_state)
                        old = _get(edge, idx)
                        refined = _refine(old, inside)
                        _set(edge, idx, refined)
                    break
        if cfg.in_text(target):
            out_for(target, taken_state)
        if cfg.in_text(fall):
            if target == fall:
                result.out[fall], _ = join_states(
                    result.out.get(fall), fall_state
                )
            else:
                out_for(fall, fall_state)
    elif term == TERM_JUMP and term_instr is not None:
        target = term_instr.branch_target(term_pc)
        if cfg.in_text(target):
            out_for(target)
    elif term == TERM_FALL:
        if cfg.in_text(block.end):
            out_for(block.end)
    elif term in (TERM_CALL, TERM_ICALL):
        # the post-call state is seeded all-TOP by the driver (the callee
        # may clobber anything); no edge state to propagate
        pass

    result.loads = frozenset(loads)
    return result


def _refine(old: Value, inside: Strided) -> Value:
    """Meet ``old`` with a guard-derived strided interval (best effort)."""
    if old is TOP or old is BOT:
        return inside
    if isinstance(old, ConstSet):
        kept = frozenset(v for v in old.values if v < inside.count)
        return const(*kept) if kept else old
    if isinstance(old, Strided):
        return old if old.count <= inside.count else inside
    return old


# -- the fixed-point driver -------------------------------------------------


@dataclass(slots=True)
class DataflowResult:
    """Converged whole-program dataflow facts."""

    #: IB site pc -> abstract value of the jumped-through register
    site_values: dict[int, Value]
    #: IB site pc -> memory words its block's loads consulted
    site_loads: dict[int, frozenset[int]]
    #: block start -> converged in-state (reached blocks only)
    block_in: dict[int, dict[int, Value]]
    store: StoreModel
    #: block starts seeded with the all-TOP state
    seeds: frozenset[int]
    rounds: int
    iterations: int

    def reached(self, pc: int) -> bool:
        return pc in self.site_values


def default_seeds(cfg: CFG, extra: set[int] | None = None) -> set[int]:
    """Blocks enterable from outside straight-line flow (all-TOP seeds)."""
    seeds: set[int] = set()

    def add(addr: int) -> None:
        start = cfg.block_start_of.get(addr)
        if start is not None:
            seeds.add(start)

    add(cfg.program.entry)
    add(cfg.text_lo)
    for ref in cfg.const_code_refs:
        add(ref)
    for value in cfg.data_code_words.values():
        add(value)
    for block in cfg.blocks.values():
        if block.terminator in (TERM_CALL, TERM_ICALL):
            add(block.end)  # return site
        if block.call_target is not None:
            add(block.call_target)
    for addr in extra or ():
        add(addr)
    return seeds


def analyze_dataflow(
    cfg: CFG, extra_seeds: set[int] | None = None
) -> DataflowResult:
    """Run the store-model-refining fixed point to convergence."""
    seeds = default_seeds(cfg, extra_seeds)
    store = StoreModel()
    rounds = 0
    iterations = 0
    site_values: dict[int, Value] = {}
    site_loads: dict[int, frozenset[int]] = {}
    block_in: dict[int, dict[int, Value]] = {}

    for rounds in range(1, MAX_ROUNDS + 1):
        before = store.snapshot()
        if rounds == MAX_ROUNDS:
            # final fallback: a model that refuses to converge is pinned
            # untracked, which is trivially sound (every load is TOP)
            store.untracked = True
        site_values, site_loads, block_in, iters = _fixpoint(
            cfg, seeds, store
        )
        iterations += iters
        if store.snapshot() == before:
            break

    return DataflowResult(
        site_values=site_values,
        site_loads=site_loads,
        block_in=block_in,
        store=store,
        seeds=frozenset(seeds),
        rounds=rounds,
        iterations=iterations,
    )


def _fixpoint(
    cfg: CFG, seeds: set[int], store: StoreModel
) -> tuple[dict[int, Value], dict[int, frozenset[int]],
           dict[int, dict[int, Value]], int]:
    in_states: dict[int, dict[int, Value] | None] = {}
    work: deque[int] = deque()
    for seed in sorted(seeds):
        if seed in cfg.blocks:
            in_states[seed] = {}
            work.append(seed)
    queued = set(work)
    iterations = 0

    while work:
        start = work.popleft()
        queued.discard(start)
        state = in_states.get(start)
        if state is None:
            continue
        iterations += 1
        block = cfg.blocks[start]
        out = transfer(cfg, block, state, store)
        for succ, succ_state in out.out.items():
            # direct-edge targets are always leaders by CFG construction
            succ_start = cfg.block_start_of.get(succ)
            if succ_start is None or succ_start != succ:
                continue
            if succ_start in seeds:
                continue  # seeds stay pinned at all-TOP
            joined, changed = join_states(
                in_states.get(succ_start), succ_state
            )
            if changed:
                in_states[succ_start] = joined
                if succ_start not in queued:
                    work.append(succ_start)
                    queued.add(succ_start)

    # harvest converged per-site facts
    site_values: dict[int, Value] = {}
    site_loads: dict[int, frozenset[int]] = {}
    block_in: dict[int, dict[int, Value]] = {}
    for start, state in in_states.items():
        if state is None:
            continue
        block_in[start] = state
        block = cfg.blocks[start]
        last = block.last
        if last is None or not last[1].is_indirect:
            continue
        out = transfer(cfg, block, state, store)
        site_values[last[0]] = out.site_value
        site_loads[last[0]] = out.loads
    return site_values, site_loads, block_in, iterations


__all__ = [
    "TOP",
    "BOT",
    "ConstSet",
    "Strided",
    "StoreModel",
    "DataflowResult",
    "K_CONST",
    "MAX_STRIDED",
    "const",
    "concrete",
    "join",
    "join_states",
    "load_word",
    "transfer",
    "default_seeds",
    "analyze_dataflow",
]
