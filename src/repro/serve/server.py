"""Asyncio HTTP/1.1 front end and process lifecycle for the daemon.

Stdlib-only on purpose: a minimal, careful HTTP/1.1 server over
``asyncio.start_server`` — keep-alive, ``Content-Length`` bodies only,
bounded body size, idle timeout — is a few hundred lines and keeps the
container dependency-free.  Everything interesting lives in
:class:`repro.serve.service.ExperimentService`; this module only maps
requests onto :meth:`submit` and serialises :class:`Response` objects.

Routes::

    GET  /healthz   liveness: the process is up and the loop turns
    GET  /readyz    readiness: admitting work (503 while draining)
    GET  /metrics   deterministic JSON metrics snapshot
    POST /v1/cells  execute one experiment cell request

Lifecycle: :func:`run_daemon` starts the service (replaying the
journal), prints a single machine-readable ready line to stdout::

    {"event": "ready", "port": 8421, "pid": 1234, "replayed": 0}

then serves until ``SIGTERM``/``SIGINT``, at which point it stops
accepting connections, drains in-flight work (bounded by
``drain_timeout``), fsyncs the journal and exits 0.  A second signal
during the drain is ignored — the drain already has a hard deadline.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from typing import Callable

from repro.serve.service import ExperimentService, Response, ServeSettings

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 64 * 1024

#: Largest accepted request-line + headers block, in bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Idle keep-alive connections are closed after this many seconds.
IDLE_TIMEOUT = 75.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render(response: Response, keep_alive: bool) -> bytes:
    body = json.dumps(response.body, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class HttpFrontend:
    """Connection handler bridging raw HTTP onto the service core."""

    def __init__(self, service: ExperimentService) -> None:
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive, done = await self._one_request(reader, writer)
                if not keep_alive or done:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            self.service.metrics.incr("serve.client_disconnects")
        except asyncio.TimeoutError:
            pass  # idle keep-alive connection: close quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[bool, bool]:
        """Serve one request; returns (keep_alive, connection_done)."""
        header_block = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=IDLE_TIMEOUT
        )
        if len(header_block) > MAX_HEADER_BYTES:
            await self._send(writer, Response(
                400, {"error": "header block too large"}), False)
            return False, True
        try:
            method, target, headers = _parse_head(header_block)
        except ValueError as exc:
            await self._send(writer, Response(
                400, {"error": str(exc)}), False)
            return False, True

        keep_alive = headers.get("connection", "").lower() != "close"
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            # read nothing further; the connection is now unsynchronised
            await self._send(writer, Response(413, {
                "error": f"body exceeds {MAX_BODY_BYTES} bytes",
            }), False)
            return False, True
        body = await reader.readexactly(length) if length else b""

        response = await self._route(method, target, body)
        # shutting down: signal the client not to reuse the connection
        if self.service.draining:
            keep_alive = False
        await self._send(writer, response, keep_alive)
        return keep_alive, False

    async def _route(self, method: str, target: str,
                     body: bytes) -> Response:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return Response(200, {"status": "ok"})
        if path == "/readyz":
            if method != "GET":
                return _method_not_allowed("GET")
            if self.service.ready:
                return Response(200, {"status": "ready"})
            return Response(503, {
                "status": "draining" if self.service.draining
                else "starting",
            })
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed("GET")
            return Response(200, self.service.metrics_payload())
        if path == "/v1/cells":
            if method != "POST":
                return _method_not_allowed("POST")
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return Response(400, {"error": "body is not valid JSON"})
            return await self.service.submit(payload)
        return Response(404, {"error": f"no route for {path}"})

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Response, keep_alive: bool) -> None:
        writer.write(_render(response, keep_alive))
        await writer.drain()


def _parse_head(block: bytes) -> tuple[str, str, dict[str, str]]:
    try:
        text = block.decode("ascii")
    except UnicodeDecodeError:
        raise ValueError("request head is not ASCII") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError("malformed request line")
    method, target = parts[0], parts[1]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError("malformed header line")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    if length is not None and not length.isdigit():
        raise ValueError("malformed Content-Length")
    return method, target, headers


def _method_not_allowed(allowed: str) -> Response:
    return Response(405, {"error": "method not allowed"},
                    headers={"Allow": allowed})


async def run_daemon(
    settings: ServeSettings,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: Callable[[dict], None] | None = None,
) -> int:
    """Serve until SIGTERM/SIGINT; returns 0 on a clean drain, 1 else.

    ``port=0`` binds an ephemeral port; the bound port is in the ready
    line, so callers (tests, the load generator) never race a fixed
    port.  ``announce`` overrides the default stdout ready line.
    """
    service = ExperimentService(settings)
    frontend = HttpFrontend(service)
    replayed = await service.start()
    server = await asyncio.start_server(frontend.handle, host=host,
                                        port=port)
    bound_port = server.sockets[0].getsockname()[1]

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)

    ready = {"event": "ready", "port": bound_port,
             "pid": os.getpid(), "replayed": replayed}
    if announce is not None:
        announce(ready)
    else:
        print(json.dumps(ready, sort_keys=True), flush=True)

    await stop.wait()
    service.begin_drain()        # /readyz flips before the listener dies
    server.close()
    await server.wait_closed()
    drained = await service.drain()
    closing = {"event": "stopped", "drained": drained}
    if announce is not None:
        announce(closing)
    else:
        print(json.dumps(closing, sort_keys=True), flush=True)
    return 0 if drained else 1


__all__ = ["HttpFrontend", "IDLE_TIMEOUT", "MAX_BODY_BYTES", "run_daemon"]
