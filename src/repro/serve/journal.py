"""Write-ahead request journal: accepted work survives a crash.

Every admitted request is appended to ``journal.jsonl`` *before* it is
queued, and marked ``done``/``failed`` when it resolves, so the set of
accepted-but-unfinished requests is always recoverable from disk.  On
startup the daemon replays that set: the requests re-enter the pipeline
as waiter-less computations whose results land in the disk cache, so a
client retrying after a daemon crash is served the exact result its
original request would have produced — accepted work resumes instead of
vanishing.

Records are single JSON lines::

    {"event": "accepted", "id": 7, "key": "<sha256>", "request": {...}}
    {"event": "done",     "id": 7, "key": "<sha256>"}
    {"event": "failed",   "id": 7, "key": "<sha256>", "error": "..."}

Appends are flushed to the kernel per record (a ``SIGKILL``-proof
write-ahead guarantee; only a whole-machine crash can lose the tail) and
the file is fsynced on close.  Loading tolerates a torn final line — a
crash mid-append — by ignoring any line that fails to parse.  Startup
*compacts*: the journal is atomically rewritten with only the pending
``accepted`` records, so it stays bounded by in-flight work rather than
growing with lifetime traffic.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Journal file name inside the daemon's state directory.
JOURNAL_NAME = "journal.jsonl"


@dataclass(frozen=True)
class PendingRequest:
    """One accepted-but-unfinished request recovered from the journal."""

    id: int
    key: str
    payload: dict


def load_pending(path: Path) -> tuple[list[PendingRequest], int]:
    """Pending requests in acceptance order, plus the next free id.

    Corrupt or torn lines are skipped; ``done``/``failed`` markers
    cancel their ``accepted`` record whatever the interleaving.
    """
    accepted: dict[int, PendingRequest] = {}
    max_id = 0
    try:
        text = path.read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return [], 1
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            event = record["event"]
            record_id = int(record["id"])
        except (ValueError, TypeError, KeyError):
            continue  # torn or corrupt line: ignore
        max_id = max(max_id, record_id)
        if event == "accepted":
            payload = record.get("request")
            key = record.get("key")
            if isinstance(payload, dict) and isinstance(key, str):
                accepted[record_id] = PendingRequest(
                    id=record_id, key=key, payload=payload
                )
        elif event in ("done", "failed"):
            accepted.pop(record_id, None)
    return [accepted[i] for i in sorted(accepted)], max_id + 1


class Journal:
    """Append-only write-ahead journal bound to one state directory."""

    def __init__(self, state_dir: Path | str) -> None:
        self.path = Path(state_dir) / JOURNAL_NAME
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._next_id = 1

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> list[PendingRequest]:
        """Compact the journal and return the pending set to replay."""
        pending, self._next_id = load_pending(self.path)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-journal-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for request in pending:
                    handle.write(json.dumps({
                        "event": "accepted", "id": request.id,
                        "key": request.key, "request": request.payload,
                    }, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._handle = open(self.path, "a", encoding="utf-8")
        return pending

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # -- records -------------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def accepted(self, key: str, payload: dict) -> int:
        """Journal an admitted request; returns its journal id."""
        record_id = self._next_id
        self._next_id += 1
        self._append({"event": "accepted", "id": record_id, "key": key,
                      "request": payload})
        return record_id

    def done(self, record_id: int, key: str) -> None:
        self._append({"event": "done", "id": record_id, "key": key})

    def failed(self, record_id: int, key: str, error: str) -> None:
        self._append({"event": "failed", "id": record_id, "key": key,
                      "error": error})


__all__ = ["JOURNAL_NAME", "Journal", "PendingRequest", "load_pending"]
