"""Per-cell-family circuit breaker: closed → open → half-open.

A *family* (see :mod:`repro.serve.protocol`) groups requests that share
a failure shape — same workload, kind, config label and profile, fuel
excluded.  When a family fails ``threshold`` consecutive times it is
quarantined (*open*): admission fast-fails with a retry hint instead of
burning workers on a crash loop, while healthy families keep flowing.
After a deterministic exponential backoff (seeded jitter per family, so
quarantined families do not re-probe in lockstep) the family turns
*half-open*: exactly one probe request is admitted.  A successful probe
closes the family; a failed probe re-opens it with the next, longer
backoff.

The clock is injectable (``time.monotonic`` by default), so state
transitions are unit-testable with a fake clock and no real sleeps —
the same discipline as :mod:`repro.eval.backoff`, whose policy drives
the open-interval schedule.  This mirrors the executor's
quarantine/DEGRADED semantics (docs/robustness.md): a breaker rejection
is the service-level analogue of a quarantined cell, and like DEGRADED
tables it can never replace a good result — it only ever refuses work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.eval.backoff import BackoffPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Default open-interval schedule: 1s, 2s, 4s, ... capped at 60s.
DEFAULT_POLICY = BackoffPolicy(base=1.0, factor=2.0, ceiling=60.0,
                               jitter=0.5, seed=0)

#: Called on every state change: (family, old_state, new_state).
TransitionFn = Callable[[str, str, str], None]


@dataclass
class FamilyState:
    """Mutable breaker bookkeeping for one cell family."""

    state: str = CLOSED
    failures: int = 0       #: consecutive failures while closed
    open_cycles: int = 0    #: consecutive open periods (backoff attempt)
    retry_at: float = 0.0   #: clock value at which a probe is admitted
    probing: bool = False   #: a half-open probe is in flight
    opened_total: int = 0   #: lifetime count of closed/half-open → open

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "open_cycles": self.open_cycles,
            "opened_total": self.opened_total,
        }


class CircuitBreaker:
    """Failure tracker over cell families with deterministic backoff."""

    def __init__(
        self,
        threshold: int = 3,
        policy: BackoffPolicy = DEFAULT_POLICY,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionFn | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.policy = policy
        self.clock = clock
        self.on_transition = on_transition
        self.transitions = 0
        self._families: dict[str, FamilyState] = {}

    def _shift(self, family: str, state: FamilyState, new: str) -> None:
        old = state.state
        if old == new:
            return
        state.state = new
        self.transitions += 1
        if self.on_transition is not None:
            self.on_transition(family, old, new)

    # -- admission -----------------------------------------------------------

    def admit(self, family: str) -> tuple[bool, float]:
        """Whether a request for ``family`` may run now.

        Returns ``(allowed, retry_after)``: when ``allowed`` is False,
        ``retry_after`` is the seconds until the next admission window
        (0.0 when the window is gated on an in-flight probe rather than
        the clock).
        """
        state = self._families.get(family)
        if state is None or state.state == CLOSED:
            return True, 0.0
        now = self.clock()
        if state.state == OPEN:
            if now < state.retry_at:
                return False, state.retry_at - now
            self._shift(family, state, HALF_OPEN)
            state.probing = True
            return True, 0.0
        # half-open: one probe at a time
        if state.probing:
            return False, 0.0
        state.probing = True
        return True, 0.0

    # -- outcome reporting ---------------------------------------------------

    def record_success(self, family: str) -> None:
        """A request for ``family`` completed: close and reset."""
        state = self._families.get(family)
        if state is None:
            return
        self._shift(family, state, CLOSED)
        state.failures = 0
        state.open_cycles = 0
        state.probing = False

    def record_failure(self, family: str) -> None:
        """A request for ``family`` failed: count, maybe quarantine."""
        state = self._families.setdefault(family, FamilyState())
        if state.state == HALF_OPEN:
            self._open(family, state)            # probe failed: re-open
        elif state.state == CLOSED:
            state.failures += 1
            if state.failures >= self.threshold:
                self._open(family, state)
        # already OPEN: a straggler admitted before the trip; no-op

    def _open(self, family: str, state: FamilyState) -> None:
        state.open_cycles += 1
        state.opened_total += 1
        state.probing = False
        state.retry_at = self.clock() + self.policy.delay(
            state.open_cycles, token=family
        )
        self._shift(family, state, OPEN)

    # -- introspection -------------------------------------------------------

    def state_of(self, family: str) -> str:
        state = self._families.get(family)
        return state.state if state is not None else CLOSED

    def snapshot(self) -> dict:
        """Deterministic JSON-ready view for ``/metrics``."""
        return {
            "threshold": self.threshold,
            "transitions": self.transitions,
            "open": sorted(
                family for family, state in self._families.items()
                if state.state != CLOSED
            ),
            "families": {
                family: self._families[family].snapshot()
                for family in sorted(self._families)
            },
        }


__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "DEFAULT_POLICY",
    "FamilyState",
    "HALF_OPEN",
    "OPEN",
]
