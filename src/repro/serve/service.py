"""The serve daemon's HTTP-free core: admission, coalescing, caching,
batching dispatch, circuit breaking, journaling, metrics and drain.

Request lifecycle (``submit``):

1. **Validate** (:mod:`repro.serve.protocol`) — malformed → 400.
2. **Cache tiers** — the in-memory LRU then the disk cache
   (:mod:`repro.eval.diskcache`); a hit never touches a worker and is
   correct by content addressing.  Uncacheable (fault-injected) cells
   skip this, preserving the executor's contract.
3. **Coalesce** — an identical in-flight fingerprint joins that entry's
   future instead of queueing a duplicate computation.
4. **Circuit breaker** (:mod:`repro.serve.breaker`) — a quarantined cell
   family fast-fails 503 with a retry hint while healthy traffic flows.
5. **Admission** — the bounded queue is checked *before* any state is
   written; a full queue sheds the request with 429 + ``Retry-After``
   (fast-fail, never head-of-line blocking).
6. **Journal** (:mod:`repro.serve.journal`) — the request is persisted
   *before* it becomes runnable, so accepted work survives a crash.
7. **Dispatch** — a single dispatcher task drains the queue in batches
   onto :func:`repro.eval.parallel.execute_cells`, inheriting its
   watchdog, bounded-retry and crash-recovery semantics.  A request
   deadline is propagated as the executor watchdog, so a client timeout
   *kills* a hung worker instead of orphaning it; entries with explicit
   deadlines run as their own single-cell executions so one short
   deadline can never starve a batch-mate of its time budget.

Nothing in this file talks HTTP; :mod:`repro.serve.server` maps
:class:`Response` objects onto the wire, and tests drive the service
in-process.
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.eval.backoff import BackoffPolicy
from repro.eval.cells import Cell, encode_result
from repro.eval.diskcache import DiskCache
from repro.eval.parallel import CellFailure, execute_cells
from repro.serve.breaker import CircuitBreaker
from repro.serve.journal import Journal
from repro.serve.protocol import CellRequest, ProtocolError, parse_request
from repro.trace.session import MetricsRegistry


def _pool_context():
    """Fork-safe multiprocessing context for dispatcher-thread pools.

    The dispatcher runs ``execute_cells`` from a worker thread of a
    multithreaded (asyncio) process; plain ``fork`` there intermittently
    deadlocks the child on locks held by other threads at fork time.
    ``forkserver`` execs a single-threaded server process and forks the
    workers from *that*, which is safe — and preloading the cell modules
    keeps per-batch worker start cheap.  Platforms without forkserver
    (none we run on) fall back to the default context.
    """
    try:
        context = multiprocessing.get_context("forkserver")
    except ValueError:       # pragma: no cover - non-POSIX fallback
        return None
    context.set_forkserver_preload(
        ["repro.eval.cells", "repro.eval.parallel", "repro.eval.runner"]
    )
    return context


@dataclass(frozen=True)
class ServeSettings:
    """Daemon configuration (CLI flags map 1:1 onto these fields)."""

    queue_depth: int = 64           #: bounded admission queue capacity
    jobs: int = 2                   #: worker processes / max batch size
    timeout: float | None = 60.0    #: default per-cell watchdog (seconds)
    retries: int = 1                #: executor retry budget per cell
    state_dir: Path = Path("results") / "serve"   #: journal home
    cache_dir: Path | None = Path("results") / ".cache"
    lru_entries: int = 1024         #: in-memory result tier (0 = off)
    breaker_threshold: int = 3      #: consecutive failures to quarantine
    breaker_base: float = 1.0       #: open-interval backoff base seconds
    breaker_ceiling: float = 60.0   #: open-interval backoff ceiling
    retry_after: float = 1.0        #: Retry-After hint on 429 sheds
    drain_timeout: float = 30.0     #: SIGTERM grace for in-flight work
    cell_backoff: float = 0.1       #: executor inter-retry backoff base

    def breaker_policy(self) -> BackoffPolicy:
        return BackoffPolicy(base=self.breaker_base, factor=2.0,
                             ceiling=self.breaker_ceiling, jitter=0.5)


@dataclass(frozen=True)
class Response:
    """One service-level response; the HTTP layer serialises it."""

    status: int
    body: dict
    headers: dict = field(default_factory=dict)


@dataclass
class _Outcome:
    """Terminal state of one computation entry."""

    ok: bool
    result: object = None
    seconds: float = 0.0
    failure: CellFailure | None = None
    shutdown: bool = False


@dataclass
class _Entry:
    """One admitted computation: queued, executing, or resolving."""

    key: str
    cell: Cell
    family: str
    journal_id: int
    future: asyncio.Future
    enqueued_at: float
    #: watchdog bound derived from waiter deadlines (absolute clock
    #: value); None = no waiter bound, the default watchdog applies
    deadline_at: float | None = None
    #: a waiter without a deadline (or a replayed request) pinned the
    #: entry to the default watchdog; later deadlines cannot shrink it
    unbounded: bool = False


class ExperimentService:
    """Resilient experiment-serving core (see module docstring)."""

    def __init__(
        self,
        settings: ServeSettings | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.settings = settings or ServeSettings()
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.breaker = CircuitBreaker(
            threshold=self.settings.breaker_threshold,
            policy=self.settings.breaker_policy(),
            clock=clock,
            on_transition=self._on_breaker_transition,
        )
        self.cache = (
            DiskCache(self.settings.cache_dir,
                      lru_entries=self.settings.lru_entries)
            if self.settings.cache_dir is not None else None
        )
        self.journal = Journal(self.settings.state_dir)
        self._queue: asyncio.Queue[_Entry] | None = None
        self._inflight: dict[str, _Entry] = {}
        self._dispatcher: asyncio.Task | None = None
        self._started = False
        self._draining = False
        self._started_at = 0.0
        self._mp_context = _pool_context()
        #: recent request latencies in ms (bounded window, exact p50/p99)
        self._latencies: deque[float] = deque(maxlen=8192)

    # -- lifecycle -----------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Admitting new work (false before start and while draining)."""
        return self._started and not self._draining

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> int:
        """Open the journal, replay pending work, start dispatching.

        Returns the number of journal entries replayed.
        """
        if self._started:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.settings.queue_depth)
        pending = self.journal.open()
        self._started = True
        self._started_at = self.clock()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )
        replayed = 0
        for request in pending:
            try:
                parsed = parse_request(request.payload)
            except ProtocolError as exc:
                # version drift: the journaled request no longer parses
                self.journal.failed(request.id, request.key,
                                    f"replay: {exc}")
                self.metrics.incr("serve.replay_unparseable")
                continue
            entry = _Entry(
                key=parsed.key, cell=parsed.cell, family=parsed.family,
                journal_id=request.id,
                future=asyncio.get_running_loop().create_future(),
                enqueued_at=self.clock(),
                unbounded=True,
            )
            self._inflight[entry.key] = entry
            await self._queue.put(entry)   # may exceed shed bound: replay
            replayed += 1                  # work was already accepted
        self.metrics.incr("serve.replayed", replayed)
        return replayed

    def begin_drain(self) -> None:
        """Stop admitting; in-flight work keeps running."""
        self._draining = True

    async def drain(self) -> bool:
        """Finish (or checkpoint) in-flight work; returns True if empty.

        Waits up to ``settings.drain_timeout`` for the queue and the
        executing batch to finish.  Whatever is still unfinished keeps
        its ``accepted`` journal record and is replayed on the next
        start — checkpointing by construction.  Always stops the
        dispatcher and closes (fsyncs) the journal.
        """
        self.begin_drain()
        deadline = self.clock() + self.settings.drain_timeout
        queue = self._queue
        while self.clock() < deadline:
            if not self._inflight and (queue is None or queue.empty()):
                break
            await asyncio.sleep(0.02)
        drained = not self._inflight
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for entry in self._inflight.values():
            if not entry.future.done():
                entry.future.set_result(_Outcome(ok=False, shutdown=True))
        self._inflight.clear()
        self.journal.close()
        self._started = False
        return drained

    # -- submission ----------------------------------------------------------

    async def submit(self, payload: object) -> Response:
        """Serve one request payload end to end (see module docstring)."""
        t0 = self.clock()
        metrics = self.metrics
        metrics.incr("serve.requests")
        if not self._started:
            return self._finish(t0, Response(
                503, {"error": "service is not running"}
            ))
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            metrics.incr("serve.bad_requests")
            return self._finish(t0, Response(400, {"error": str(exc)}))

        # 1. cache tiers: memory LRU then disk, never for faulted cells
        if self.cache is not None and request.cell.cacheable:
            before_memory = self.cache.memory_hits
            cached = self.cache.get(request.cell)
            if cached is not None:
                from_memory = self.cache.memory_hits > before_memory
                metrics.incr("serve.cache_hits_memory" if from_memory
                             else "serve.cache_hits_disk")
                source = "cache-memory" if from_memory else "cache-disk"
                return self._finish(t0, self._ok_response(
                    request, cached, source, 0.0
                ))
            metrics.incr("serve.cache_misses")

        # 2. coalesce onto an identical in-flight computation
        entry = self._inflight.get(request.key)
        if entry is not None:
            metrics.incr("serve.coalesced")
            self._merge_deadline(entry, request.deadline)
            return await self._await_entry(request, entry, t0,
                                           source="coalesced")

        if self._draining:
            metrics.incr("serve.rejected_draining")
            return self._finish(t0, Response(
                503, {"error": "draining: not admitting new work"},
                headers={"Retry-After": _retry_after_header(
                    self.settings.retry_after)},
            ))

        # 3. circuit breaker: quarantined families fast-fail
        allowed, retry_in = self.breaker.admit(request.family)
        if not allowed:
            metrics.incr("serve.breaker_rejected")
            hint = retry_in if retry_in > 0 else self.settings.retry_after
            return self._finish(t0, Response(
                503,
                {"error": f"circuit open for family {request.family!r}",
                 "family": request.family, "retry_after": round(hint, 3)},
                headers={"Retry-After": _retry_after_header(hint)},
            ))

        # 4. admission control: full queue sheds fast with 429
        queue = self._queue
        assert queue is not None
        if queue.full():
            metrics.incr("serve.shed")
            return self._finish(t0, Response(
                429,
                {"error": "queue full: load shed",
                 "retry_after": self.settings.retry_after},
                headers={"Retry-After": _retry_after_header(
                    self.settings.retry_after)},
            ))

        # 5. write-ahead journal, then enqueue (no awaits in between, so
        #    the full-queue check above cannot race another submit)
        journal_id = self.journal.accepted(request.key, request.payload)
        entry = _Entry(
            key=request.key, cell=request.cell, family=request.family,
            journal_id=journal_id,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=t0,
        )
        self._merge_deadline(entry, request.deadline)
        self._inflight[request.key] = entry
        queue.put_nowait(entry)
        metrics.incr("serve.accepted")
        metrics.histogram("serve.queue_depth").record(queue.qsize())
        return await self._await_entry(request, entry, t0,
                                       source="computed")

    def _merge_deadline(self, entry: _Entry, deadline: float | None) -> None:
        """Fold a waiter deadline into the entry's watchdog bound.

        The bound is the *latest* waiter deadline: work is killed only
        once no waiter could still use the result.  A waiter without a
        deadline removes the bound permanently (the default watchdog
        still applies) — replayed journal entries start that way.
        """
        if deadline is None:
            entry.unbounded = True
            entry.deadline_at = None
            return
        if entry.unbounded:
            return
        candidate = self.clock() + deadline
        entry.deadline_at = (candidate if entry.deadline_at is None
                             else max(entry.deadline_at, candidate))

    async def _await_entry(
        self, request: CellRequest, entry: _Entry, t0: float, source: str
    ) -> Response:
        try:
            if request.deadline is not None:
                outcome = await asyncio.wait_for(
                    asyncio.shield(entry.future), timeout=request.deadline
                )
            else:
                outcome = await asyncio.shield(entry.future)
        except asyncio.TimeoutError:
            self.metrics.incr("serve.deadline_timeouts")
            return self._finish(t0, Response(
                504,
                {"error": "deadline exceeded waiting for result",
                 "key": request.key},
            ))
        return self._finish(t0, self._outcome_response(
            request, outcome, source
        ))

    def _outcome_response(
        self, request: CellRequest, outcome: _Outcome, source: str
    ) -> Response:
        if outcome.ok:
            return self._ok_response(request, outcome.result, source,
                                     outcome.seconds)
        if outcome.shutdown:
            return Response(503, {
                "error": "daemon shut down before the cell completed; "
                         "the request is journaled and will resume",
                "key": request.key,
            })
        failure = outcome.failure
        assert failure is not None
        status = 504 if failure.kind == "timeout" else 500
        return Response(status, {
            "error": "cell execution failed",
            "kind": failure.kind,
            "detail": failure.error,
            "attempts": failure.attempts,
            "key": request.key,
            "family": request.family,
        })

    def _ok_response(
        self, request: CellRequest, result: object, source: str,
        seconds: float,
    ) -> Response:
        return Response(200, {
            "key": request.key,
            "label": request.cell.label,
            "source": source,
            "seconds": round(seconds, 6),
            "result": encode_result(result),
        })

    def _finish(self, t0: float, response: Response) -> Response:
        self.metrics.incr(f"serve.status.{response.status}")
        self._latencies.append((self.clock() - t0) * 1000.0)
        return response

    # -- dispatch ------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            batch = [await queue.get()]
            while len(batch) < max(1, self.settings.jobs):
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._run_batch(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # the dispatcher must outlive any batch: fail the batch's
                # unresolved entries and keep serving — a lost dispatcher
                # would hang every future waiter
                self.metrics.incr("serve.dispatch_errors")
                for entry in batch:
                    if not entry.future.done():
                        self._resolve_failure(entry, CellFailure(
                            key=entry.key, label=entry.cell.label,
                            kind="error", attempts=0,
                            error=f"dispatch error: "
                                  f"{type(exc).__name__}: {exc}",
                        ))
            finally:
                for _ in batch:
                    queue.task_done()

    async def _run_batch(self, batch: list[_Entry]) -> None:
        now = self.clock()
        metrics = self.metrics
        metrics.histogram("serve.batch_size").record(len(batch))
        for entry in batch:
            wait_ms = int((now - entry.enqueued_at) * 1000)
            metrics.histogram("serve.queue_wait_ms").record(wait_ms)

        plain: list[_Entry] = []
        bounded: list[_Entry] = []
        expired: list[_Entry] = []
        for entry in batch:
            if entry.deadline_at is None:
                plain.append(entry)
            elif entry.deadline_at <= now:
                expired.append(entry)
            else:
                bounded.append(entry)

        for entry in expired:
            self._resolve_failure(entry, CellFailure(
                key=entry.key, label=entry.cell.label, kind="timeout",
                attempts=0, error="deadline expired before dispatch",
            ))

        tasks = []
        if plain:
            tasks.append(asyncio.to_thread(
                execute_cells, [entry.cell for entry in plain],
                jobs=min(self.settings.jobs, len(plain)),
                timeout=self.settings.timeout,
                retries=self.settings.retries,
                backoff=self.settings.cell_backoff,
                mp_context=self._mp_context,
            ))
        for entry in bounded:
            remaining = entry.deadline_at - now
            if self.settings.timeout is not None:
                remaining = min(remaining, self.settings.timeout)
            tasks.append(asyncio.to_thread(
                execute_cells, [entry.cell], jobs=1, timeout=remaining,
                retries=self.settings.retries,
                backoff=self.settings.cell_backoff,
                mp_context=self._mp_context,
            ))
        if not tasks:
            return
        outcomes = await asyncio.gather(*tasks)

        results: dict[str, object] = {}
        failures: dict[str, CellFailure] = {}
        seconds: dict[str, float] = {}
        for cell_results, report in outcomes:
            results.update(cell_results)
            failures.update(report.failures)
            seconds.update(report.cell_seconds)
            if report.retries:
                metrics.incr("serve.cell_retries", report.retries)

        # persist results *before* releasing any waiter: a client that
        # resubmits the instant its response lands must hit the cache,
        # and a crash after ``done`` can never lose an unpersisted result
        if self.cache is not None:
            cache = self.cache
            to_persist = [entry for entry in plain + bounded
                          if entry.key in results and entry.cell.cacheable]
            for entry in to_persist:
                try:
                    await asyncio.to_thread(
                        cache.put, entry.cell, results[entry.key]
                    )
                except Exception:
                    # a failed persist (disk full, encoding) must not
                    # fail a good result; the cell just recomputes later
                    metrics.incr("serve.cache_put_errors")
        for entry in plain + bounded:
            if entry.key in results:
                metrics.incr("serve.computed")
                self.breaker.record_success(entry.family)
                self.journal.done(entry.journal_id, entry.key)
                self._resolve(entry, _Outcome(
                    ok=True, result=results[entry.key],
                    seconds=seconds.get(entry.key, 0.0),
                ))
            else:
                failure = failures.get(entry.key) or CellFailure(
                    key=entry.key, label=entry.cell.label, kind="error",
                    attempts=0, error="executor returned no result",
                )
                self._resolve_failure(entry, failure)

    def _resolve(self, entry: _Entry, outcome: _Outcome) -> None:
        self._inflight.pop(entry.key, None)
        if not entry.future.done():
            entry.future.set_result(outcome)

    def _resolve_failure(self, entry: _Entry, failure: CellFailure) -> None:
        self.metrics.incr("serve.failures")
        self.breaker.record_failure(entry.family)
        self.journal.failed(entry.journal_id, entry.key,
                            f"{failure.kind}: {failure.error}")
        self._resolve(entry, _Outcome(ok=False, failure=failure))

    def _on_breaker_transition(self, family: str, old: str,
                               new: str) -> None:
        self.metrics.incr(f"serve.breaker.{old}_to_{new}")

    # -- observability -------------------------------------------------------

    def metrics_payload(self) -> dict:
        """Deterministically-ordered JSON body for ``GET /metrics``."""
        queue = self._queue
        counters = self.metrics.counters
        lookups = (
            counters.get("serve.cache_hits_memory", 0)
            + counters.get("serve.cache_hits_disk", 0)
            + counters.get("serve.cache_misses", 0)
        )
        hits = (counters.get("serve.cache_hits_memory", 0)
                + counters.get("serve.cache_hits_disk", 0))
        latencies = sorted(self._latencies)
        depth_hist = self.metrics.histograms.get("serve.queue_depth")
        return {
            "uptime_s": round(self.clock() - self._started_at, 3)
            if self._started else 0.0,
            "ready": self.ready,
            "draining": self._draining,
            "queue": {
                "depth": queue.qsize() if queue is not None else 0,
                "capacity": self.settings.queue_depth,
                "inflight": len(self._inflight),
                "depth_p50": depth_hist.quantile(0.5) if depth_hist else 0,
                "depth_p99": depth_hist.quantile(0.99) if depth_hist else 0,
            },
            "latency_ms": _quantiles(latencies),
            "cache": {
                "hit_rate": hits / lookups if lookups else 0.0,
                "memory_hits": counters.get("serve.cache_hits_memory", 0),
                "disk_hits": counters.get("serve.cache_hits_disk", 0),
                "misses": counters.get("serve.cache_misses", 0),
                "lru_entries": len(self.cache.lru)
                if self.cache is not None and self.cache.lru is not None
                else 0,
            },
            "breaker": self.breaker.snapshot(),
            "metrics": self.metrics.as_dict(),
        }


def _retry_after_header(seconds: float) -> str:
    """HTTP ``Retry-After`` value: whole seconds, at least 1."""
    return str(max(1, math.ceil(seconds)))


def _quantiles(sorted_ms: list[float]) -> dict:
    """Exact latency quantiles over the recent-window reservoir."""
    if not sorted_ms:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0,
                "max": 0.0}

    def at(q: float) -> float:
        index = min(len(sorted_ms) - 1,
                    max(0, int(q * len(sorted_ms) + 0.5) - 1))
        return round(sorted_ms[index], 3)

    return {
        "count": len(sorted_ms),
        "p50": at(0.5),
        "p99": at(0.99),
        "mean": round(sum(sorted_ms) / len(sorted_ms), 3),
        "max": round(sorted_ms[-1], 3),
    }


__all__ = ["ExperimentService", "Response", "ServeSettings"]
