"""Request protocol for the serve daemon: validation and cell building.

A request names one experiment cell in JSON::

    {"kind": "measure", "workload": "gzip_like", "scale": "tiny",
     "config": {"ib": "ibtc", "returns": "shadow"}, "profile": "simple",
     "fuel": 30000000, "deadline": 30.0}

``parse_request`` turns that into the same content-addressed
:class:`repro.eval.cells.Cell` the batch executor runs, so a served
result is *by construction* byte-identical to a cold serial run of the
same cell: identical fingerprints imply identical results, and the
fingerprint covers the workload source, scale, fuel and every
fingerprint-relevant config/profile field.

Validation is strict: only registered workloads, known scales/profiles,
and whitelisted config fields are accepted; service-level knobs
(``engine``, ``faults``, ``trace``) are daemon configuration, not
request configuration, and are rejected so a client can never flip the
daemon into an uncacheable or differently-costed mode per request.

The *family* string groups cells that share a failure shape for the
circuit breaker: workload + kind + config label + profile, but **not**
fuel — so a crash-looping shape (e.g. a fuel too small to finish) is
quarantined as a family, and a later well-formed request for the same
shape is exactly the half-open probe that recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.cells import Cell, fanout_cell, measure_cell, native_cell
from repro.eval.runner import DEFAULT_FUEL
from repro.host.profile import PROFILES, get_profile
from repro.sdt.config import SDTConfig
from repro.workloads import workload_names

#: Request kinds, matching the executor's cell kinds.
KINDS = ("measure", "native", "fanout")

#: Accepted workload scales.
SCALES = ("tiny", "small", "large")

#: Upper bound on a per-request deadline, in seconds.
MAX_DEADLINE = 600.0

#: Upper bound on the per-cell instruction budget.
MAX_FUEL = 10**12

#: SDTConfig fields a request may set.  ``engine``/``faults``/``trace``
#: are deliberately absent (daemon-level), as is ``profile`` (named via
#: the request's ``profile`` field instead of inline).
CONFIG_FIELDS = frozenset({
    "ib", "ibtc_entries", "ibtc_shared", "ibtc_inline", "ibtc_hash",
    "inline_predict", "sieve_buckets", "sieve_policy", "returns",
    "shadow_depth", "retcache_entries", "linking", "static_targets",
    "trace_jumps", "fragment_cache_bytes", "max_fragment_instrs",
    "coherence",
})


class ProtocolError(ValueError):
    """A malformed request: the HTTP layer maps this to 400."""


@dataclass(frozen=True)
class CellRequest:
    """One validated request: the cell to run plus service metadata."""

    cell: Cell            #: the content-addressed unit of work
    family: str           #: circuit-breaker grouping (no fuel)
    deadline: float | None  #: client deadline in seconds, if any
    payload: dict         #: canonical JSON-able form (journaled verbatim)

    @property
    def key(self) -> str:
        return self.cell.key()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _parse_deadline(value: object) -> float | None:
    if value is None:
        return None
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             "deadline must be a number of seconds")
    deadline = float(value)
    _require(0.0 < deadline <= MAX_DEADLINE,
             f"deadline must be in (0, {MAX_DEADLINE:g}] seconds")
    return deadline


def parse_request(payload: object) -> CellRequest:
    """Validate a request payload and build its cell.

    Raises :class:`ProtocolError` with a client-safe message on any
    malformed field; never raises on well-formed input.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    assert isinstance(payload, dict)
    known = {"kind", "workload", "scale", "fuel", "config", "profile",
             "deadline"}
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown request field(s): {', '.join(unknown)}")

    kind = payload.get("kind", "measure")
    _require(kind in KINDS, f"kind must be one of {KINDS}")

    workload = payload.get("workload")
    _require(isinstance(workload, str) and workload in workload_names(),
             "workload must name a registered workload "
             f"(one of: {', '.join(workload_names())})")

    scale = payload.get("scale", "tiny")
    _require(scale in SCALES, f"scale must be one of {SCALES}")

    fuel = payload.get("fuel", DEFAULT_FUEL)
    _require(isinstance(fuel, int) and not isinstance(fuel, bool)
             and 0 < fuel <= MAX_FUEL,
             f"fuel must be an integer in [1, {MAX_FUEL}]")

    profile_name = payload.get("profile", "simple")
    _require(isinstance(profile_name, str) and profile_name in PROFILES,
             f"profile must be one of {sorted(PROFILES)}")
    profile = get_profile(profile_name)

    deadline = _parse_deadline(payload.get("deadline"))

    config_payload = payload.get("config", {})
    _require(isinstance(config_payload, dict),
             "config must be a JSON object")
    if kind != "measure":
        _require(not config_payload, f"{kind} cells take no config")

    if kind == "measure":
        bad = sorted(set(config_payload) - CONFIG_FIELDS)
        _require(not bad, f"unknown config field(s): {', '.join(bad)}")
        try:
            config = SDTConfig(profile=profile, **config_payload)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid config: {exc}") from None
        cell = measure_cell(workload, scale, config, fuel=fuel)
        family = f"measure:{workload}:{config.label}@{profile.name}"
    elif kind == "native":
        cell = native_cell(workload, scale, profile, fuel=fuel)
        family = f"native:{workload}@{profile.name}"
    else:
        cell = fanout_cell(workload, scale, fuel=fuel)
        family = f"fanout:{workload}"

    canonical = {
        "kind": kind,
        "workload": workload,
        "scale": scale,
        "fuel": fuel,
        "profile": profile_name,
        "config": {key: config_payload[key] for key in sorted(config_payload)},
    }
    if deadline is not None:
        canonical["deadline"] = deadline
    return CellRequest(cell=cell, family=family, deadline=deadline,
                       payload=canonical)


__all__ = [
    "CONFIG_FIELDS",
    "CellRequest",
    "KINDS",
    "MAX_DEADLINE",
    "ProtocolError",
    "SCALES",
    "parse_request",
]
