"""`repro-sdt serve`: a resilient, long-running experiment service.

The serve layer turns the cell executor (:mod:`repro.eval.parallel`)
into an asyncio HTTP daemon that accepts simulation/experiment cell
requests and survives the failure modes a long-running service actually
meets — overload, hung workers, crash-looping cell shapes, client
disconnects, and mid-flight restarts — without ever returning a wrong or
stale result table.  See docs/serve.md for the API and the resilience
model.

Modules:

- :mod:`repro.serve.protocol` — request validation and cell building,
- :mod:`repro.serve.breaker`  — per-cell-family circuit breaker,
- :mod:`repro.serve.journal`  — write-ahead request journal + replay,
- :mod:`repro.serve.service`  — admission, coalescing, cache tiers,
  batching dispatcher, metrics, drain (HTTP-free core),
- :mod:`repro.serve.server`   — the asyncio HTTP front end + lifecycle.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.journal import Journal
from repro.serve.protocol import CellRequest, ProtocolError, parse_request
from repro.serve.service import ExperimentService, Response, ServeSettings

__all__ = [
    "CellRequest",
    "CircuitBreaker",
    "ExperimentService",
    "Journal",
    "ProtocolError",
    "Response",
    "ServeSettings",
    "parse_request",
]
