"""Verified traced runs: the data source behind ``repro-sdt trace``.

Kept out of ``repro.trace.__init__`` because it imports the evaluation
runner (which imports :mod:`repro.sdt.config`, which imports
:mod:`repro.trace.spec` at module load — see the package docstring).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.eval.runner import DEFAULT_FUEL, NativeBaseline, run_native, _verify
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTRunResult, SDTVM
from repro.trace.session import TraceSession
from repro.trace.spec import TraceSpec
from repro.workloads import Workload, get_workload


@dataclass(frozen=True)
class TracedRun:
    """One traced, interpreter-verified SDT run."""

    workload: str
    scale: str
    config: SDTConfig
    baseline: NativeBaseline
    result: SDTRunResult
    session: TraceSession

    @property
    def context(self) -> dict:
        """Identity fields for the metrics export."""
        return {
            "workload": self.workload,
            "scale": self.scale,
            "config": self.config.label,
            "profile": self.config.profile.name,
            "engine": self.config.engine,
            "native_cycles": self.baseline.cycles,
        }

    @property
    def stem(self) -> str:
        """Deterministic export-file stem for this run."""
        return (
            f"{self.workload}-{self.scale}-{self.config.profile.name}-"
            f"{self.config.label}"
        )


def trace_run(
    workload: Workload | str,
    config: SDTConfig | None = None,
    scale: str = "small",
    fuel: int = DEFAULT_FUEL,
) -> TracedRun:
    """Run one workload under one config with tracing forced on.

    Bypasses the measurement memo caches on purpose: a cache-served
    measurement carries no event stream, and the session *is* the point
    here.  The run is still verified against the reference interpreter
    exactly like :func:`repro.eval.runner.measure`.
    """
    if isinstance(workload, str):
        workload = get_workload(workload, scale)
    config = config if config is not None else SDTConfig()
    if config.trace is None:
        config = replace(config, trace=TraceSpec())

    baseline = run_native(workload, config.profile, scale=scale, fuel=fuel,
                          engine=config.engine)
    vm = SDTVM(workload.compile(), config=config)
    result = vm.run(fuel)
    _verify(baseline, result, config.label)
    assert vm.trace is not None  # config.trace was forced on above
    return TracedRun(
        workload=workload.name,
        scale=scale,
        config=config,
        baseline=baseline,
        result=result,
        session=vm.trace,
    )
