"""Trace exporters: Chrome ``trace_event`` JSON, metrics JSON, terminal.

All exports are deterministic: timestamps are simulated cycle counts (no
wall clock), keys are sorted, and event order is emission order — two
identical traced runs export byte-identical files
(tests/test_trace_invariants.py).

The Chrome format targets ``chrome://tracing`` / Perfetto: load the
``*.trace.json`` file and the translate/translator/dispatch brackets
render as a flame view over the run's cycle timeline, with instant
events (probes, flushes, faults) as markers.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.trace.session import POP_KINDS, PUSH_PHASES, TraceSession

#: Metrics JSON schema identifier (bump on breaking changes).
SCHEMA = "repro.trace/1"

#: Bracket-closing kinds mapped to the slice name they close.
_POP_NAMES = {
    "dispatch.end": "dispatch",
    "reentry.exit": "translator",
    "translate.end": "translate",
    "translate.abort": "translate",
    "tier2.exit": "tier2",
}


def chrome_trace_events(session: TraceSession) -> list[dict]:
    """The session's ring buffer as a ``trace_event`` array.

    Bracket kinds become ``B``/``E`` duration slices named after their
    attribution phase; every other kind is an instant event.  ``ts`` is
    the simulated cycle count at emission (displayed as microseconds).
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro-sdt"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "sdt-vm (ts = simulated cycles)"},
        },
    ]
    for seq, cycles, kind, data in session.events:
        args = {"seq": seq, **data}
        phase = PUSH_PHASES.get(kind)
        if phase is not None:
            events.append({
                "name": phase, "cat": kind, "ph": "B",
                "ts": cycles, "pid": 1, "tid": 1, "args": args,
            })
        elif kind in POP_KINDS:
            events.append({
                "name": _POP_NAMES[kind], "cat": kind, "ph": "E",
                "ts": cycles, "pid": 1, "tid": 1, "args": args,
            })
        else:
            events.append({
                "name": kind, "cat": "event", "ph": "i", "s": "t",
                "ts": cycles, "pid": 1, "tid": 1, "args": args,
            })
    return events


def chrome_trace_json(session: TraceSession) -> str:
    """Serialised Chrome trace (deterministic bytes)."""
    payload = {
        "displayTimeUnit": "ms",
        "metadata": {
            "schema": SCHEMA,
            "events_emitted": session.emitted,
            "events_dropped": session.dropped,
            "ring": session.spec.ring,
        },
        "traceEvents": chrome_trace_events(session),
    }
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def metrics_dict(
    session: TraceSession,
    result=None,
    context: dict | None = None,
) -> dict:
    """Metrics-registry export: phases, counters, histograms, breakdown.

    ``result`` (an :class:`repro.sdt.vm.SDTRunResult`) adds run totals;
    ``context`` adds identity fields (workload, scale, config, profile).
    """
    payload: dict = {
        "schema": SCHEMA,
        "phase_cycles": session.attribution(),
        "attributed_cycles": session.total_attributed(),
        "breakdown": session.model.breakdown(),
        "events": {
            "emitted": session.emitted,
            "dropped": session.dropped,
            "ring": session.spec.ring,
        },
        **session.metrics.as_dict(),
    }
    if result is not None:
        payload["totals"] = {
            "total_cycles": result.total_cycles,
            "retired": result.retired,
            "exit_code": result.exit_code,
        }
    if context:
        payload["run"] = dict(sorted(context.items()))
    return payload


def metrics_json(
    session: TraceSession,
    result=None,
    context: dict | None = None,
) -> str:
    return json.dumps(
        metrics_dict(session, result, context), sort_keys=True, indent=2
    ) + "\n"


def slug(text: str) -> str:
    """File-name-safe form of a config label / workload name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_")


def export_files(
    session: TraceSession,
    out_dir: str | Path,
    stem: str,
    result=None,
    context: dict | None = None,
) -> tuple[Path, Path]:
    """Write ``<stem>.trace.json`` + ``<stem>.metrics.json`` under
    ``out_dir`` (created if missing); returns both paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = slug(stem)
    trace_path = directory / f"{stem}.trace.json"
    metrics_path = directory / f"{stem}.metrics.json"
    trace_path.write_text(chrome_trace_json(session))
    metrics_path.write_text(metrics_json(session, result, context))
    return trace_path, metrics_path


def summary(session: TraceSession, result=None) -> str:
    """Human-readable terminal summary (the ``repro-sdt trace`` view)."""
    lines: list[str] = []
    attribution = session.attribution()
    attributed = session.total_attributed()
    lines.append(
        f"events   : {session.emitted} emitted, {session.dropped} dropped "
        f"(ring {session.spec.ring})"
    )
    total = result.total_cycles if result is not None else attributed
    lines.append(f"cycles   : {total} total; phase attribution:")
    for phase, cycles in sorted(
        attribution.items(), key=lambda item: (-item[1], item[0])
    ):
        share = cycles / total if total else 0.0
        lines.append(f"  {phase:12s} {cycles:14d}  ({share:6.1%})")
    check = "== total (exact)" if attributed == total else (
        f"!= total {total} (MISMATCH)"
    )
    lines.append(f"  {'sum':12s} {attributed:14d}  {check}")

    counters = session.metrics.counters
    if counters:
        lines.append("counters :")
        for name in sorted(counters):
            lines.append(f"  {name:24s} {counters[name]:12d}")
    histograms = session.metrics.histograms
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name:24s} n={hist.count} mean={hist.mean:.2f} "
                f"min={hist.min} max={hist.max}"
            )
    return "\n".join(lines)
