"""Trace configuration.

A :class:`TraceSpec` declares that structured event tracing is on and how
it is parameterised (ring-buffer capacity, optional metrics sink
directory).  It rides on :class:`repro.sdt.config.SDTConfig` as the
``trace`` field and, like ``engine``, is *fingerprint-exempt*: tracing is
pure observation — it may never change architectural results **or** cycle
counts — so a spec must not split any cache key (the byte-identity is
pinned by tests/test_trace_invariants.py).

The ``REPRO_TRACE`` environment variable supplies the default spec:

- ``off`` / ``none`` / ``0`` / empty — tracing disabled (``None``),
- ``on`` / ``1`` — tracing with defaults,
- ``k=v,k=v,...`` — explicit fields (``ring=65536,dir=results/trace``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Environment variable holding the default trace spec.
ENV_VAR = "REPRO_TRACE"

#: Default ring-buffer capacity (events kept; older events are dropped
#: but still counted and still feed metrics/attribution).
DEFAULT_RING = 65536

_OFF = ("", "off", "none", "0")
_ON = ("on", "1", "true")


@dataclass(frozen=True)
class TraceSpec:
    """How a :class:`repro.trace.session.TraceSession` is parameterised.

    Attributes:
        ring: ring-buffer capacity in events.  Metrics, counters and
            per-phase cycle attribution aggregate over *every* emitted
            event regardless of this bound; only the raw event log is
            ring-limited.
        dir: optional metrics sink.  When set, every traced measurement
            the evaluation runner executes writes its metrics JSON into
            this directory (see :func:`repro.eval.runner.measure`).
    """

    ring: int = DEFAULT_RING
    dir: str | None = None

    def __post_init__(self) -> None:
        if self.ring < 1:
            raise ValueError(f"ring must be >= 1, got {self.ring!r}")

    def describe(self) -> str:
        """Canonical spec string (parses back to an equal spec)."""
        parts = []
        if self.ring != DEFAULT_RING:
            parts.append(f"ring={self.ring}")
        if self.dir:
            parts.append(f"dir={self.dir}")
        return ",".join(parts) if parts else "on"


def parse_trace_spec(spec: str | TraceSpec | None) -> TraceSpec | None:
    """Parse a ``REPRO_TRACE``-style spec into a :class:`TraceSpec`.

    Accepts an existing spec (pass-through), ``None``/off-words, on-words,
    or a comma-separated ``k=v`` list over ``ring``/``dir``.
    """
    if spec is None or isinstance(spec, TraceSpec):
        return spec
    text = spec.strip()
    if text.lower() in _OFF:
        return None
    if text.lower() in _ON:
        return TraceSpec()

    values: dict[str, object] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in ("ring", "dir"):
            raise ValueError(
                f"bad trace spec {spec!r}: expected 'on', 'off', or k=v "
                f"pairs over ring/dir"
            )
        if key == "ring":
            try:
                values["ring"] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad value {value!r} for 'ring' in trace spec {spec!r}"
                ) from None
        else:
            values["dir"] = value.strip()
    return TraceSpec(**values)


def default_trace_spec() -> TraceSpec | None:
    """Spec selected by ``REPRO_TRACE`` (default: tracing off)."""
    return parse_trace_spec(os.environ.get(ENV_VAR))
