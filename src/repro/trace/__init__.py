"""``repro.trace`` — the SDT observability layer.

Structured, zero-overhead-when-disabled event tracing threaded through
the whole pipeline (translator, VM dispatch loop, IB mechanisms, fragment
cache, superblock compiler, fault injector), a deterministic metrics
registry (counters + power-of-two histograms), exact per-phase cycle
attribution, and Chrome ``trace_event`` / metrics JSON exporters.

See docs/observability.md for the event taxonomy and schemas.

This package initialiser deliberately exports only the cheap pieces
(:mod:`repro.trace.spec`, :mod:`repro.trace.session`,
:mod:`repro.trace.export`): :class:`repro.sdt.config.SDTConfig` imports
:func:`default_trace_spec` at module load, so anything importing the
evaluation layer here would be an import cycle.  The run helper lives in
:mod:`repro.trace.runtrace` and is imported lazily by the CLI.
"""

from repro.trace.export import (
    chrome_trace_json,
    export_files,
    metrics_dict,
    metrics_json,
    summary,
)
from repro.trace.session import (
    HISTOGRAM_FIELDS,
    Histogram,
    MetricsRegistry,
    POP_KINDS,
    PUSH_PHASES,
    TraceSession,
)
from repro.trace.spec import (
    DEFAULT_RING,
    ENV_VAR,
    TraceSpec,
    default_trace_spec,
    parse_trace_spec,
)

__all__ = [
    "DEFAULT_RING",
    "ENV_VAR",
    "HISTOGRAM_FIELDS",
    "Histogram",
    "MetricsRegistry",
    "POP_KINDS",
    "PUSH_PHASES",
    "TraceSession",
    "TraceSpec",
    "chrome_trace_json",
    "default_trace_spec",
    "export_files",
    "metrics_dict",
    "metrics_json",
    "parse_trace_spec",
    "summary",
]
