"""Structured SDT event tracing: ring buffer, metrics, cycle attribution.

One :class:`TraceSession` is bound per SDT VM (``SDTVM.trace``).  Every
instrumented point in the pipeline — translator, VM dispatch loop, IB
mechanisms, fragment cache, fault injector, superblock compiler — funnels
through the single :meth:`TraceSession.emit` hook.  When tracing is off
the session simply does not exist (``SDTVM.trace is None``) and every
call site guards with one attribute test, so the disabled cost is a
pointer compare on already-cold paths (never per-instruction).

Tracing is *pure observation*: ``emit`` reads the host model's cycle
accumulator but charges nothing, mutates no architectural state and draws
no randomness, so a traced run is byte-identical — output, retired count,
cycle totals, stats — to the same run untraced
(tests/test_trace_invariants.py pins this).

**Cycle attribution.**  Each emit samples ``model.total_cycles`` and
attributes the delta since the previous sample to the *current phase*,
maintained as a stack driven by bracket events:

- ``dispatch.start`` / ``dispatch.end`` → ``dispatch`` (IB/return
  mechanism probe code),
- ``reentry.enter`` / ``reentry.exit``  → ``translator`` (context
  switches, map lookups, the dispatch jump back),
- ``translate.start`` / ``translate.end`` / ``translate.abort`` →
  ``translate`` (fragment building),
- ``tier2.enter`` / ``tier2.exit``     → ``tier2`` (generated-region
  execution under ``engine=tier2``; its exits re-open the surrounding
  phase, so a deopt's slow-path cycles attribute outside the bracket),
- everything outside any bracket       → ``execute`` (application work,
  link patching, call-site bookkeeping, native-style mispredictions).

Brackets nest (a dispatch miss re-enters the translator, which may
translate), so e.g. an IBTC probe's cycles land in ``dispatch`` while the
translation it triggers lands in ``translate``.  Because attribution is a
telescoping sum over one monotone counter, the phase totals sum *exactly*
to the run's total cycles once :meth:`TraceSession.finish` has sampled
the final value — the invariant the new test suite checks for every
workload × mechanism.
"""

from __future__ import annotations

import math
from collections import deque

from repro.trace.spec import TraceSpec

#: Base attribution phase (application execution inside the fragment
#: cache, plus every cost not inside an explicit bracket).
PHASE_EXECUTE = "execute"

#: Bracket-opening event kinds and the phase they attribute to.
PUSH_PHASES: dict[str, str] = {
    "dispatch.start": "dispatch",
    "reentry.enter": "translator",
    "translate.start": "translate",
    "tier2.enter": "tier2",
}

#: Bracket-closing event kinds (``translate.abort`` closes the
#: ``translate.start`` bracket on an injected translation failure).
POP_KINDS = frozenset({
    "dispatch.end",
    "reentry.exit",
    "translate.end",
    "translate.abort",
    "tier2.exit",
})

#: Event payload fields that feed value histograms automatically: an
#: event ``emit(kind, depth=3)`` records 3 into histogram
#: ``"<kind>.depth"``.  ``depth`` carries sieve chain-walk depths,
#: ``probes`` IBTC probe lengths, ``instrs`` fragment/plan sizes.
HISTOGRAM_FIELDS = ("depth", "probes", "instrs")


class Histogram:
    """Power-of-two-bucketed distribution of non-negative integers.

    Bucket keys are the smallest power of two >= the recorded value
    (``0`` keeps its own bucket), so geometry sweeps (chain depths, probe
    lengths, fragment sizes) stay compact and deterministic.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int) -> None:
        bucket = 0 if value <= 0 else 1 << (value - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def __bool__(self) -> bool:
        """Truthiness is "has recorded anything", so gating call sites
        (``hist.quantile(q) if hist else 0``) treat an allocated-but-
        empty histogram exactly like a missing one instead of reporting
        phantom quantiles before the first sample."""
        return self.count > 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Upper bucket bound at quantile ``q`` in [0, 1].

        An empty histogram always answers 0 — never a bucket bound or a
        stale ``max`` — for every ``q`` including the extremes; callers
        that must distinguish "empty" from "all zeros" gate on the
        histogram's truthiness.  Resolution is the bucket geometry (a
        power of two), which is exactly what the serve layer's
        queue-depth and batch-size distributions need; exact latency
        quantiles use a reservoir instead (see
        :mod:`repro.serve.service`).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        if not self.count:
            return 0
        # target is clamped to [1, count] and bucket counts sum to
        # count, so the scan always terminates inside the loop
        target = max(1, min(self.count, math.ceil(q * self.count)))
        seen = 0
        for bound in sorted(self.buckets):
            seen += self.buckets[bound]
            if seen >= target:
                return bound
        raise AssertionError("bucket counts diverged from self.count")

    def as_dict(self) -> dict[str, object]:
        """Deterministic JSON-ready form (buckets sorted numerically)."""
        return {
            "buckets": {
                str(bound): self.buckets[bound]
                for bound in sorted(self.buckets)
            },
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """Deterministic counters + histograms aggregated over a session."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def histogram(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram()
            self.histograms[name] = hist
        return hist

    def as_dict(self) -> dict[str, object]:
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }


class TraceSession:
    """Per-VM event sink: ring-buffered log + metrics + attribution.

    ``model`` is the VM's :class:`repro.host.costs.HostModel`; its
    ``total_cycles`` is the (deterministic) timestamp domain, so traces
    need no wall clock and two identical runs export identical bytes.
    """

    __slots__ = (
        "spec", "model", "events", "emitted", "phase_cycles",
        "_stack", "_last_cycles", "metrics", "finished",
    )

    def __init__(self, model, spec: TraceSpec | None = None):
        self.spec = spec if spec is not None else TraceSpec()
        self.model = model
        #: ring buffer of ``(seq, cycles, kind, data)`` tuples
        self.events: deque = deque(maxlen=self.spec.ring)
        self.emitted = 0
        self.phase_cycles: dict[str, int] = {}
        self._stack: list[str] = [PHASE_EXECUTE]
        self._last_cycles = 0
        self.metrics = MetricsRegistry()
        self.finished = False

    # -- the one hook --------------------------------------------------------

    def emit(self, kind: str, **data) -> None:
        """Record one structured event (pure observation, zero charges)."""
        cycles = self.model.total_cycles
        delta = cycles - self._last_cycles
        if delta:
            stack = self._stack
            phase = stack[-1] if stack else PHASE_EXECUTE
            self.phase_cycles[phase] = self.phase_cycles.get(phase, 0) + delta
            self._last_cycles = cycles
        self.emitted += 1
        self.events.append((self.emitted, cycles, kind, data))

        metrics = self.metrics
        metrics.counters[kind] = metrics.counters.get(kind, 0) + 1
        for field in HISTOGRAM_FIELDS:
            value = data.get(field)
            if value is not None:
                metrics.histogram(f"{kind}.{field}").record(value)

        push = PUSH_PHASES.get(kind)
        if push is not None:
            self._stack.append(push)
        elif kind in POP_KINDS and len(self._stack) > 1:
            self._stack.pop()

    def finish(self) -> None:
        """Sample the final cycle count so attribution telescopes to it.

        Idempotent; the VM calls this when its run loop exits (including
        on fuel exhaustion), so ``sum(phase_cycles.values())`` equals the
        run's total cycles exactly.
        """
        if not self.finished:
            self.emit("run.end")
            self.finished = True

    # -- derived views -------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events emitted but evicted from the ring buffer."""
        return self.emitted - len(self.events)

    def attribution(self) -> dict[str, int]:
        """Per-phase cycle totals, deterministically ordered.

        After :meth:`finish`, these sum exactly to
        ``model.total_cycles`` (the telescoping-sum invariant).
        """
        return {
            phase: self.phase_cycles[phase]
            for phase in sorted(self.phase_cycles)
        }

    def total_attributed(self) -> int:
        return sum(self.phase_cycles.values())
