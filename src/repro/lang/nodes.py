"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# -- expressions -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IntLit:
    value: int
    line: int = 0


@dataclass(frozen=True, slots=True)
class StrLit:
    text: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class Ident:
    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # "-", "!", "~", "&"
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Ternary:
    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Index:
    base: "Expr"
    index: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Call:
    callee: "Expr"
    args: tuple["Expr", ...]
    line: int = 0


Expr = Union[IntLit, StrLit, Ident, Unary, Binary, Ternary, Index, Call]

# -- statements --------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class VarDecl:
    name: str
    array_size: int | None  # None for scalars
    init: "Expr | None"
    is_register: bool
    line: int = 0


@dataclass(frozen=True, slots=True)
class Assign:
    """``target op= value`` — target is an Ident or Index."""

    target: "Expr"
    op: str  # "=", "+=", "-=", ...
    value: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class ExprStmt:
    expr: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Block:
    stmts: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class If:
    cond: "Expr"
    then: "Stmt"
    otherwise: "Stmt | None"
    line: int = 0


@dataclass(frozen=True, slots=True)
class While:
    cond: "Expr"
    body: "Stmt"
    line: int = 0


@dataclass(frozen=True, slots=True)
class DoWhile:
    body: "Stmt"
    cond: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class For:
    init: "Stmt | None"
    cond: "Expr | None"
    step: "Stmt | None"
    body: "Stmt"
    line: int = 0


@dataclass(frozen=True, slots=True)
class CaseGroup:
    """One run of case labels and the statements that follow them."""

    values: tuple[int, ...]
    is_default: bool
    stmts: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Switch:
    selector: "Expr"
    groups: tuple[CaseGroup, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Break:
    line: int = 0


@dataclass(frozen=True, slots=True)
class Continue:
    line: int = 0


@dataclass(frozen=True, slots=True)
class Return:
    value: "Expr | None"
    line: int = 0


Stmt = Union[
    VarDecl,
    Assign,
    ExprStmt,
    Block,
    If,
    While,
    DoWhile,
    For,
    Switch,
    Break,
    Continue,
    Return,
]

# -- top level ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FuncDef:
    name: str
    params: tuple[str, ...]
    body: Block
    line: int = 0


@dataclass(frozen=True, slots=True)
class GlobalDecl:
    """Global scalar or array.

    ``init`` entries are either int constants or function/global names
    (emitted as ``.word label`` so the assembler resolves the address).
    """

    name: str
    array_size: int | None
    init: tuple[int | str, ...]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Unit:
    """A parsed translation unit."""

    globals: tuple[GlobalDecl, ...] = field(default=())
    functions: tuple[FuncDef, ...] = field(default=())
