"""MiniC diagnostics."""

from __future__ import annotations


class LangError(Exception):
    """Base class for MiniC compilation errors."""

    def __init__(self, message: str, line: int | None = None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


class LexError(LangError):
    """Invalid token."""


class ParseError(LangError):
    """Syntax error."""


class SemaError(LangError):
    """Semantic error (undeclared name, arity mismatch, ...)."""
