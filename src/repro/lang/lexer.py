"""MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.errors import LexError


class TokKind(enum.Enum):
    INT = "int-literal"
    STRING = "string-literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    PUNCT = "punctuation"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "void",
        "register",
        "if",
        "else",
        "while",
        "do",
        "for",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "return",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTS = (
    "<<=", ">>=", ">>>",
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"', "r": "\r"}


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokKind
    text: str
    line: int
    value: int = 0  # for INT tokens

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniC source, raising :class:`LexError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if ch.isdigit():
            start = pos
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                tokens.append(Token(TokKind.INT, text, line, int(text, 16)))
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                tokens.append(Token(TokKind.INT, text, line, int(text)))
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        if ch == "'":
            value, pos = _char_literal(source, pos, line)
            tokens.append(Token(TokKind.INT, f"'{chr(value)}'", line, value))
            continue
        if ch == '"':
            text, pos, line = _string_literal(source, pos, line)
            tokens.append(Token(TokKind.STRING, text, line))
            continue
        for punct in _PUNCTS:
            if source.startswith(punct, pos):
                tokens.append(Token(TokKind.PUNCT, punct, line))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokKind.EOF, "", line))
    return tokens


def _char_literal(source: str, pos: int, line: int) -> tuple[int, int]:
    pos += 1  # opening quote
    if pos >= len(source):
        raise LexError("unterminated character literal", line)
    ch = source[pos]
    if ch == "\\":
        pos += 1
        if pos >= len(source) or source[pos] not in _ESCAPES:
            raise LexError("bad escape in character literal", line)
        value = ord(_ESCAPES[source[pos]])
    else:
        value = ord(ch)
    pos += 1
    if pos >= len(source) or source[pos] != "'":
        raise LexError("unterminated character literal", line)
    return value, pos + 1


def _string_literal(source: str, pos: int, line: int) -> tuple[str, int, int]:
    start_line = line
    pos += 1  # opening quote
    out: list[str] = []
    while pos < len(source):
        ch = source[pos]
        if ch == '"':
            return "".join(out), pos + 1, line
        if ch == "\n":
            raise LexError("newline in string literal", start_line)
        if ch == "\\":
            pos += 1
            if pos >= len(source) or source[pos] not in _ESCAPES:
                raise LexError("bad escape in string literal", line)
            out.append(_ESCAPES[source[pos]])
        else:
            out.append(ch)
        pos += 1
    raise LexError("unterminated string literal", start_line)
