"""MiniC semantic analysis.

Validates the translation unit before code generation: declaration and
scope rules, call arity, lvalues, ``break``/``continue`` placement, switch
label uniqueness, address-of operands and builtin usage.  The code
generator assumes a unit that passed :func:`analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import SemaError
from repro.lang.nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    Ident,
    If,
    Index,
    IntLit,
    Return,
    Stmt,
    StrLit,
    Switch,
    Ternary,
    Unary,
    Unit,
    VarDecl,
    While,
)

#: builtin name -> arity (None = special-cased)
BUILTINS: dict[str, int] = {
    "print_int": 1,
    "print_char": 1,
    "print_str": 1,
    "read_int": 0,
    "exit": 1,
    "sbrk": 1,
    "load": 1,
    "store": 2,
}

MAX_ARGS = 8


@dataclass(frozen=True, slots=True)
class GlobalInfo:
    name: str
    is_array: bool
    size: int  # words (1 for scalars)


@dataclass(frozen=True, slots=True)
class FuncInfo:
    name: str
    arity: int


@dataclass(frozen=True, slots=True)
class UnitInfo:
    """Symbol summary handed to the code generator."""

    globals: dict[str, GlobalInfo]
    functions: dict[str, FuncInfo]


class _Scope:
    """Lexical scope chain for locals."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, VarDecl | str] = {}

    def declare(self, name: str, decl: VarDecl | str, line: int) -> None:
        if name in self.names:
            raise SemaError(f"redeclaration of {name!r}", line)
        self.names[name] = decl

    def lookup(self, name: str) -> VarDecl | str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _FunctionChecker:
    def __init__(self, analyzer: "Analyzer", func: FuncDef):
        self.analyzer = analyzer
        self.func = func
        self.loop_depth = 0
        self.switch_depth = 0

    def check(self) -> None:
        scope = _Scope()
        for param in self.func.params:
            scope.declare(param, "param", self.func.line)
        self._block(self.func.body, _Scope(scope))

    # -- statements ----------------------------------------------------------

    def _block(self, block: Block, scope: _Scope) -> None:
        for stmt in block.stmts:
            self._stmt(stmt, scope)

    def _stmt(self, stmt: Stmt, scope: _Scope) -> None:
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init, scope)
            scope.declare(stmt.name, stmt, stmt.line)
        elif isinstance(stmt, Assign):
            self._assign_target(stmt.target, scope)
            self._expr(stmt.value, scope)
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, Block):
            self._block(stmt, _Scope(scope))
        elif isinstance(stmt, If):
            self._expr(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._stmt(stmt.otherwise, scope)
        elif isinstance(stmt, While):
            self._expr(stmt.cond, scope)
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, DoWhile):
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._expr(stmt.cond, scope)
        elif isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._expr(stmt.cond, inner)
            if stmt.step is not None:
                self._stmt(stmt.step, inner)
            self.loop_depth += 1
            self._stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, Switch):
            self._switch(stmt, scope)
        elif isinstance(stmt, Break):
            if not self.loop_depth and not self.switch_depth:
                raise SemaError("break outside loop or switch", stmt.line)
        elif isinstance(stmt, Continue):
            if not self.loop_depth:
                raise SemaError("continue outside loop", stmt.line)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._expr(stmt.value, scope)
        else:  # pragma: no cover - exhaustive over Stmt
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _switch(self, stmt: Switch, scope: _Scope) -> None:
        self._expr(stmt.selector, scope)
        seen: set[int] = set()
        defaults = 0
        for group in stmt.groups:
            for value in group.values:
                if value in seen:
                    raise SemaError(f"duplicate case {value}", group.line)
                seen.add(value)
            if group.is_default:
                defaults += 1
        if defaults > 1:
            raise SemaError("multiple default labels", stmt.line)
        self.switch_depth += 1
        inner = _Scope(scope)
        for group in stmt.groups:
            for sub in group.stmts:
                self._stmt(sub, inner)
        self.switch_depth -= 1

    def _assign_target(self, target: Expr, scope: _Scope) -> None:
        if isinstance(target, Ident):
            binding = self._resolve(target, scope)
            if isinstance(binding, VarDecl) and binding.array_size is not None:
                raise SemaError(
                    f"cannot assign to array {target.name!r}", target.line
                )
            if binding in ("func", "builtin"):
                raise SemaError(
                    f"cannot assign to function {target.name!r}", target.line
                )
            if isinstance(binding, GlobalInfo) and binding.is_array:
                raise SemaError(
                    f"cannot assign to array {target.name!r}", target.line
                )
        elif isinstance(target, Index):
            self._expr(target.base, scope)
            self._expr(target.index, scope)
        else:  # pragma: no cover - parser enforces lvalue shape
            raise SemaError("invalid assignment target", getattr(target, "line", 0))

    # -- expressions ----------------------------------------------------------

    def _resolve(
        self, ident: Ident, scope: _Scope
    ) -> VarDecl | GlobalInfo | str:
        binding = scope.lookup(ident.name)
        if binding is not None:
            return binding
        analyzer = self.analyzer
        if ident.name in analyzer.globals:
            return analyzer.globals[ident.name]
        if ident.name in analyzer.functions:
            return "func"
        if ident.name in BUILTINS:
            return "builtin"
        raise SemaError(f"undeclared identifier {ident.name!r}", ident.line)

    def _expr(self, expr: Expr, scope: _Scope) -> None:
        if isinstance(expr, IntLit):
            return
        if isinstance(expr, StrLit):
            raise SemaError(
                "string literals are only valid as the argument of "
                "print_str",
                expr.line,
            )
        if isinstance(expr, Ident):
            self._resolve(expr, scope)
            return
        if isinstance(expr, Unary):
            if expr.op == "&":
                if not isinstance(expr.operand, Ident):
                    raise SemaError(
                        "& requires a named function or variable", expr.line
                    )
                binding = self._resolve(expr.operand, scope)
                if binding == "builtin":
                    raise SemaError(
                        f"cannot take the address of builtin "
                        f"{expr.operand.name!r}",
                        expr.line,
                    )
                if isinstance(binding, VarDecl) and binding.is_register:
                    raise SemaError(
                        f"cannot take the address of register variable "
                        f"{expr.operand.name!r}",
                        expr.line,
                    )
                return
            self._expr(expr.operand, scope)
            return
        if isinstance(expr, Binary):
            self._expr(expr.left, scope)
            self._expr(expr.right, scope)
            return
        if isinstance(expr, Ternary):
            self._expr(expr.cond, scope)
            self._expr(expr.then, scope)
            self._expr(expr.otherwise, scope)
            return
        if isinstance(expr, Index):
            self._expr(expr.base, scope)
            self._expr(expr.index, scope)
            return
        if isinstance(expr, Call):
            self._call(expr, scope)
            return
        raise AssertionError(f"unhandled expression {expr!r}")

    def _call(self, call: Call, scope: _Scope) -> None:
        if len(call.args) > MAX_ARGS:
            raise SemaError(
                f"too many arguments ({len(call.args)} > {MAX_ARGS})",
                call.line,
            )
        callee = call.callee
        if isinstance(callee, Ident):
            local = scope.lookup(callee.name)
            analyzer = self.analyzer
            if local is None and callee.name in BUILTINS:
                self._builtin_call(callee.name, call, scope)
                return
            if local is None and callee.name in analyzer.functions:
                info = analyzer.functions[callee.name]
                if len(call.args) != info.arity:
                    raise SemaError(
                        f"{callee.name}() takes {info.arity} arguments, "
                        f"got {len(call.args)}",
                        call.line,
                    )
                for arg in call.args:
                    self._arg(arg, scope)
                return
        # indirect call through an arbitrary expression
        self._expr(callee, scope)
        for arg in call.args:
            self._arg(arg, scope)

    def _builtin_call(self, name: str, call: Call, scope: _Scope) -> None:
        arity = BUILTINS[name]
        if len(call.args) != arity:
            raise SemaError(
                f"{name}() takes {arity} arguments, got {len(call.args)}",
                call.line,
            )
        if name == "print_str":
            if not isinstance(call.args[0], StrLit):
                raise SemaError(
                    "print_str takes a string literal", call.line
                )
            return
        for arg in call.args:
            self._arg(arg, scope)

    def _arg(self, arg: Expr, scope: _Scope) -> None:
        if isinstance(arg, StrLit):
            raise SemaError(
                "string literals are only valid as the argument of "
                "print_str",
                arg.line,
            )
        self._expr(arg, scope)


class Analyzer:
    """Whole-unit semantic checker."""

    def __init__(self, unit: Unit):
        self.unit = unit
        self.globals: dict[str, GlobalInfo] = {}
        self.functions: dict[str, FuncInfo] = {}

    def analyze(self) -> UnitInfo:
        for decl in self.unit.globals:
            if decl.name in self.globals or decl.name in BUILTINS:
                raise SemaError(f"redeclaration of {decl.name!r}", decl.line)
            size = decl.array_size if decl.array_size is not None else 1
            self.globals[decl.name] = GlobalInfo(
                name=decl.name,
                is_array=decl.array_size is not None,
                size=size,
            )
        for func in self.unit.functions:
            if (
                func.name in self.functions
                or func.name in self.globals
                or func.name in BUILTINS
            ):
                raise SemaError(f"redeclaration of {func.name!r}", func.line)
            if len(func.params) > MAX_ARGS:
                raise SemaError(
                    f"too many parameters ({len(func.params)} > {MAX_ARGS})",
                    func.line,
                )
            if len(set(func.params)) != len(func.params):
                raise SemaError("duplicate parameter names", func.line)
            self.functions[func.name] = FuncInfo(
                name=func.name, arity=len(func.params)
            )
        if "main" not in self.functions:
            raise SemaError("no main() function")
        if self.functions["main"].arity != 0:
            raise SemaError("main() must take no arguments")
        for decl in self.unit.globals:
            for item in decl.init:
                if isinstance(item, str) and not (
                    item in self.functions or item in self.globals
                ):
                    raise SemaError(
                        f"initializer references unknown name {item!r}",
                        decl.line,
                    )
        for func in self.unit.functions:
            _FunctionChecker(self, func).check()
        return UnitInfo(globals=dict(self.globals), functions=dict(self.functions))


def analyze(unit: Unit) -> UnitInfo:
    """Validate a unit; raises :class:`SemaError` on the first problem."""
    return Analyzer(unit).analyze()
