"""MiniC code generator: AST → SR32 assembly.

Code-generation model (deliberately classical — the point is realistic
control-flow shape, not optimisation):

- expressions evaluate on a register stack ``t0..t7``, spilling to frame
  slots when the stack overflows;
- ``t8``/``t9`` are codegen scratch (address computation, reloads);
- scalars declared ``register`` live in ``s0..s5`` (callee-saved);
- other locals and parameters live in ``fp``-relative frame slots;
- dense ``switch`` statements lower to jump tables dispatched with ``jr``
  (guest indirect jumps); sparse ones to compare chains;
- calls through non-function identifiers lower to ``jalr`` (guest indirect
  calls); every function returns with ``ret``.

The indirect-branch profile of compiled code — the input the paper's
mechanisms are evaluated on — is produced exactly here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import SemaError
from repro.lang.nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    Ident,
    If,
    Index,
    IntLit,
    Return,
    Stmt,
    StrLit,
    Switch,
    Ternary,
    Unary,
    Unit,
    VarDecl,
    While,
)
from repro.lang.sema import BUILTINS, GlobalInfo, UnitInfo

_NUM_TEMPS = 8          # t0..t7 expression stack
_NUM_REG_VARS = 6       # s0..s5 for `register` locals
_MAX_DENSE_SPAN = 1024  # jump-table span cap
_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sllv",
    ">>": "srav",
    ">>>": "srlv",
}
#: relational op -> (branch-if-true mnemonic, swap operands)
_REL_BRANCH = {
    "<": ("blt", False),
    ">": ("blt", True),
    "<=": ("bge", True),
    ">=": ("bge", False),
    "==": ("beq", False),
    "!=": ("bne", False),
}
_REL_INVERSE = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}


@dataclass(slots=True)
class _StackSlot:
    """fp-relative local or spilled value; address is ``fp - offset``."""

    offset: int
    is_array: bool = False
    size: int = 1


@dataclass(slots=True)
class _RegVar:
    reg: str


@dataclass(slots=True)
class _ParamSlot:
    """Caller-stack parameter (arg index >= 4); address is ``fp + offset``."""

    offset: int


_Binding = _StackSlot | _RegVar | _ParamSlot | GlobalInfo | str

#: Mnemonics after which straight-line execution cannot continue.
_UNCONDITIONAL = frozenset({"j", "jr", "ret", "b", "halt"})


def _strip_dead_lines(lines: list[str], external_refs: set[str]) -> list[str]:
    """Remove instructions no control flow can reach.

    ``lines`` is a function's full emitted body (labels and instructions).
    An instruction is dead when it follows an unconditional transfer with
    no live label in between; a label is live when referenced from a kept
    instruction or from ``external_refs`` (jump tables in ``.data``).
    Iterates to a fixpoint so code kept alive only by dead references is
    also removed.
    """
    current = lines
    while True:
        refs = set(external_refs)
        for line in current:
            text = line.strip()
            if text.endswith(":"):
                continue
            for token in text.replace(",", " ").split()[1:]:
                refs.add(token)
        kept: list[str] = []
        live = True
        for line in current:
            text = line.strip()
            if text.endswith(":"):
                if text[:-1] in refs or not kept:
                    live = live or text[:-1] in refs
                    kept.append(line)
                # an unreferenced label is dropped; liveness is unchanged
                continue
            if not live:
                continue
            kept.append(line)
            if text.split()[0] in _UNCONDITIONAL:
                live = False
        if kept == current:
            return kept
        current = kept


class _FuncGen:
    """Generates one function."""

    def __init__(self, unit_gen: "CodeGen", func: FuncDef):
        self.u = unit_gen
        self.func = func
        self.lines: list[str] = []
        self.scopes: list[dict[str, _Binding]] = []
        self.frame_words = 2  # ra + saved fp
        self.sreg_saves: list[str] = []
        self._label_counter = 0
        self._spill_free: list[int] = []
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []

    # -- small helpers ------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"        {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f".L_{self.func.name}_{hint}{self._label_counter}"

    def _alloc_slot(self, words: int = 1) -> int:
        """Allocate ``words`` frame words; returns the fp-offset of the base.

        For arrays the base is the *lowest* address so element ``i`` lives
        at ``fp - offset + 4*i``.
        """
        self.frame_words += words
        return 4 * self.frame_words

    def _alloc_spill(self) -> int:
        """A frame slot for a spilled temporary (reused via a free list)."""
        if self._spill_free:
            return self._spill_free.pop()
        return self._alloc_slot()

    def _free_spill(self, offset: int) -> None:
        self._spill_free.append(offset)

    # -- scope ---------------------------------------------------------------

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.u.info.globals:
            return self.u.info.globals[name]
        if name in self.u.info.functions:
            return "func"
        if name in BUILTINS:
            return "builtin"
        raise SemaError(f"undeclared identifier {name!r}", line)

    # -- function body ---------------------------------------------------------

    def generate(self) -> list[str]:
        func = self.func
        self.scopes.append({})
        reg_vars = self._collect_register_vars(func.body)

        # parameter bindings
        param_stores: list[str] = []
        for index, name in enumerate(func.params):
            if index < 4:
                offset = self._alloc_slot()
                self.scopes[0][name] = _StackSlot(offset)
                param_stores.append(f"sw   a{index}, -{offset}(fp)")
            else:
                self.scopes[0][name] = _ParamSlot(4 * (index - 4))

        # register-variable assignment (collected up front so the save
        # area is known before the body is generated)
        sregs = [f"s{i}" for i in range(min(len(reg_vars), _NUM_REG_VARS))]
        self.sreg_saves = sregs
        sreg_save_offsets = [self._alloc_slot() for _ in sregs]
        self._reg_var_map = {
            id(decl): sregs[i] for i, decl in enumerate(reg_vars[: len(sregs)])
        }

        # body (frame slots, including spill slots, accumulate as we go)
        self._gen_block(func.body)
        frame = (4 * self.frame_words + 7) & ~7

        prologue = [
            f"{func.name}:",
            f"        addi sp, sp, -{frame}",
            f"        sw   ra, {frame - 4}(sp)",
            f"        sw   fp, {frame - 8}(sp)",
            f"        addi fp, sp, {frame}",
        ]
        for sreg, offset in zip(sregs, sreg_save_offsets):
            prologue.append(f"        sw   {sreg}, -{offset}(fp)")
        prologue.extend(f"        {line}" for line in param_stores)

        epilogue = [f"{self._exit_label()}:"]
        for sreg, offset in zip(sregs, sreg_save_offsets):
            epilogue.append(f"        lw   {sreg}, -{offset}(fp)")
        epilogue.extend(
            [
                "        lw   ra, -4(fp)",
                "        mv   sp, fp",
                "        lw   fp, -8(sp)",
                "        ret",
            ]
        )
        # default return value 0 if control falls off the end
        falloff = ["        li   v0, 0"]
        full = prologue + self.lines + falloff + epilogue
        # strip unreachable instructions (dead returns-after-return, the
        # fall-off default after a terminal statement, ...): the static
        # linter treats unreachable code as a finding, and the SDT never
        # translates it anyway
        external_refs: set[str] = set()
        for data_line in self.u.data_lines:
            text = data_line.strip()
            if text.startswith(".word"):
                for token in text[len(".word"):].replace(",", " ").split():
                    external_refs.add(token)
        return _strip_dead_lines(full, external_refs)

    def _exit_label(self) -> str:
        return f".L_{self.func.name}_exit"

    def _collect_register_vars(self, stmt: Stmt) -> list[VarDecl]:
        """All `register` declarations in the function, in source order."""
        found: list[VarDecl] = []

        def walk(node: Stmt) -> None:
            if isinstance(node, VarDecl):
                if node.is_register:
                    found.append(node)
            elif isinstance(node, Block):
                for sub in node.stmts:
                    walk(sub)
            elif isinstance(node, If):
                walk(node.then)
                if node.otherwise is not None:
                    walk(node.otherwise)
            elif isinstance(node, (While, DoWhile)):
                walk(node.body)
            elif isinstance(node, For):
                if node.init is not None:
                    walk(node.init)
                if node.step is not None:
                    walk(node.step)
                walk(node.body)
            elif isinstance(node, Switch):
                for group in node.groups:
                    for sub in group.stmts:
                        walk(sub)

        walk(stmt)
        return found

    # -- statements ---------------------------------------------------------------

    def _gen_block(self, block: Block) -> None:
        self.scopes.append({})
        for stmt in block.stmts:
            self._gen_stmt(stmt)
        self.scopes.pop()

    def _gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self._gen_expr(stmt.expr, 0)
        elif isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, If):
            self._gen_if(stmt)
        elif isinstance(stmt, While):
            self._gen_while(stmt)
        elif isinstance(stmt, DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, For):
            self._gen_for(stmt)
        elif isinstance(stmt, Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, Break):
            self.emit(f"j    {self._break_labels[-1]}")
        elif isinstance(stmt, Continue):
            self.emit(f"j    {self._continue_labels[-1]}")
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value, 0)
                self.emit("mv   v0, t0")
            else:
                self.emit("li   v0, 0")
            self.emit(f"j    {self._exit_label()}")
        else:  # pragma: no cover - exhaustive over Stmt
            raise AssertionError(f"unhandled statement {stmt!r}")

    def _gen_var_decl(self, decl: VarDecl) -> None:
        if decl.is_register and id(decl) in self._reg_var_map:
            reg = self._reg_var_map[id(decl)]
            binding: _Binding = _RegVar(reg)
            if decl.init is not None:
                self._gen_expr(decl.init, 0)
                self.emit(f"mv   {reg}, t0")
            else:
                self.emit(f"li   {reg}, 0")
        elif decl.array_size is not None:
            offset = self._alloc_slot(decl.array_size)
            binding = _StackSlot(offset, is_array=True, size=decl.array_size)
        else:
            offset = self._alloc_slot()
            binding = _StackSlot(offset)
            if decl.init is not None:
                self._gen_expr(decl.init, 0)
                self.emit(f"sw   t0, -{offset}(fp)")
        self.scopes[-1][decl.name] = binding

    def _gen_assign(self, stmt: Assign) -> None:
        op = stmt.op
        target = stmt.target
        self._gen_expr(stmt.value, 0)  # value in t0
        if isinstance(target, Ident):
            binding = self._lookup(target.name, target.line)
            self._store_ident(binding, target, op)
        elif isinstance(target, Index):
            self._store_index(target, op)
        else:  # pragma: no cover - parser enforces
            raise AssertionError("bad assignment target")

    def _store_ident(self, binding: _Binding, target: Ident, op: str) -> None:
        mnemonic = _BINOPS.get(op[:-1]) if op != "=" else None
        if isinstance(binding, _RegVar):
            if op == "=":
                self.emit(f"mv   {binding.reg}, t0")
            else:
                self.emit(f"{mnemonic} {binding.reg}, {binding.reg}, t0")
            return
        if isinstance(binding, _StackSlot):
            if binding.is_array:
                raise SemaError(f"cannot assign to array {target.name!r}", target.line)
            where = f"-{binding.offset}(fp)"
        elif isinstance(binding, _ParamSlot):
            where = f"{binding.offset}(fp)"
        elif isinstance(binding, GlobalInfo):
            if binding.is_array:
                raise SemaError(f"cannot assign to array {target.name!r}", target.line)
            self.emit(f"la   t8, {binding.name}")
            if op == "=":
                self.emit("sw   t0, 0(t8)")
            else:
                self.emit("lw   t9, 0(t8)")
                self.emit(f"{mnemonic} t9, t9, t0")
                self.emit("sw   t9, 0(t8)")
            return
        else:
            raise SemaError(f"cannot assign to {target.name!r}", target.line)
        if op == "=":
            self.emit(f"sw   t0, {where}")
        else:
            self.emit(f"lw   t9, {where}")
            self.emit(f"{mnemonic} t9, t9, t0")
            self.emit(f"sw   t9, {where}")

    def _store_index(self, target: Index, op: str) -> None:
        # value is in t0; compute the element address into t8
        self._gen_address_expr(target.base, 1)
        self._gen_expr(target.index, 2)
        self.emit("sll  t8, t2, 2")
        self.emit("add  t8, t1, t8")
        if op == "=":
            self.emit("sw   t0, 0(t8)")
        else:
            mnemonic = _BINOPS[op[:-1]]
            self.emit("lw   t9, 0(t8)")
            self.emit(f"{mnemonic} t9, t9, t0")
            self.emit("sw   t9, 0(t8)")

    def _gen_if(self, stmt: If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if stmt.otherwise else else_label
        self._gen_branch(stmt.cond, else_label, branch_if_true=False)
        self._gen_stmt(stmt.then)
        if stmt.otherwise is not None:
            self.emit(f"j    {end_label}")
            self.emit_label(else_label)
            self._gen_stmt(stmt.otherwise)
        self.emit_label(end_label)

    def _gen_while(self, stmt: While) -> None:
        head = self.new_label("while")
        end = self.new_label("wend")
        self.emit_label(head)
        self._gen_branch(stmt.cond, end, branch_if_true=False)
        self._break_labels.append(end)
        self._continue_labels.append(head)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit(f"j    {head}")
        self.emit_label(end)

    def _gen_do_while(self, stmt: DoWhile) -> None:
        head = self.new_label("do")
        cond = self.new_label("docond")
        end = self.new_label("doend")
        self.emit_label(head)
        self._break_labels.append(end)
        self._continue_labels.append(cond)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit_label(cond)
        self._gen_branch(stmt.cond, head, branch_if_true=True)
        self.emit_label(end)

    def _gen_for(self, stmt: For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        head = self.new_label("for")
        step_label = self.new_label("fstep")
        end = self.new_label("fend")
        self.emit_label(head)
        if stmt.cond is not None:
            self._gen_branch(stmt.cond, end, branch_if_true=False)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        self._gen_stmt(stmt.body)
        self._break_labels.pop()
        self._continue_labels.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            self._gen_stmt(stmt.step)
        self.emit(f"j    {head}")
        self.emit_label(end)
        self.scopes.pop()

    # -- switch --------------------------------------------------------------------

    def _gen_switch(self, stmt: Switch) -> None:
        end = self.new_label("swend")
        group_labels = [self.new_label("case") for _ in stmt.groups]
        default_label = end
        value_to_label: dict[int, str] = {}
        for label, group in zip(group_labels, stmt.groups):
            for value in group.values:
                value_to_label[value] = label
            if group.is_default:
                default_label = label

        self._gen_expr(stmt.selector, 0)
        values = sorted(value_to_label)
        if self._is_dense(values):
            self._emit_jump_table(values, value_to_label, default_label)
        else:
            for value in values:
                label = value_to_label[value]
                if value == 0:
                    self.emit(f"beq  t0, zero, {label}")
                elif -0x8000 <= value <= 0x7FFF:
                    self.emit(f"addi t8, zero, {value}")
                    self.emit(f"beq  t0, t8, {label}")
                else:
                    self.emit(f"li   t8, {value}")
                    self.emit(f"beq  t0, t8, {label}")
            self.emit(f"j    {default_label}")

        self._break_labels.append(end)
        for label, group in zip(group_labels, stmt.groups):
            self.emit_label(label)
            for sub in group.stmts:
                self._gen_stmt(sub)
        self._break_labels.pop()
        self.emit_label(end)

    @staticmethod
    def _is_dense(values: list[int]) -> bool:
        if len(values) < 4:
            return False
        span = values[-1] - values[0] + 1
        return span <= min(_MAX_DENSE_SPAN, 3 * len(values))

    def _emit_jump_table(
        self,
        values: list[int],
        value_to_label: dict[int, str],
        default_label: str,
    ) -> None:
        lo = values[0]
        span = values[-1] - lo + 1
        table = self.new_label("jt").lstrip(".")  # data labels: no leading dot
        if lo != 0:
            if -0x8000 <= -lo <= 0x7FFF:
                self.emit(f"addi t8, t0, {-lo}")
            else:
                self.emit(f"li   t9, {lo}")
                self.emit("sub  t8, t0, t9")
        else:
            self.emit("mv   t8, t0")
        self.emit(f"sltiu t9, t8, {span}")
        self.emit(f"beq  t9, zero, {default_label}")
        self.emit("sll  t8, t8, 2")
        self.emit(f"la   t9, {table}")
        self.emit("add  t8, t8, t9")
        self.emit("lw   t8, 0(t8)")
        self.emit("jr   t8")
        entries = [
            value_to_label.get(lo + i, default_label) for i in range(span)
        ]
        self.u.data_lines.append(f"{table}:")
        for entry in entries:
            self.u.data_lines.append(f"        .word {entry}")

    # -- conditional branches -----------------------------------------------------

    def _gen_branch(
        self, cond: Expr, label: str, branch_if_true: bool, depth: int = 0
    ) -> None:
        """Branch to ``label`` when ``cond`` is true (or false)."""
        if isinstance(cond, IntLit):
            if bool(cond.value) == branch_if_true:
                self.emit(f"j    {label}")
            return
        if isinstance(cond, Unary) and cond.op == "!":
            self._gen_branch(cond.operand, label, not branch_if_true, depth)
            return
        if isinstance(cond, Binary) and cond.op in _REL_BRANCH:
            self._gen_rel_branch(cond, label, branch_if_true, depth)
            return
        if isinstance(cond, Binary) and cond.op == "&&":
            if branch_if_true:
                skip = self.new_label("andskip")
                self._gen_branch(cond.left, skip, False, depth)
                self._gen_branch(cond.right, label, True, depth)
                self.emit_label(skip)
            else:
                self._gen_branch(cond.left, label, False, depth)
                self._gen_branch(cond.right, label, False, depth)
            return
        if isinstance(cond, Binary) and cond.op == "||":
            if branch_if_true:
                self._gen_branch(cond.left, label, True, depth)
                self._gen_branch(cond.right, label, True, depth)
            else:
                skip = self.new_label("orskip")
                self._gen_branch(cond.left, skip, True, depth)
                self._gen_branch(cond.right, label, False, depth)
                self.emit_label(skip)
            return
        self._gen_expr(cond, depth)
        reg = f"t{depth}"
        mnemonic = "bne" if branch_if_true else "beq"
        self.emit(f"{mnemonic}  {reg}, zero, {label}")

    def _gen_rel_branch(
        self, cond: Binary, label: str, branch_if_true: bool, depth: int
    ) -> None:
        op = cond.op if branch_if_true else _REL_INVERSE[cond.op]
        mnemonic, swap = _REL_BRANCH[op]
        left_reg, right_reg = self._gen_operands(cond.left, cond.right, depth)
        if swap:
            left_reg, right_reg = right_reg, left_reg
        self.emit(f"{mnemonic}  {left_reg}, {right_reg}, {label}")

    # -- expressions ------------------------------------------------------------------

    def _gen_operands(
        self, left: Expr, right: Expr, depth: int
    ) -> tuple[str, str]:
        """Evaluate two operands; returns their (left, right) registers."""
        if depth + 1 < _NUM_TEMPS:
            self._gen_expr(left, depth)
            self._gen_expr(right, depth + 1)
            return f"t{depth}", f"t{depth + 1}"
        top = _NUM_TEMPS - 1
        self._gen_expr(left, top)
        offset = self._alloc_spill()
        self.emit(f"sw   t{top}, -{offset}(fp)")
        self._gen_expr(right, top)
        self.emit(f"lw   t8, -{offset}(fp)")
        self._free_spill(offset)
        return "t8", f"t{top}"

    def _gen_expr(self, expr: Expr, depth: int) -> None:
        """Evaluate ``expr`` into register ``t{depth}``."""
        depth = min(depth, _NUM_TEMPS - 1)
        reg = f"t{depth}"
        if isinstance(expr, IntLit):
            self.emit(f"li   {reg}, {expr.value}")
            return
        if isinstance(expr, Ident):
            self._gen_ident(expr, reg)
            return
        if isinstance(expr, Unary):
            self._gen_unary(expr, depth)
            return
        if isinstance(expr, Binary):
            self._gen_binary(expr, depth)
            return
        if isinstance(expr, Ternary):
            else_label = self.new_label("terne")
            end_label = self.new_label("ternd")
            self._gen_branch(expr.cond, else_label, branch_if_true=False, depth=depth)
            self._gen_expr(expr.then, depth)
            self.emit(f"j    {end_label}")
            self.emit_label(else_label)
            self._gen_expr(expr.otherwise, depth)
            self.emit_label(end_label)
            return
        if isinstance(expr, Index):
            left_reg, right_reg = self._gen_index_operands(expr, depth)
            self.emit(f"sll  t8, {right_reg}, 2")
            self.emit(f"add  t8, {left_reg}, t8")
            self.emit(f"lw   {reg}, 0(t8)")
            return
        if isinstance(expr, Call):
            self._gen_call(expr, depth)
            return
        if isinstance(expr, StrLit):
            raise SemaError("string literal outside print_str", expr.line)
        raise AssertionError(f"unhandled expression {expr!r}")

    def _gen_index_operands(self, expr: Index, depth: int) -> tuple[str, str]:
        if depth + 1 < _NUM_TEMPS:
            self._gen_address_expr(expr.base, depth)
            self._gen_expr(expr.index, depth + 1)
            return f"t{depth}", f"t{depth + 1}"
        top = _NUM_TEMPS - 1
        self._gen_address_expr(expr.base, top)
        offset = self._alloc_spill()
        self.emit(f"sw   t{top}, -{offset}(fp)")
        self._gen_expr(expr.index, top)
        self.emit(f"lw   t8, -{offset}(fp)")
        self._free_spill(offset)
        return "t8", f"t{top}"

    def _gen_ident(self, expr: Ident, reg: str) -> None:
        binding = self._lookup(expr.name, expr.line)
        if isinstance(binding, _RegVar):
            self.emit(f"mv   {reg}, {binding.reg}")
        elif isinstance(binding, _StackSlot):
            if binding.is_array:
                self.emit(f"addi {reg}, fp, -{binding.offset}")
            else:
                self.emit(f"lw   {reg}, -{binding.offset}(fp)")
        elif isinstance(binding, _ParamSlot):
            self.emit(f"lw   {reg}, {binding.offset}(fp)")
        elif isinstance(binding, GlobalInfo):
            if binding.is_array:
                self.emit(f"la   {reg}, {binding.name}")
            else:
                self.emit(f"la   t8, {binding.name}")
                self.emit(f"lw   {reg}, 0(t8)")
        elif binding == "func":
            self.emit(f"la   {reg}, {expr.name}")
        else:
            raise SemaError(
                f"builtin {expr.name!r} cannot be used as a value", expr.line
            )

    def _gen_address_expr(self, base: Expr, depth: int) -> None:
        """Base address of an indexing operation into ``t{depth}``.

        Array-typed names decay to their base address; anything else is
        evaluated as a value and treated as an address (pointer-style).
        """
        if isinstance(base, Ident):
            binding = self._lookup(base.name, base.line)
            reg = f"t{min(depth, _NUM_TEMPS - 1)}"
            if isinstance(binding, _StackSlot) and binding.is_array:
                self.emit(f"addi {reg}, fp, -{binding.offset}")
                return
            if isinstance(binding, GlobalInfo) and binding.is_array:
                self.emit(f"la   {reg}, {binding.name}")
                return
        self._gen_expr(base, depth)

    def _gen_unary(self, expr: Unary, depth: int) -> None:
        reg = f"t{min(depth, _NUM_TEMPS - 1)}"
        if expr.op == "&":
            assert isinstance(expr.operand, Ident)
            binding = self._lookup(expr.operand.name, expr.line)
            if binding == "func":
                self.emit(f"la   {reg}, {expr.operand.name}")
            elif isinstance(binding, GlobalInfo):
                self.emit(f"la   {reg}, {binding.name}")
            elif isinstance(binding, _StackSlot):
                self.emit(f"addi {reg}, fp, -{binding.offset}")
            elif isinstance(binding, _ParamSlot):
                self.emit(f"addi {reg}, fp, {binding.offset}")
            else:
                raise SemaError(
                    f"cannot take the address of {expr.operand.name!r}",
                    expr.line,
                )
            return
        self._gen_expr(expr.operand, depth)
        if expr.op == "-":
            self.emit(f"sub  {reg}, zero, {reg}")
        elif expr.op == "~":
            self.emit(f"nor  {reg}, {reg}, zero")
        elif expr.op == "!":
            self.emit(f"sltiu {reg}, {reg}, 1")
        else:  # pragma: no cover
            raise AssertionError(f"unhandled unary {expr.op!r}")

    def _gen_binary(self, expr: Binary, depth: int) -> None:
        reg = f"t{min(depth, _NUM_TEMPS - 1)}"
        op = expr.op
        if op in ("&&", "||"):
            false_label = self.new_label("bfalse")
            end_label = self.new_label("bend")
            self._gen_branch(expr, false_label, branch_if_true=False, depth=depth)
            self.emit(f"li   {reg}, 1")
            self.emit(f"j    {end_label}")
            self.emit_label(false_label)
            self.emit(f"li   {reg}, 0")
            self.emit_label(end_label)
            return
        if op in _REL_BRANCH:
            left_reg, right_reg = self._gen_operands(expr.left, expr.right, depth)
            self._emit_relational(op, reg, left_reg, right_reg)
            return
        left_reg, right_reg = self._gen_operands(expr.left, expr.right, depth)
        self.emit(f"{_BINOPS[op]} {reg}, {left_reg}, {right_reg}")

    def _emit_relational(
        self, op: str, reg: str, left: str, right: str
    ) -> None:
        if op == "<":
            self.emit(f"slt  {reg}, {left}, {right}")
        elif op == ">":
            self.emit(f"slt  {reg}, {right}, {left}")
        elif op == "<=":
            self.emit(f"slt  {reg}, {right}, {left}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == ">=":
            self.emit(f"slt  {reg}, {left}, {right}")
            self.emit(f"xori {reg}, {reg}, 1")
        elif op == "==":
            self.emit(f"xor  {reg}, {left}, {right}")
            self.emit(f"sltiu {reg}, {reg}, 1")
        elif op == "!=":
            self.emit(f"xor  {reg}, {left}, {right}")
            self.emit(f"sltu {reg}, zero, {reg}")
        else:  # pragma: no cover
            raise AssertionError(f"unhandled relational {op!r}")

    # -- calls -------------------------------------------------------------------------

    def _gen_call(self, call: Call, depth: int) -> None:
        depth = min(depth, _NUM_TEMPS - 1)
        callee = call.callee
        if isinstance(callee, Ident):
            binding = self._lookup(callee.name, callee.line)
            if binding == "builtin":
                self._gen_builtin(callee.name, call, depth)
                return
            if binding == "func":
                self._gen_plain_call(call, depth, direct=callee.name)
                return
        self._gen_plain_call(call, depth, direct=None)

    def _gen_plain_call(
        self, call: Call, depth: int, direct: str | None
    ) -> None:
        reg = f"t{depth}"
        nargs = len(call.args)

        # save live expression temps (t0..t{depth-1}) around the call
        saved: list[tuple[str, int]] = []
        for index in range(depth):
            offset = self._alloc_spill()
            self.emit(f"sw   t{index}, -{offset}(fp)")
            saved.append((f"t{index}", offset))

        # evaluate callee (indirect case) and all args to dedicated slots
        target_offset = None
        if direct is None:
            self._gen_expr(call.callee, 0)
            target_offset = self._alloc_spill()
            self.emit(f"sw   t0, -{target_offset}(fp)")
        arg_offsets: list[int] = []
        for arg in call.args:
            self._gen_expr(arg, 0)
            offset = self._alloc_spill()
            self.emit(f"sw   t0, -{offset}(fp)")
            arg_offsets.append(offset)

        # marshal arguments
        extra = max(0, nargs - 4)
        for index in range(min(nargs, 4)):
            self.emit(f"lw   a{index}, -{arg_offsets[index]}(fp)")
        if extra:
            self.emit(f"addi sp, sp, -{4 * extra}")
            for index in range(4, nargs):
                self.emit(f"lw   t8, -{arg_offsets[index]}(fp)")
                self.emit(f"sw   t8, {4 * (index - 4)}(sp)")

        if direct is not None:
            self.emit(f"jal  {direct}")
        else:
            assert target_offset is not None
            self.emit(f"lw   t8, -{target_offset}(fp)")
            self.emit("jalr t8")

        if extra:
            self.emit(f"addi sp, sp, {4 * extra}")

        # restore temps, deliver result
        for temp, offset in saved:
            self.emit(f"lw   {temp}, -{offset}(fp)")
        for _, offset in saved:
            self._free_spill(offset)
        for offset in arg_offsets:
            self._free_spill(offset)
        if target_offset is not None:
            self._free_spill(target_offset)
        self.emit(f"mv   {reg}, v0")

    def _gen_builtin(self, name: str, call: Call, depth: int) -> None:
        reg = f"t{depth}"
        if name == "print_str":
            arg = call.args[0]
            assert isinstance(arg, StrLit)
            label = self.u.intern_string(arg.text)
            self.emit(f"la   a0, {label}")
            self.emit("li   v0, 4")
            self.emit("syscall")
            self.emit(f"li   {reg}, 0")
            return
        if name == "load":
            self._gen_expr(call.args[0], depth)
            self.emit(f"lw   {reg}, 0({reg})")
            return
        if name == "store":
            left_reg, right_reg = self._gen_operands(
                call.args[0], call.args[1], depth
            )
            self.emit(f"sw   {right_reg}, 0({left_reg})")
            self.emit(f"li   {reg}, 0")
            return
        if name == "read_int":
            self.emit("li   v0, 5")
            self.emit("syscall")
            self.emit(f"mv   {reg}, v0")
            return
        service = {"print_int": 1, "print_char": 11, "exit": 10, "sbrk": 9}[name]
        self._gen_expr(call.args[0], depth)
        self.emit(f"mv   a0, {reg}")
        self.emit(f"li   v0, {service}")
        self.emit("syscall")
        if name == "sbrk":
            self.emit(f"mv   {reg}, v0")


class CodeGen:
    """Whole-unit code generator."""

    def __init__(self, unit: Unit, info: UnitInfo):
        self.unit = unit
        self.info = info
        self.data_lines: list[str] = []
        self._strings: dict[str, str] = {}

    def intern_string(self, text: str) -> str:
        label = self._strings.get(text)
        if label is None:
            label = f"str_{len(self._strings)}"
            self._strings[text] = label
            escaped = (
                text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
                .replace("\r", "\\r")
            )
            self.data_lines.append(f'{label}: .asciiz "{escaped}"')
        return label

    def generate(self) -> str:
        text_lines = [
            "        .text",
            "_start:",
            "        jal  main",
            "        mv   a0, v0",
            "        li   v0, 10",
            "        syscall",
            "        halt",
        ]
        for func in self.unit.functions:
            text_lines.extend(_FuncGen(self, func).generate())

        for decl in self.unit.globals:
            self._emit_global(decl)

        out = list(text_lines)
        out.append("")
        out.append("        .data")
        out.extend(self.data_lines)
        out.append("")
        out.append("        .entry _start")
        return "\n".join(out) + "\n"

    def _emit_global(self, decl: GlobalDecl) -> None:
        # strings are emitted unpadded, so word data must realign
        self.data_lines.append("        .align 2")
        entries = [str(item) for item in decl.init]
        if decl.array_size is None:
            value = entries[0] if entries else "0"
            self.data_lines.append(f"{decl.name}: .word {value}")
            return
        self.data_lines.append(f"{decl.name}:")
        if entries:
            self.data_lines.append("        .word " + ", ".join(entries))
        remaining = decl.array_size - len(decl.init)
        if remaining > 0:
            self.data_lines.append(f"        .space {4 * remaining}")


def generate(unit: Unit, info: UnitInfo) -> str:
    """Generate SR32 assembly for a semantically valid unit."""
    return CodeGen(unit, info).generate()
