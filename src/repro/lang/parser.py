"""MiniC recursive-descent parser."""

from __future__ import annotations

from repro.lang.errors import ParseError
from repro.lang.lexer import TokKind, Token, tokenize
from repro.lang.nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CaseGroup,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    Ident,
    If,
    IntLit,
    Index,
    Return,
    Stmt,
    StrLit,
    Switch,
    Ternary,
    Unary,
    Unit,
    VarDecl,
    While,
)

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

#: binary operators by precedence level, loosest first
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokKind.EOF:
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        token = self.tok
        return (
            token.kind in (TokKind.PUNCT, TokKind.KEYWORD)
            and token.text == text
        )

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise ParseError(
                f"expected {text!r}, got {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind is not TokKind.IDENT:
            raise ParseError(
                f"expected identifier, got {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    # -- top level -------------------------------------------------------------

    def parse_unit(self) -> Unit:
        globals_: list[GlobalDecl] = []
        functions: list[FuncDef] = []
        while self.tok.kind is not TokKind.EOF:
            if not (self.check("int") or self.check("void")):
                raise ParseError(
                    f"expected declaration, got {self.tok.text!r}",
                    self.tok.line,
                )
            start = self.pos
            self.advance()  # int/void
            self.expect_ident()
            if self.check("("):
                self.pos = start
                func = self._func_def()
                if func is not None:
                    functions.append(func)
            else:
                self.pos = start
                globals_.append(self._global_decl())
        return Unit(globals=tuple(globals_), functions=tuple(functions))

    def _func_def(self) -> FuncDef | None:
        line = self.tok.line
        self.advance()  # int/void
        name = self.expect_ident().text
        self.expect("(")
        params: list[str] = []
        if not self.check(")"):
            while True:
                if self.accept("void") and self.check(")"):
                    break
                self.expect("int")
                params.append(self.expect_ident().text)
                if not self.accept(","):
                    break
        self.expect(")")
        if self.accept(";"):
            # prototype: tolerated for C familiarity, but unnecessary —
            # name resolution is unit-wide
            return None
        body = self._block()
        return FuncDef(name=name, params=tuple(params), body=body, line=line)

    def _global_decl(self) -> GlobalDecl:
        line = self.tok.line
        self.expect("int")
        name = self.expect_ident().text
        array_size: int | None = None
        if self.accept("["):
            if self.check("]"):
                array_size = -1  # size from initializer
            else:
                array_size = self._const_int()
            self.expect("]")
        init: list[int | str] = []
        if self.accept("="):
            if self.accept("{"):
                while not self.check("}"):
                    init.append(self._const_init())
                    if not self.accept(","):
                        break
                self.expect("}")
            else:
                init.append(self._const_init())
        self.expect(";")
        if array_size == -1:
            if not init:
                raise ParseError(
                    f"array {name!r} needs a size or initializer", line
                )
            array_size = len(init)
        if array_size is not None and len(init) > array_size:
            raise ParseError(f"too many initializers for {name!r}", line)
        if array_size is None and len(init) > 1:
            raise ParseError(f"scalar {name!r} has multiple initializers", line)
        return GlobalDecl(
            name=name, array_size=array_size, init=tuple(init), line=line
        )

    def _const_int(self) -> int:
        negative = self.accept("-")
        token = self.advance()
        if token.kind is not TokKind.INT:
            raise ParseError(
                f"expected integer constant, got {token.text!r}", token.line
            )
        return -token.value if negative else token.value

    def _const_init(self) -> int | str:
        if self.accept("&"):
            return self.expect_ident().text
        if self.tok.kind is TokKind.IDENT:
            return self.advance().text
        return self._const_int()

    # -- statements ---------------------------------------------------------------

    def _block(self) -> Block:
        line = self.expect("{").line
        stmts: list[Stmt] = []
        while not self.check("}"):
            stmts.append(self._stmt())
        self.expect("}")
        return Block(stmts=tuple(stmts), line=line)

    def _stmt(self) -> Stmt:
        token = self.tok
        if self.check("{"):
            return self._block()
        if self.check("register") or self.check("int"):
            return self._var_decl()
        if self.accept("if"):
            self.expect("(")
            cond = self._expr()
            self.expect(")")
            then = self._stmt()
            otherwise = self._stmt() if self.accept("else") else None
            return If(cond=cond, then=then, otherwise=otherwise, line=token.line)
        if self.accept("while"):
            self.expect("(")
            cond = self._expr()
            self.expect(")")
            return While(cond=cond, body=self._stmt(), line=token.line)
        if self.accept("do"):
            body = self._stmt()
            self.expect("while")
            self.expect("(")
            cond = self._expr()
            self.expect(")")
            self.expect(";")
            return DoWhile(body=body, cond=cond, line=token.line)
        if self.accept("for"):
            return self._for(token.line)
        if self.accept("switch"):
            return self._switch(token.line)
        if self.accept("break"):
            self.expect(";")
            return Break(line=token.line)
        if self.accept("continue"):
            self.expect(";")
            return Continue(line=token.line)
        if self.accept("return"):
            value = None if self.check(";") else self._expr()
            self.expect(";")
            return Return(value=value, line=token.line)
        stmt = self._simple_stmt()
        self.expect(";")
        return stmt

    def _var_decl(self) -> VarDecl:
        line = self.tok.line
        is_register = self.accept("register")
        self.expect("int")
        name = self.expect_ident().text
        array_size: int | None = None
        if self.accept("["):
            array_size = self._const_int()
            if array_size <= 0:
                raise ParseError("array size must be positive", line)
            self.expect("]")
        init = None
        if self.accept("="):
            if array_size is not None:
                raise ParseError("local arrays cannot be initialized", line)
            init = self._expr()
        self.expect(";")
        if is_register and array_size is not None:
            raise ParseError("register arrays are not supported", line)
        return VarDecl(
            name=name,
            array_size=array_size,
            init=init,
            is_register=is_register,
            line=line,
        )

    def _for(self, line: int) -> For:
        self.expect("(")
        init: Stmt | None = None
        if not self.check(";"):
            if self.check("int") or self.check("register"):
                init = self._var_decl()  # consumes the ';'
            else:
                init = self._simple_stmt()
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.check(";") else self._expr()
        self.expect(";")
        step = None if self.check(")") else self._simple_stmt()
        self.expect(")")
        return For(init=init, cond=cond, step=step, body=self._stmt(), line=line)

    def _switch(self, line: int) -> Switch:
        self.expect("(")
        selector = self._expr()
        self.expect(")")
        self.expect("{")
        groups: list[CaseGroup] = []
        while not self.check("}"):
            values: list[int] = []
            is_default = False
            label_line = self.tok.line
            saw_label = False
            while True:
                if self.accept("case"):
                    values.append(self._const_int())
                    self.expect(":")
                    saw_label = True
                elif self.accept("default"):
                    self.expect(":")
                    is_default = True
                    saw_label = True
                else:
                    break
            if not saw_label:
                raise ParseError(
                    f"expected case/default, got {self.tok.text!r}",
                    self.tok.line,
                )
            stmts: list[Stmt] = []
            while not (
                self.check("case") or self.check("default") or self.check("}")
            ):
                stmts.append(self._stmt())
            groups.append(
                CaseGroup(
                    values=tuple(values),
                    is_default=is_default,
                    stmts=tuple(stmts),
                    line=label_line,
                )
            )
        self.expect("}")
        return Switch(selector=selector, groups=tuple(groups), line=line)

    def _simple_stmt(self) -> Stmt:
        """Assignment, increment/decrement or expression statement."""
        line = self.tok.line
        expr = self._expr()
        token = self.tok
        if token.kind is TokKind.PUNCT and token.text in _ASSIGN_OPS:
            self.advance()
            value = self._expr()
            self._check_lvalue(expr, token.line)
            return Assign(target=expr, op=token.text, value=value, line=line)
        if token.kind is TokKind.PUNCT and token.text in ("++", "--"):
            self.advance()
            self._check_lvalue(expr, token.line)
            op = "+=" if token.text == "++" else "-="
            return Assign(target=expr, op=op, value=IntLit(1, line), line=line)
        return ExprStmt(expr=expr, line=line)

    @staticmethod
    def _check_lvalue(expr: Expr, line: int) -> None:
        if not isinstance(expr, (Ident, Index)):
            raise ParseError("assignment target must be a variable or element", line)

    # -- expressions ---------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        if self.accept("?"):
            line = self.tok.line
            then = self._expr()
            self.expect(":")
            otherwise = self._ternary()
            return Ternary(cond=cond, then=then, otherwise=otherwise, line=line)
        return cond

    def _binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        ops = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self.tok.kind is TokKind.PUNCT and self.tok.text in ops:
            op = self.advance()
            right = self._binary(level + 1)
            left = Binary(op=op.text, left=left, right=right, line=op.line)
        return left

    def _unary(self) -> Expr:
        token = self.tok
        if token.kind is TokKind.PUNCT and token.text in ("-", "!", "~", "&"):
            self.advance()
            return Unary(op=token.text, operand=self._unary(), line=token.line)
        if token.kind is TokKind.PUNCT and token.text == "+":
            self.advance()
            return self._unary()
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self.accept("("):
                args: list[Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self._expr())
                        if not self.accept(","):
                            break
                closing = self.expect(")")
                expr = Call(callee=expr, args=tuple(args), line=closing.line)
            elif self.accept("["):
                index = self._expr()
                closing = self.expect("]")
                expr = Index(base=expr, index=index, line=closing.line)
            else:
                return expr

    def _primary(self) -> Expr:
        token = self.advance()
        if token.kind is TokKind.INT:
            return IntLit(value=token.value, line=token.line)
        if token.kind is TokKind.STRING:
            return StrLit(text=token.text, line=token.line)
        if token.kind is TokKind.IDENT:
            return Ident(name=token.text, line=token.line)
        if token.kind is TokKind.PUNCT and token.text == "(":
            expr = self._expr()
            self.expect(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> Unit:
    """Parse MiniC source into a :class:`repro.lang.nodes.Unit`."""
    return Parser(source).parse_unit()
