"""MiniC: a small C-like language compiled to SR32.

MiniC exists so the benchmark suite can be written at a realistic altitude:
function calls and returns, function-pointer dispatch tables (indirect
calls), dense ``switch`` statements (jump-table indirect jumps), recursion,
arrays and ``load``/``store`` intrinsics for heap data structures.  Its
code generator is what gives the guest programs the indirect-branch
profiles the paper's evaluation depends on.

Pipeline: :mod:`lexer` → :mod:`parser` → :mod:`sema` → :mod:`codegen`,
driven by :func:`repro.lang.compiler.compile_source`.
"""

from repro.lang.compiler import compile_source, compile_to_program
from repro.lang.errors import LangError, LexError, ParseError, SemaError
from repro.lang.optimize import optimize_unit

__all__ = [
    "LangError",
    "LexError",
    "ParseError",
    "SemaError",
    "compile_source",
    "compile_to_program",
    "optimize_unit",
]
