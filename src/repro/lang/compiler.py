"""MiniC compilation driver."""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang.codegen import generate
from repro.lang.optimize import optimize_unit
from repro.lang.parser import parse
from repro.lang.sema import analyze


def compile_source(source: str, optimize: bool = False) -> str:
    """Compile MiniC source to SR32 assembly text.

    ``optimize=True`` runs the constant-folding/simplification pass
    (:mod:`repro.lang.optimize`) between semantic analysis and codegen.
    """
    unit = parse(source)
    info = analyze(unit)
    if optimize:
        unit = optimize_unit(unit)
    return generate(unit, info)


def compile_to_program(source: str, optimize: bool = False) -> Program:
    """Compile MiniC source all the way to a loadable guest program."""
    return assemble(compile_source(source, optimize=optimize))
