"""AST-level optimisations for MiniC.

A classical constant-folding / simplification pass, applied between
semantic analysis and code generation when requested
(``compile_source(source, optimize=True)`` or ``repro-sdt compile -O``):

- constant folding of unary/binary/ternary operators with the exact
  wrap-around semantics of the target (32-bit, truncating division),
- algebraic identities (``x + 0``, ``x * 1``, ``x * 0`` when the operand
  is side-effect free, ``x & 0``, ``x | 0``, shifts by 0),
- short-circuit simplification (``0 && e`` → ``0``, ``1 || e`` → ``1``),
- dead-branch elimination for ``if``/``while``/ternary with constant
  conditions.

The pass never changes observable behaviour: folding uses the same
arithmetic as :mod:`repro.machine.executor`, division by a constant zero
is left unfolded (it must fault at runtime), and operands with potential
side effects (calls, indexing) are never dropped.
"""

from __future__ import annotations

from repro.lang.nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CaseGroup,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    Ident,
    If,
    Index,
    IntLit,
    Return,
    Stmt,
    StrLit,
    Switch,
    Ternary,
    Unary,
    Unit,
    VarDecl,
    While,
)

_U32 = 0xFFFFFFFF


def _wrap(value: int) -> int:
    value &= _U32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _fold_binary(op: str, left: int, right: int) -> int | None:
    """Fold two constants; ``None`` when the operation must trap/survive."""
    if op == "+":
        return _wrap(left + right)
    if op == "-":
        return _wrap(left - right)
    if op == "*":
        return _wrap(left * right)
    if op == "/":
        if right == 0:
            return None  # must fault at runtime
        quotient = abs(left) // abs(right)
        return _wrap(-quotient if (left < 0) != (right < 0) else quotient)
    if op == "%":
        if right == 0:
            return None
        remainder = abs(left) % abs(right)
        return _wrap(-remainder if left < 0 else remainder)
    if op == "&":
        return _wrap(left & right)
    if op == "|":
        return _wrap(left | right)
    if op == "^":
        return _wrap(left ^ right)
    if op == "<<":
        return _wrap((left & _U32) << (right & 31))
    if op == ">>":
        return _wrap(left >> (right & 31))
    if op == ">>>":
        return _wrap((left & _U32) >> (right & 31))
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    return None


def _is_pure(expr: Expr) -> bool:
    """Conservatively: may this expression be discarded?"""
    if isinstance(expr, (IntLit, Ident, StrLit)):
        return True
    if isinstance(expr, Unary):
        return _is_pure(expr.operand)
    if isinstance(expr, Binary):
        # division can fault
        if expr.op in ("/", "%"):
            return False
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, Ternary):
        return (
            _is_pure(expr.cond)
            and _is_pure(expr.then)
            and _is_pure(expr.otherwise)
        )
    # calls have effects; indexing can fault
    return False


def fold_expr(expr: Expr) -> Expr:
    """Recursively fold one expression."""
    if isinstance(expr, (IntLit, Ident, StrLit)):
        return expr
    if isinstance(expr, Unary):
        if expr.op == "&":
            return expr  # address-of is resolved at codegen
        operand = fold_expr(expr.operand)
        if isinstance(operand, IntLit):
            if expr.op == "-":
                return IntLit(_wrap(-operand.value), expr.line)
            if expr.op == "~":
                return IntLit(_wrap(~operand.value), expr.line)
            if expr.op == "!":
                return IntLit(int(operand.value == 0), expr.line)
        return Unary(expr.op, operand, expr.line)
    if isinstance(expr, Binary):
        return _fold_binary_node(expr)
    if isinstance(expr, Ternary):
        cond = fold_expr(expr.cond)
        then = fold_expr(expr.then)
        otherwise = fold_expr(expr.otherwise)
        if isinstance(cond, IntLit):
            return then if cond.value else otherwise
        return Ternary(cond, then, otherwise, expr.line)
    if isinstance(expr, Index):
        return Index(fold_expr(expr.base), fold_expr(expr.index), expr.line)
    if isinstance(expr, Call):
        return Call(
            fold_expr(expr.callee),
            tuple(fold_expr(arg) for arg in expr.args),
            expr.line,
        )
    raise AssertionError(f"unhandled expression {expr!r}")


def _fold_binary_node(expr: Binary) -> Expr:
    left = fold_expr(expr.left)
    right = fold_expr(expr.right)
    op = expr.op

    if isinstance(left, IntLit) and isinstance(right, IntLit):
        folded = _fold_binary(op, left.value, right.value)
        if folded is not None:
            return IntLit(folded, expr.line)

    # short-circuit constants
    if op == "&&" and isinstance(left, IntLit):
        if not left.value:
            return IntLit(0, expr.line)
        # 1 && e  ==  !!e
        return fold_expr(Unary("!", Unary("!", right, expr.line), expr.line))
    if op == "||" and isinstance(left, IntLit):
        if left.value:
            return IntLit(1, expr.line)
        return fold_expr(Unary("!", Unary("!", right, expr.line), expr.line))

    # algebraic identities (right-constant forms)
    if isinstance(right, IntLit):
        value = right.value
        if value == 0:
            if op in ("+", "-", "|", "^", "<<", ">>", ">>>"):
                return left
            if op in ("*", "&") and _is_pure(left):
                return IntLit(0, expr.line)
        if value == 1 and op in ("*", "/"):
            return left
    if isinstance(left, IntLit):
        value = left.value
        if value == 0:
            if op in ("+", "|", "^"):
                return right
            if op == "*" and _is_pure(right):
                return IntLit(0, expr.line)
        if value == 1 and op == "*":
            return right
    return Binary(op, left, right, expr.line)


def _contains_decl(stmt: Stmt | None) -> bool:
    """Does this subtree declare names into the *enclosing* scope?

    MiniC (like its codegen) scopes declarations to the nearest enclosing
    Block, so an unbraced branch arm like ``if (c) int x;`` declares into
    the surrounding block and cannot be silently deleted.  Block bodies
    introduce their own scope, so declarations inside them are safe.
    """
    if stmt is None or isinstance(stmt, Block):
        return False
    if isinstance(stmt, VarDecl):
        return True
    if isinstance(stmt, If):
        return _contains_decl(stmt.then) or _contains_decl(stmt.otherwise)
    if isinstance(stmt, (While, DoWhile)):
        return _contains_decl(stmt.body)
    if isinstance(stmt, For):
        # For introduces a scope for its init in codegen, body decls of
        # unbraced form still land in that For scope, not the outer one
        return False
    if isinstance(stmt, Switch):
        return any(
            _contains_decl(sub) for group in stmt.groups for sub in group.stmts
        )
    return False


def fold_stmt(stmt: Stmt) -> Stmt | None:
    """Fold one statement; ``None`` removes it entirely."""
    if isinstance(stmt, VarDecl):
        if stmt.init is None:
            return stmt
        return VarDecl(
            stmt.name, stmt.array_size, fold_expr(stmt.init),
            stmt.is_register, stmt.line,
        )
    if isinstance(stmt, Assign):
        return Assign(
            fold_expr(stmt.target), stmt.op, fold_expr(stmt.value), stmt.line
        )
    if isinstance(stmt, ExprStmt):
        expr = fold_expr(stmt.expr)
        if _is_pure(expr):
            return None  # e.g. `1 + 2;`
        return ExprStmt(expr, stmt.line)
    if isinstance(stmt, Block):
        return Block(_fold_stmts(stmt.stmts), stmt.line)
    if isinstance(stmt, If):
        cond = fold_expr(stmt.cond)
        then = fold_stmt(stmt.then)
        otherwise = (
            fold_stmt(stmt.otherwise) if stmt.otherwise is not None else None
        )
        if isinstance(cond, IntLit):
            chosen = then if cond.value else otherwise
            discarded = otherwise if cond.value else then
            # scope safety: an unbraced `int x;` arm declares into the
            # enclosing scope, so a discarded arm containing one cannot
            # be deleted (see _contains_decl)
            if not _contains_decl(discarded):
                return chosen  # may be None: both arms gone
        return If(
            cond,
            then if then is not None else Block((), stmt.line),
            otherwise,
            stmt.line,
        )
    if isinstance(stmt, While):
        cond = fold_expr(stmt.cond)
        if (
            isinstance(cond, IntLit)
            and not cond.value
            and not _contains_decl(stmt.body)
        ):
            return None  # while(0): body never runs
        body = fold_stmt(stmt.body)
        return While(
            cond, body if body is not None else Block((), stmt.line), stmt.line
        )
    if isinstance(stmt, DoWhile):
        body = fold_stmt(stmt.body)
        return DoWhile(
            body if body is not None else Block((), stmt.line),
            fold_expr(stmt.cond),
            stmt.line,
        )
    if isinstance(stmt, For):
        init = fold_stmt(stmt.init) if stmt.init is not None else None
        cond = fold_expr(stmt.cond) if stmt.cond is not None else None
        step = fold_stmt(stmt.step) if stmt.step is not None else None
        body = fold_stmt(stmt.body)
        if (
            isinstance(cond, IntLit)
            and not cond.value
            and not _contains_decl(stmt.body)
        ):
            # loop never runs; preserve init effects (declarations were
            # For-scoped, so a pure-init decl vanishes with the loop)
            if init is None:
                return None
            if isinstance(init, VarDecl):
                if init.init is None or _is_pure(init.init):
                    return None
                # effectful declaration initialiser: keep the dead loop
                # shell rather than leak the name into the outer scope
            else:
                return init
        return For(
            init, cond, step,
            body if body is not None else Block((), stmt.line),
            stmt.line,
        )
    if isinstance(stmt, Switch):
        groups = tuple(
            CaseGroup(
                group.values,
                group.is_default,
                _fold_stmts(group.stmts),
                group.line,
            )
            for group in stmt.groups
        )
        return Switch(fold_expr(stmt.selector), groups, stmt.line)
    if isinstance(stmt, Return):
        if stmt.value is None:
            return stmt
        return Return(fold_expr(stmt.value), stmt.line)
    if isinstance(stmt, (Break, Continue)):
        return stmt
    raise AssertionError(f"unhandled statement {stmt!r}")


def _fold_stmts(stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    out = []
    for stmt in stmts:
        folded = fold_stmt(stmt)
        if folded is not None:
            out.append(folded)
    return tuple(out)


def optimize_unit(unit: Unit) -> Unit:
    """Apply constant folding/simplification to every function."""
    functions = tuple(
        FuncDef(
            func.name,
            func.params,
            Block(_fold_stmts(func.body.stmts), func.body.line),
            func.line,
        )
        for func in unit.functions
    )
    return Unit(globals=unit.globals, functions=functions)
