"""Sparse byte-addressed guest memory.

Memory is organised as 4 KiB pages allocated on first touch, so the guest's
widely separated text / data / stack regions do not cost host RAM.  All
multi-byte accesses are little-endian and must be naturally aligned (SR32
has no unaligned accesses, which keeps the SDT's fetch path simple).

Write watch
-----------

Every store path (byte/half/word and the bulk copy) funnels through one
hook point so execution engines can detect guest writes to translated
code (:mod:`repro.sdt.coherence`, the interpreter's block caches).  The
owner registers a hook with :meth:`Memory.set_write_watch` and marks
pages of interest with :meth:`Memory.watch_page`; the hook fires *after*
the bytes land, with the store's address and length.  When no watch is
installed the per-store cost is a single attribute load and ``is None``
test, so coherence-off configurations pay nothing measurable.
"""

from __future__ import annotations

from typing import Callable

from repro.machine.errors import AlignmentFault, MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDR_LIMIT = 1 << 32

#: Write-watch callback: ``hook(addr, length)`` after the store landed.
WriteWatch = Callable[[int, int], None]


class Memory:
    """Sparse 32-bit guest address space."""

    __slots__ = ("_pages", "_watched", "_watch_hook")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        #: watched page indices, or None when no watch is installed (the
        #: fast-path guard tests this one attribute)
        self._watched: set[int] | None = None
        self._watch_hook: WriteWatch | None = None

    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> PAGE_SHIFT] = page
        return page

    def _fail(self, addr: int, width: int, op: str) -> None:
        """Raise for an access rejected by a fast-path guard.

        Out-of-range beats misalignment, matching the historical check
        order (an out-of-range odd address is a :class:`MemoryFault`).
        ``op`` is the access kind ("load"/"store") carried into the
        fault message, the same label the byte accessors report.
        """
        if not 0 <= addr <= ADDR_LIMIT - width:
            raise MemoryFault(addr, op)
        raise AlignmentFault(addr, width)

    # -- write watch ---------------------------------------------------------

    def set_write_watch(self, hook: WriteWatch | None) -> None:
        """Install (or, with ``None``, remove) the store-path hook.

        The hook is called as ``hook(addr, length)`` after any store that
        touches a page previously marked via :meth:`watch_page`.  Only
        one hook can be installed at a time; the owning execution layer
        multiplexes if it needs more.
        """
        if hook is None:
            self._watched = None
            self._watch_hook = None
            return
        self._watch_hook = hook
        if self._watched is None:
            self._watched = set()

    def watch_page(self, page_index: int) -> None:
        """Mark one page so stores into it invoke the watch hook."""
        if self._watch_hook is None:
            raise ValueError("watch_page requires set_write_watch first")
        assert self._watched is not None
        self._watched.add(page_index)

    def unwatch_page(self, page_index: int) -> None:
        """Stop watching one page (missing pages are ignored)."""
        if self._watched is not None:
            self._watched.discard(page_index)

    def watched_pages(self) -> frozenset[int]:
        """Currently watched page indices (introspection/tests)."""
        return frozenset(self._watched) if self._watched is not None else frozenset()

    # -- loads -------------------------------------------------------------
    #
    # Bounds + alignment are folded into a single inline guard per access
    # (no helper-call on the hot path); an aligned in-range access never
    # crosses a page, so one page lookup suffices.

    def load_byte(self, addr: int) -> int:
        if not 0 <= addr < ADDR_LIMIT:
            raise MemoryFault(addr, "load")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def load_half(self, addr: int) -> int:
        if addr & 1 or addr < 0 or addr > ADDR_LIMIT - 2:
            self._fail(addr, 2, "load")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8)

    def load_word(self, addr: int) -> int:
        if addr & 3 or addr < 0 or addr > ADDR_LIMIT - 4:
            self._fail(addr, 4, "load")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return int.from_bytes(page[off : off + 4], "little")

    # -- stores ------------------------------------------------------------

    def store_byte(self, addr: int, value: int) -> None:
        if not 0 <= addr < ADDR_LIMIT:
            raise MemoryFault(addr, "store")
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF
        watched = self._watched
        if watched is not None and (addr >> PAGE_SHIFT) in watched:
            self._watch_hook(addr, 1)

    def store_half(self, addr: int, value: int) -> None:
        if addr & 1 or addr < 0 or addr > ADDR_LIMIT - 2:
            self._fail(addr, 2, "store")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF
        watched = self._watched
        if watched is not None and (addr >> PAGE_SHIFT) in watched:
            self._watch_hook(addr, 2)

    def store_word(self, addr: int, value: int) -> None:
        if addr & 3 or addr < 0 or addr > ADDR_LIMIT - 4:
            self._fail(addr, 4, "store")
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        watched = self._watched
        if watched is not None and (addr >> PAGE_SHIFT) in watched:
            self._watch_hook(addr, 4)

    # -- bulk --------------------------------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Copy a buffer into guest memory, one page slice at a time.

        Faulting behaviour matches the historical per-byte loop exactly:
        a negative start faults before writing anything, and a buffer
        running past the address limit writes the in-range prefix and
        then faults at the first out-of-range address.
        """
        if not data:
            return
        if addr < 0:
            raise MemoryFault(addr, "store")
        length = len(data)
        prefix = min(length, ADDR_LIMIT - addr) if addr < ADDR_LIMIT else 0
        pages = self._pages
        watched = self._watched
        pos = 0
        cursor = addr
        while pos < prefix:
            off = cursor & PAGE_MASK
            take = min(PAGE_SIZE - off, prefix - pos)
            index = cursor >> PAGE_SHIFT
            page = pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                pages[index] = page
            page[off : off + take] = data[pos : pos + take]
            if watched is not None and index in watched:
                self._watch_hook(cursor, take)
            pos += take
            cursor += take
        if prefix < length:
            raise MemoryFault(addr + prefix, "store")

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read a buffer from guest memory, one page slice at a time."""
        if length <= 0:
            return b""
        if addr < 0:
            raise MemoryFault(addr, "load")
        prefix = min(length, ADDR_LIMIT - addr) if addr < ADDR_LIMIT else 0
        pages = self._pages
        out = bytearray()
        pos = 0
        cursor = addr
        while pos < prefix:
            off = cursor & PAGE_MASK
            take = min(PAGE_SIZE - off, prefix - pos)
            page = pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                out.extend(b"\x00" * take)
            else:
                out.extend(page[off : off + take])
            pos += take
            cursor += take
        if prefix < length:
            raise MemoryFault(addr + prefix, "load")
        return bytes(out)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (bounded by ``limit`` bytes)."""
        out = bytearray()
        for offset in range(limit):
            byte = self.load_byte(addr + offset)
            if byte == 0:
                return out.decode("latin-1")
            out.append(byte)
        raise MemoryFault(addr, "unterminated string")

    @property
    def resident_pages(self) -> int:
        """Number of host-allocated guest pages (for stats)."""
        return len(self._pages)
