"""Sparse byte-addressed guest memory.

Memory is organised as 4 KiB pages allocated on first touch, so the guest's
widely separated text / data / stack regions do not cost host RAM.  All
multi-byte accesses are little-endian and must be naturally aligned (SR32
has no unaligned accesses, which keeps the SDT's fetch path simple).
"""

from __future__ import annotations

from repro.machine.errors import AlignmentFault, MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDR_LIMIT = 1 << 32


class Memory:
    """Sparse 32-bit guest address space."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[addr >> PAGE_SHIFT] = page
        return page

    def _fail(self, addr: int, width: int) -> None:
        """Raise for an access rejected by a fast-path guard.

        Out-of-range beats misalignment, matching the historical check
        order (an out-of-range odd address is a :class:`MemoryFault`).
        """
        if not 0 <= addr <= ADDR_LIMIT - width:
            raise MemoryFault(addr)
        raise AlignmentFault(addr, width)

    # -- loads -------------------------------------------------------------
    #
    # Bounds + alignment are folded into a single inline guard per access
    # (no helper-call on the hot path); an aligned in-range access never
    # crosses a page, so one page lookup suffices.

    def load_byte(self, addr: int) -> int:
        if not 0 <= addr < ADDR_LIMIT:
            raise MemoryFault(addr, "load")
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def load_half(self, addr: int) -> int:
        if addr & 1 or addr < 0 or addr > ADDR_LIMIT - 2:
            self._fail(addr, 2)
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return page[off] | (page[off + 1] << 8)

    def load_word(self, addr: int) -> int:
        if addr & 3 or addr < 0 or addr > ADDR_LIMIT - 4:
            self._fail(addr, 4)
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        off = addr & PAGE_MASK
        return int.from_bytes(page[off : off + 4], "little")

    # -- stores ------------------------------------------------------------

    def store_byte(self, addr: int, value: int) -> None:
        if not 0 <= addr < ADDR_LIMIT:
            raise MemoryFault(addr, "store")
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    def store_half(self, addr: int, value: int) -> None:
        if addr & 1 or addr < 0 or addr > ADDR_LIMIT - 2:
            self._fail(addr, 2)
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off] = value & 0xFF
        page[off + 1] = (value >> 8) & 0xFF

    def store_word(self, addr: int, value: int) -> None:
        if addr & 3 or addr < 0 or addr > ADDR_LIMIT - 4:
            self._fail(addr, 4)
        page = self._page(addr)
        off = addr & PAGE_MASK
        page[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- bulk --------------------------------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Copy a buffer into guest memory (loader use)."""
        for index, byte in enumerate(data):
            self.store_byte(addr + index, byte)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return bytes(self.load_byte(addr + i) for i in range(length))

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (bounded by ``limit`` bytes)."""
        out = bytearray()
        for offset in range(limit):
            byte = self.load_byte(addr + offset)
            if byte == 0:
                return out.decode("latin-1")
            out.append(byte)
        raise MemoryFault(addr, "unterminated string")

    @property
    def resident_pages(self) -> int:
        """Number of host-allocated guest pages (for stats)."""
        return len(self._pages)
