"""Single-instruction execution semantics.

:func:`execute` is the *only* place SR32 semantics are defined; both the
reference interpreter and the SDT's fragment executor call it, so the two
execution engines cannot drift apart semantically.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.registers import REG_RA
from repro.machine.cpu import CPUState, s32, u32
from repro.machine.errors import DivideByZeroFault
from repro.machine.memory import Memory
from repro.machine.syscalls import SyscallHandler


def _sdiv(a: int, b: int) -> int:
    """C-style truncating signed division."""
    if b == 0:
        raise DivideByZeroFault("signed division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise DivideByZeroFault("remainder by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def execute(
    instr: Instruction,
    cpu: CPUState,
    mem: Memory,
    syscalls: SyscallHandler,
) -> int:
    """Execute one instruction at ``cpu.pc`` and return the next PC.

    The caller is responsible for storing the returned PC back into
    ``cpu.pc`` (the SDT executes translated copies whose *guest* PC differs
    from the fragment-cache location, so PC management stays external).
    """
    op = instr.op
    regs = cpu.regs
    pc = cpu.pc
    next_pc = (pc + 4) & 0xFFFFFFFF

    # ALU register forms --------------------------------------------------
    if op is Op.ADD:
        cpu.write(instr.rd, regs[instr.rs] + regs[instr.rt])
    elif op is Op.ADDI:
        cpu.write(instr.rt, regs[instr.rs] + instr.imm)
    elif op is Op.SUB:
        cpu.write(instr.rd, regs[instr.rs] - regs[instr.rt])
    elif op is Op.AND:
        cpu.write(instr.rd, regs[instr.rs] & regs[instr.rt])
    elif op is Op.OR:
        cpu.write(instr.rd, regs[instr.rs] | regs[instr.rt])
    elif op is Op.XOR:
        cpu.write(instr.rd, regs[instr.rs] ^ regs[instr.rt])
    elif op is Op.NOR:
        cpu.write(instr.rd, ~(regs[instr.rs] | regs[instr.rt]))
    elif op is Op.SLT:
        cpu.write(instr.rd, int(s32(regs[instr.rs]) < s32(regs[instr.rt])))
    elif op is Op.SLTU:
        cpu.write(instr.rd, int(regs[instr.rs] < regs[instr.rt]))
    elif op is Op.MUL:
        cpu.write(instr.rd, s32(regs[instr.rs]) * s32(regs[instr.rt]))
    elif op is Op.DIV:
        cpu.write(instr.rd, _sdiv(s32(regs[instr.rs]), s32(regs[instr.rt])))
    elif op is Op.REM:
        cpu.write(instr.rd, _srem(s32(regs[instr.rs]), s32(regs[instr.rt])))
    # ALU immediate forms --------------------------------------------------
    elif op is Op.ANDI:
        cpu.write(instr.rt, regs[instr.rs] & instr.imm)
    elif op is Op.ORI:
        cpu.write(instr.rt, regs[instr.rs] | instr.imm)
    elif op is Op.XORI:
        cpu.write(instr.rt, regs[instr.rs] ^ instr.imm)
    elif op is Op.SLTI:
        cpu.write(instr.rt, int(s32(regs[instr.rs]) < instr.imm))
    elif op is Op.SLTIU:
        cpu.write(instr.rt, int(regs[instr.rs] < u32(instr.imm)))
    elif op is Op.LUI:
        cpu.write(instr.rt, instr.imm << 16)
    # shifts ---------------------------------------------------------------
    elif op is Op.SLL:
        cpu.write(instr.rd, regs[instr.rt] << instr.shamt)
    elif op is Op.SRL:
        cpu.write(instr.rd, regs[instr.rt] >> instr.shamt)
    elif op is Op.SRA:
        cpu.write(instr.rd, s32(regs[instr.rt]) >> instr.shamt)
    elif op is Op.SLLV:
        cpu.write(instr.rd, regs[instr.rs] << (regs[instr.rt] & 31))
    elif op is Op.SRLV:
        cpu.write(instr.rd, regs[instr.rs] >> (regs[instr.rt] & 31))
    elif op is Op.SRAV:
        cpu.write(instr.rd, s32(regs[instr.rs]) >> (regs[instr.rt] & 31))
    # memory ---------------------------------------------------------------
    elif op is Op.LW:
        cpu.write(instr.rt, mem.load_word(u32(regs[instr.rs] + instr.imm)))
    elif op is Op.SW:
        mem.store_word(u32(regs[instr.rs] + instr.imm), regs[instr.rt])
    elif op is Op.LB:
        cpu.write(
            instr.rt,
            s32_byte(mem.load_byte(u32(regs[instr.rs] + instr.imm))),
        )
    elif op is Op.LBU:
        cpu.write(instr.rt, mem.load_byte(u32(regs[instr.rs] + instr.imm)))
    elif op is Op.LH:
        cpu.write(
            instr.rt,
            s32_half(mem.load_half(u32(regs[instr.rs] + instr.imm))),
        )
    elif op is Op.LHU:
        cpu.write(instr.rt, mem.load_half(u32(regs[instr.rs] + instr.imm)))
    elif op is Op.SB:
        mem.store_byte(u32(regs[instr.rs] + instr.imm), regs[instr.rt])
    elif op is Op.SH:
        mem.store_half(u32(regs[instr.rs] + instr.imm), regs[instr.rt])
    # control --------------------------------------------------------------
    elif op is Op.BEQ:
        if regs[instr.rs] == regs[instr.rt]:
            next_pc = instr.branch_target(pc)
    elif op is Op.BNE:
        if regs[instr.rs] != regs[instr.rt]:
            next_pc = instr.branch_target(pc)
    elif op is Op.BLT:
        if s32(regs[instr.rs]) < s32(regs[instr.rt]):
            next_pc = instr.branch_target(pc)
    elif op is Op.BGE:
        if s32(regs[instr.rs]) >= s32(regs[instr.rt]):
            next_pc = instr.branch_target(pc)
    elif op is Op.BLTU:
        if regs[instr.rs] < regs[instr.rt]:
            next_pc = instr.branch_target(pc)
    elif op is Op.BGEU:
        if regs[instr.rs] >= regs[instr.rt]:
            next_pc = instr.branch_target(pc)
    elif op is Op.J:
        next_pc = instr.branch_target(pc)
    elif op is Op.JAL:
        cpu.write(REG_RA, pc + 4)
        next_pc = instr.branch_target(pc)
    elif op is Op.JR:
        next_pc = regs[instr.rs]
    elif op is Op.JALR:
        target = regs[instr.rs]
        cpu.write(instr.rd, pc + 4)
        next_pc = target
    elif op is Op.RET:
        next_pc = regs[REG_RA]
    elif op is Op.SYSCALL:
        syscalls.dispatch(cpu, mem)
    elif op is Op.HALT:
        if not syscalls.exited:
            syscalls.exit_code = 0
        next_pc = pc  # halt spins; the run loop stops on `exited`
    else:  # pragma: no cover - exhaustive over Op
        raise AssertionError(f"unimplemented op {op}")
    return next_pc


def s32_byte(value: int) -> int:
    """Sign-extend a byte."""
    return value - 0x100 if value & 0x80 else value


def s32_half(value: int) -> int:
    """Sign-extend a halfword."""
    return value - 0x10000 if value & 0x8000 else value
