"""Guest machine: memory, CPU state, syscalls and the reference interpreter.

The interpreter is the *correctness oracle* for the SDT: both execute guest
instructions through the same :func:`repro.machine.executor.execute`
semantics, so any divergence in final state or output is an SDT bug, not a
modelling artefact.
"""

from repro.machine.cpu import CPUState
from repro.machine.errors import (
    AlignmentFault,
    DivideByZeroFault,
    FuelExhausted,
    GuestFault,
    InvalidSyscall,
    MemoryFault,
)
from repro.machine.interpreter import Interpreter, RunResult
from repro.machine.loader import load_program
from repro.machine.memory import Memory
from repro.machine.syscalls import SyscallHandler

__all__ = [
    "AlignmentFault",
    "CPUState",
    "DivideByZeroFault",
    "FuelExhausted",
    "GuestFault",
    "Interpreter",
    "InvalidSyscall",
    "load_program",
    "Memory",
    "MemoryFault",
    "RunResult",
    "SyscallHandler",
]
