"""Tier-2 execution: profile-guided region compilation to Python source.

The threaded engine (:mod:`repro.machine.engine`) removed per-instruction
dispatch by specialising instructions into closures, but every hot region
still pays one Python call per instruction and one dispatch round-trip
per block per iteration.  This module removes those too: when a block's
execution counter crosses a threshold, a *region* is grown along its hot
direct-branch successors and compiled — ``compile()``/``exec()`` — into a
single Python function of straight-line source:

- guest registers become Python locals (``r5``), loaded once at region
  entry and spilled at every exit, so a loop iteration touches no
  register file at all;
- immediates, branch targets, sign-extension masks and r0 reads are
  constant-folded into the source;
- block-level accounting is preserved exactly: one
  ``HostModel.charge_block`` and one class-count commit per block, and
  the same predictor events at the same sites as the tier below;
- region exits fuse the tier-1 exit protocol (link following, return
  bookkeeping, IBTC/sieve dispatch) directly into the generated code.

**Deoptimization.**  Guards at every block boundary keep the tiers
architecturally indistinguishable: a fuel guard (the next block would
overshoot the budget), a link guard (the region-internal edge was
unlinked by an invalidation or flush) and — under fault injection — a
plan-coherence guard.  A failing guard spills the registers and returns
control to the tier-1 loop *without executing the next block*, so the
slow path replays it with per-instruction fuel/exit semantics and the
run stops, faults and charges exactly like the oracle engine.

**Fault replay.**  Generated source has exactly one line per guest
instruction, recorded in a line table.  When a body line raises, the
recovery path reads the region frame's locals out of the traceback
(registers), accounts the partially executed block per instruction and
leaves ``cpu.pc`` on the faulting instruction — byte-for-byte what
``_flush_partial`` does in the tiers below — then re-raises.

Regions never survive code mutation: the SDT runtime discards any region
holding an invalidated fragment (wired into
:class:`repro.sdt.coherence.CoherenceManager`) and drops everything on a
cache flush; the interpreter runtime discards regions overlapping any
watched-page write.  Promotion state is profile data, not architecture,
so ``engine="tier2"`` stays fingerprint-exempt like the other engines.

Tuning knobs (environment): ``REPRO_TIER2_THRESHOLD`` (promotions occur
once a block has executed this many times, default 64) and
``REPRO_TIER2_MAX_BLOCKS`` (region length cap, default 8).
"""

from __future__ import annotations

import os
import re
from typing import TYPE_CHECKING

from repro.host.costs import Category
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CONTROL_CLASSES, InstrClass, Op
from repro.isa.registers import REG_RA
from repro.machine.cpu import s32
from repro.machine.executor import _sdiv, _srem

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.machine.engine import Superblock
    from repro.machine.interpreter import Interpreter
    from repro.sdt.fragment import Fragment
    from repro.sdt.vm import SDTVM

U32 = 0xFFFFFFFF
_SBIT = 0x8000_0000

#: Block executions before a promotion attempt (``REPRO_TIER2_THRESHOLD``).
DEFAULT_PROMOTE_THRESHOLD = 64

#: Maximum blocks per region (``REPRO_TIER2_MAX_BLOCKS``).
DEFAULT_MAX_BLOCKS = 8


def promote_threshold() -> int:
    """Promotion threshold, overridable for tests/experiments."""
    return int(os.environ.get("REPRO_TIER2_THRESHOLD",
                              DEFAULT_PROMOTE_THRESHOLD))


def max_region_blocks() -> int:
    """Region size cap, overridable for tests/experiments."""
    return int(os.environ.get("REPRO_TIER2_MAX_BLOCKS", DEFAULT_MAX_BLOCKS))


# -- per-instruction source generation ---------------------------------------

def _read(reg: int) -> str:
    """Source expression reading a guest register (r0 folds to 0)."""
    return "0" if reg == 0 else f"r{reg}"


#: Source templates, built once at import.  ``instr_source`` runs for
#: every instruction of every promotion candidate, so it must not build
#: expression tables per call — it fills exactly one template.
_MEM_TPL = {
    Op.LW: "r{t} = _mlw({addr})",
    Op.LBU: "r{t} = _mlb({addr})",
    Op.LHU: "r{t} = _mlh({addr})",
    Op.LB: f"_t = _mlb({{addr}}); "
    f"r{{t}} = _t | {0xFFFFFF00} if _t & 0x80 else _t",
    Op.LH: f"_t = _mlh({{addr}}); "
    f"r{{t}} = _t | {0xFFFF0000} if _t & 0x8000 else _t",
}
_STORE_TPL = {
    Op.SW: "_msw({addr}, {b})",
    Op.SB: "_msb({addr}, {b})",
    Op.SH: "_msh({addr}, {b})",
}
_ALU_IMM_TPL = {
    Op.ADDI: f"r{{t}} = ({{a}} + {{imm}}) & {U32}",
    Op.ANDI: "r{t} = {a} & {imm}",
    Op.ORI: "r{t} = {a} | {imm}",
    Op.XORI: "r{t} = {a} ^ {imm}",
}
_ALU_R3_TPL = {
    Op.ADD: f"r{{d}} = ({{a}} + {{b}}) & {U32}",
    Op.SUB: f"r{{d}} = ({{a}} - {{b}}) & {U32}",
    Op.AND: "r{d} = {a} & {b}",
    Op.OR: "r{d} = {a} | {b}",
    Op.XOR: "r{d} = {a} ^ {b}",
    Op.NOR: f"r{{d}} = ~({{a}} | {{b}}) & {U32}",
    Op.SLT: f"r{{d}} = 1 if ({{a}} ^ {_SBIT}) < ({{b}} ^ {_SBIT}) else 0",
    Op.SLTU: "r{d} = 1 if {a} < {b} else 0",
    Op.MUL: f"r{{d}} = ({{a}} * {{b}}) & {U32}",
    Op.DIV: f"r{{d}} = _sdiv(_sx({{a}}), _sx({{b}})) & {U32}",
    Op.REM: f"r{{d}} = _srem(_sx({{a}}), _sx({{b}})) & {U32}",
    Op.SLLV: f"r{{d}} = ({{a}} << ({{b}} & 31)) & {U32}",
    Op.SRLV: "r{d} = {a} >> ({b} & 31)",
    Op.SRAV: f"r{{d}} = (_sx({{a}}) >> ({{b}} & 31)) & {U32}",
}
_SHIFT_TPL = {
    Op.SLL: f"r{{d}} = ({{b}} << {{sh}}) & {U32}",
    Op.SRL: "r{d} = {b} >> {sh}",
    Op.SRA: f"r{{d}} = (_sx({{b}}) >> {{sh}}) & {U32}",
}


def instr_source(
    pc: int, instr: Instruction
) -> tuple[str, set[int], int] | None:
    """One source line for a non-terminator instruction, the non-zero
    registers it touches, and the register it writes (0 for stores) — or
    ``None`` when the shape is not specialisable (writes to r0,
    syscalls) and the block must stay on the tiers below.

    Every line matches :func:`repro.machine.engine.compile_instr` (and
    therefore the oracle executor) bit for bit; fault side effects occur
    at the same point in the same order.  Template groups are probed in
    rough frequency order (memory + ALU-imm dominate block bodies).
    """
    op = instr.op
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    imm = instr.imm

    tpl = _MEM_TPL.get(op)
    if tpl is not None:
        if not rt:
            return None
        addr = f"({_read(rs)} + {imm}) & {U32}"
        return tpl.format(t=rt, addr=addr), {rs, rt} - {0}, rt
    tpl = _STORE_TPL.get(op)
    if tpl is not None:
        addr = f"({_read(rs)} + {imm}) & {U32}"
        return tpl.format(addr=addr, b=_read(rt)), {rs, rt} - {0}, 0
    tpl = _ALU_IMM_TPL.get(op)
    if tpl is not None:
        if not rt:
            return None
        return tpl.format(t=rt, a=_read(rs), imm=imm), {rs, rt} - {0}, rt
    tpl = _ALU_R3_TPL.get(op)
    if tpl is not None:
        if not rd:
            return None
        return (tpl.format(d=rd, a=_read(rs), b=_read(rt)),
                {rs, rt, rd} - {0}, rd)
    tpl = _SHIFT_TPL.get(op)
    if tpl is not None:
        if not rd:
            return None
        return (tpl.format(d=rd, b=_read(rt), sh=instr.shamt),
                {rt, rd} - {0}, rd)

    if op is Op.SLTI:
        if not rt:
            return None
        return (f"r{rt} = 1 if ({_read(rs)} ^ {_SBIT}) < "
                f"{(imm & U32) ^ _SBIT} else 0", {rs, rt} - {0}, rt)
    if op is Op.SLTIU:
        if not rt:
            return None
        return (f"r{rt} = 1 if {_read(rs)} < {imm & U32} else 0",
                {rs, rt} - {0}, rt)
    if op is Op.LUI:
        if not rt:
            return None
        return f"r{rt} = {(imm << 16) & U32}", {rt}, rt

    if op is Op.J:
        # mid-body direct jump (trace_jumps inlining): the successor
        # instructions follow in the same block, so the jump itself is
        # architecturally a no-op here — it still retires and counts.
        return "pass", set(), 0

    return None  # control terminators, SYSCALL, HALT: not a body shape


_BRANCH_CONDS = {
    Op.BEQ: "{a} == {b}",
    Op.BNE: "{a} != {b}",
    Op.BLT: "({a} ^ %d) < ({b} ^ %d)" % (_SBIT, _SBIT),
    Op.BGE: "({a} ^ %d) >= ({b} ^ %d)" % (_SBIT, _SBIT),
    Op.BLTU: "{a} < {b}",
    Op.BGEU: "{a} >= {b}",
}


def term_source(
    pc: int, instr: Instruction
) -> tuple[str, str, set[int], int] | None:
    """Source for a control terminator:
    (line, next-pc expression, regs, written register).

    The line executes the instruction's register effects and, where the
    successor is dynamic, assigns ``_npc``; the returned expression is
    the next guest PC *after* the line ran.  ``None`` marks terminators
    that end tier-2 eligibility (``SYSCALL``/``HALT``).
    """
    op = instr.op
    npc = (pc + 4) & U32
    cond = _BRANCH_CONDS.get(op)
    if cond is not None:
        tgt = instr.branch_target(pc)
        test = cond.format(a=_read(instr.rs), b=_read(instr.rt))
        line = f"_npc = {tgt} if {test} else {npc}"
        return line, "_npc", {instr.rs, instr.rt} - {0}, 0
    if op is Op.J:
        return "pass", str(instr.branch_target(pc)), set(), 0
    if op is Op.JAL:
        return (f"r{REG_RA} = {npc}", str(instr.branch_target(pc)),
                {REG_RA}, REG_RA)
    if op is Op.JR:
        return (f"_npc = {_read(instr.rs)}", "_npc",
                {instr.rs} - {0}, 0)
    if op is Op.JALR:
        regs = {instr.rs} - {0}
        if not instr.rd:
            return f"_npc = {_read(instr.rs)}", "_npc", regs, 0
        # target is read before the link write (rd == rs case)
        return (f"_npc = {_read(instr.rs)}; r{instr.rd} = {npc}",
                "_npc", regs | {instr.rd}, instr.rd)
    if op is Op.RET:
        return f"_npc = r{REG_RA}", "_npc", {REG_RA}, 0
    return None  # SYSCALL / HALT


def _join(*parts: str) -> str:
    """Join non-empty statements with ``;`` (for single-line suites)."""
    return "; ".join(part for part in parts if part)


class _SourceBuilder:
    """Accumulates numbered source lines plus the body line table."""

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []
        self.line_table: dict[int, tuple[int, int]] = {}

    def add(self, indent: int, text: str,
            member: int | None = None, k: int | None = None) -> None:
        self.lines.append(" " * indent + text)
        if member is not None:
            self.line_table[len(self.lines)] = (member, k)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


#: Hot callables bound as default arguments (body-line speed); everything
#: colder resolves through the generated function's globals.
_HOT_DEFAULTS = ("_mlw", "_mlh", "_mlb", "_msw", "_msh", "_msb",
                 "_sx", "_sdiv", "_srem")


def _def_line(extra: str = "") -> str:
    binds = ", ".join(f"{name}={name}" for name in _HOT_DEFAULTS)
    return f"def _region(rem, {binds}{extra}):"


_HOT_SET = frozenset(_HOT_DEFAULTS)

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _extra_binds(ns: dict, body: str) -> str:
    """Default-arg bindings for the namespace names the body actually
    references, so the generated code reads them as locals
    (``LOAD_FAST``) rather than dict-backed globals — measurable on loop
    regions, where the guards re-read fragment/block identities every
    iteration.  Unreferenced names are left out: every default arg costs
    compile time and the namespace routinely holds more (all
    ``InstrClass`` members, chaos-only plans) than a region uses."""
    tokens = set(_TOKEN_RE.findall(body))
    return "".join(
        f", {name}={name}" for name in ns
        if name not in _HOT_SET and name in tokens
    )


#: Compiled region code, keyed by (filename, source).  Regions are
#: re-promoted after flush storms and re-created for every VM of the same
#: program (differential tests, chaos sweeps, the serve loop), and the
#: source fully determines the code object — all per-VM identities bind
#: at ``exec`` time through the namespace, never into the code.
_CODE_CACHE: dict[tuple[str, str], object] = {}
_CODE_CACHE_MAX = 1024


def _compile_cached(source: str, filename: str):
    key = (filename, source)
    code = _CODE_CACHE.get(key)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        code = _CODE_CACHE[key] = compile(source, filename, "exec")
    return code


def _base_namespace(mem) -> dict:
    return {
        "_mlw": mem.load_word, "_mlh": mem.load_half, "_mlb": mem.load_byte,
        "_msw": mem.store_word, "_msh": mem.store_half,
        "_msb": mem.store_byte,
        "_sx": s32, "_sdiv": _sdiv, "_srem": _srem,
    }


def _spill(used: list[int]) -> str:
    return "; ".join(f"_regs[{reg}] = r{reg}" for reg in used)


def _loads(used: list[int]) -> str:
    if not used:
        return "pass"
    return "; ".join(f"r{reg} = _regs[{reg}]" for reg in used)


def _class_commit(class_counts) -> str:
    return "; ".join(
        f"_cnt[_ic_{iclass.name}] += {count}"
        for iclass, count in class_counts.items()
    )


def _recover_frame(region, exc):
    """Locate the region frame in a traceback and map its faulting line.

    Returns ``(member_index, k, frame_locals)`` for a fault raised on a
    body line, or ``None`` when the exception came from an exit call
    after the state was already spilled and committed.
    """
    tb = exc.__traceback__
    hit = None
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == region.filename:
            hit = tb
        tb = tb.tb_next
    if hit is None:
        return None
    entry = region.line_table.get(hit.tb_lineno)
    if entry is None:
        return None
    member_idx, k = entry
    return member_idx, k, hit.tb_frame.f_locals


# -- SDT regions --------------------------------------------------------------

def _boundary_deopt(vm: "SDTVM", frag, key: str, nxt, nxt_n: int):
    """Cold path behind a region-internal edge guard.

    The generated guard folds the link, fuel and (chaos) plan checks
    into one conditional; this closure re-discriminates the reason off
    the hot path, keeps the deopt counters and trace events exact, and
    hands control back to the tier-1 loop the same way the separate
    guards did: a broken link re-dispatches through
    ``_direct_successor``, a fuel or plan deopt returns the next
    fragment for the main loop to run with per-instruction semantics.
    ``nxt_n`` is the successor's block length *at region-compile time*,
    matching the constant folded into the guard.
    """
    t2 = vm.stats.tier2
    trace = vm.trace
    ds = vm._direct_successor
    pc = nxt.guest_pc

    def _db(npc: int, rem: int):
        if frag.links.get(key) is not nxt or not nxt.valid:
            reason = "link"
        elif rem < nxt_n:
            reason = "fuel"
        else:
            reason = "plan"
        t2[f"deopt.{reason}"] += 1
        if trace is not None:
            trace.emit("tier2.deopt", pc=pc, reason=reason)
        if reason == "link":
            return ds(frag, key, npc)
        return nxt

    return _db


class SDTRegion:
    """A compiled SDT region: the function plus recovery metadata."""

    __slots__ = ("fn", "members", "filename", "line_table", "used_regs",
                 "member_meta", "source")

    def __init__(self, fn, members, filename, line_table, used_regs,
                 member_meta, source):
        self.fn = fn
        self.members = members
        self.filename = filename
        self.line_table = line_table
        self.used_regs = used_regs
        #: per-member ``(pcs, iclasses)`` snapshots for fault replay —
        #: snapshots, not live plans, because a store inside the region
        #: may invalidate a member (clearing its plan) before a later
        #: instruction faults
        self.member_meta = member_meta
        self.source = source


class Tier2Runtime:
    """Per-VM tier-2 state: promotion, execution, discard hooks."""

    def __init__(self, vm: "SDTVM"):
        self.vm = vm
        self.threshold = promote_threshold()
        self.max_blocks = max_region_blocks()
        #: id(head fragment) -> region
        self._regions: dict[int, SDTRegion] = {}
        #: id(member fragment) -> regions containing it
        self._by_member: dict[int, list[SDTRegion]] = {}
        vm.cache.on_flush(self.on_flush)

    # -- promotion -----------------------------------------------------------

    def _probe(self, fragment: "Fragment"):
        """Eligibility check and body codegen in a single walk.

        Returns ``(lines, npc_expr, used_regs, written_regs)`` — the
        per-instruction source lines (with their in-block index ``k``),
        the expression for the next guest PC after the terminator, the
        non-zero registers the body touches and the subset it writes —
        or ``None`` when the fragment must stay on the threaded tier.
        """
        from repro.sdt.fragment import ExitKind

        plan = fragment.plan
        if (not fragment.valid or fragment.demoted or plan is None
                or plan.has_syscall or not fragment.instrs
                or fragment.exit_kind is ExitKind.HALT):
            return None
        if self.vm._chaos and not plan.coherent_with(
            fragment.guest_pc, fragment.instrs
        ):
            return None
        lines: list[tuple[str, int]] = []
        used: set[int] = set()
        written: set[int] = set()
        last = len(fragment.instrs) - 1
        npc_expr = str((fragment.instrs[last][0] + 4) & U32)
        for k, (pc, instr) in enumerate(fragment.instrs):
            if k == last and instr.iclass in CONTROL_CLASSES:
                gen = term_source(pc, instr)
                if gen is None:
                    return None
                line, npc_expr, regs, wr = gen
            else:
                gen = instr_source(pc, instr)
                if gen is None:
                    return None
                line, regs, wr = gen
            used |= regs
            if wr:
                written.add(wr)
            lines.append((line, k))
        return lines, npc_expr, used, written

    def _hot_key(self, fragment: "Fragment") -> str | None:
        """The direct-exit key to grow the region along (None = stop)."""
        from repro.sdt.fragment import ExitKind

        kind = fragment.exit_kind
        if kind in (ExitKind.JUMP, ExitKind.FALL, ExitKind.CALL):
            return "J"
        if kind is ExitKind.COND:
            taken = fragment.links.get("T")
            fall = fragment.links.get("F")
            taken_ok = taken is not None and taken.valid
            fall_ok = fall is not None and fall.valid
            if taken_ok and fall_ok:
                return "T" if taken.executions >= fall.executions else "F"
            if taken_ok:
                return "T"
            if fall_ok:
                return "F"
        return None  # IB exits (fused in-region) and HALT end the region

    def try_promote(self, fragment: "Fragment") -> SDTRegion | None:
        """Grow and compile a region headed by ``fragment``.

        On success the region is installed on ``fragment.region``; on
        ineligibility the sentinel ``False`` is stored so the fragment
        is never probed again (a fresh fragment after retranslation
        starts clean).
        """
        body = self._probe(fragment)
        if body is None:
            fragment.region = False
            return None
        members = [fragment]
        bodies = [body]
        keys: list[str] = []
        seen = {id(fragment)}
        loop = False
        current = fragment
        while len(members) < self.max_blocks:
            key = self._hot_key(current)
            if key is None:
                break
            nxt = current.links.get(key)
            if nxt is None or not nxt.valid:
                break
            if nxt is fragment:
                keys.append(key)
                loop = True
                break
            if id(nxt) in seen:
                break
            nxt_body = self._probe(nxt)
            if nxt_body is None:
                break
            keys.append(key)
            members.append(nxt)
            bodies.append(nxt_body)
            seen.add(id(nxt))
            current = nxt
        try:
            region = self._compile(members, keys, loop, bodies)
        except Exception:
            # a compile failure must never take the run down — the
            # threaded tier is always correct; surface it in stats so
            # the tier-2 test suite can assert it never happens
            self.vm.stats.tier2["compile_error"] += 1
            fragment.region = False
            return None
        fragment.region = region
        self._regions[id(fragment)] = region
        for member in members:
            self._by_member.setdefault(id(member), []).append(region)
        self.vm.stats.tier2["promote"] += 1
        if self.vm.trace is not None:
            self.vm.trace.emit("tier2.promote", pc=fragment.guest_pc,
                               blocks=len(members), loop=loop)
        return region

    # -- code generation -----------------------------------------------------

    def _compile(self, members, keys, loop: bool, bodies) -> SDTRegion:
        """Emit and compile the region source.

        ``bodies`` carries the per-member ``(lines, npc_expr, used,
        written)`` tuples the promotion probe already generated — codegen
        never re-walks the instructions.

        Code-size discipline keeps ``compile()`` cheap (it dominates the
        cost of a promotion): exits spill only registers the region
        *writes* (anything else still equals its entry value in
        ``_regs``), each internal boundary folds its link/fuel(/plan)
        guards into one conditional whose cold path is a prebuilt
        closure, and the def line binds only names the body references.
        """
        from repro.sdt.fragment import ExitKind

        vm = self.vm
        chaos = vm._chaos
        used: set[int] = set()
        written: set[int] = set()
        for _lines, _npc, regs, wregs in bodies:
            used |= regs
            written |= wregs

        order = sorted(used)
        spill = _spill(sorted(written))
        filename = f"<tier2 {members[0].guest_pc:#x}>"

        ns = _base_namespace(vm.mem)
        ns.update(
            _regs=vm.cpu.regs, _vm=vm, _cnt=vm.iclass_counts,
            _cyc=vm.model.cycles, _APP=Category.APP,
            _cb=vm.model.cond_branch,
            _ds=vm._direct_successor, _oc=vm.return_mech.on_call,
            _cpu=vm.cpu, _dib=vm._dispatch_ib,
            _gd=vm.generic_ib.dispatch, _rd=vm.return_mech.dispatch_ret,
            _ibs=vm.stats.ib_dispatches,
        )
        for iclass in InstrClass:
            ns[f"_ic_{iclass.name}"] = iclass
        for i, fragment in enumerate(members):
            ns[f"_f{i}"] = fragment
            if chaos:
                ns[f"_p{i}"] = fragment.plan

        sb = _SourceBuilder(filename)
        sb.add(0, "")  # def line patched in once the body names are known
        indent = 4
        sb.add(indent, _loads(order))
        if loop:
            sb.add(indent, "while True:")
            indent = 8

        count = len(members)
        for i, fragment in enumerate(members):
            plan = fragment.plan
            lines, npc_expr, _regs, _wregs = bodies[i]
            for text, k in lines:
                sb.add(indent, text, member=i, k=k)
            sb.add(indent, f"_vm.retired += {plan.n}; rem -= {plan.n}")
            sb.add(indent, _class_commit(plan.class_counts))
            sb.add(indent, f"_cyc[_APP] += {plan.app_cycles}")

            kind = fragment.exit_kind
            term_pc = plan.term_pc
            fall = (term_pc + 4) & U32
            is_last = i == count - 1
            if is_last and not loop:
                # region exit: spill everything, run the tier-1 exit
                # protocol and hand its successor to the main loop
                if kind is ExitKind.COND:
                    sb.add(indent, f"_cb({fragment.exit_site}, _npc != {fall})")
                    sb.add(indent, _join(
                        f"if _npc != {fall}: {spill}" if spill
                        else f"if _npc != {fall}: pass",
                        f'return _ds(_f{i}, "T", _npc)'))
                    sb.add(indent, _join(
                        spill, f'return _ds(_f{i}, "F", {fall})'))
                elif kind is ExitKind.CALL:
                    sb.add(indent, _join(
                        spill, f"_oc(_cpu, {REG_RA}, {fall})",
                        f'return _ds(_f{i}, "J", {npc_expr})'))
                elif kind is ExitKind.ICALL:
                    sb.add(indent, _join(
                        spill, '_ibs["icall"] += 1',
                        f"_oc(_cpu, {plan.term_rd}, {fall})",
                        f'return _dib("icall", _f{i}, {term_pc}, _npc, _gd)'))
                elif kind is ExitKind.IJUMP:
                    sb.add(indent, _join(
                        spill, '_ibs["ijump"] += 1',
                        f'return _dib("ijump", _f{i}, {term_pc}, _npc, _gd)'))
                elif kind is ExitKind.RET:
                    sb.add(indent, _join(
                        spill, '_ibs["ret"] += 1',
                        f'return _dib("ret", _f{i}, {term_pc}, _npc, _rd)'))
                else:  # JUMP / FALL
                    sb.add(indent, _join(
                        spill, f'return _ds(_f{i}, "J", {npc_expr})'))
                continue

            # region-internal boundary (or loop backedge): guards, then
            # fall through into the next member's body / the loop top
            j = 0 if is_last else i + 1
            key = keys[i]
            nxt = members[j]
            nplan = nxt.plan
            if kind is ExitKind.COND:
                sb.add(indent, f"_cb({fragment.exit_site}, _npc != {fall})")
                if key == "T":
                    sb.add(indent, _join(
                        f"if _npc == {fall}: {spill}" if spill
                        else f"if _npc == {fall}: pass",
                        f'return _ds(_f{i}, "F", {fall})'))
                else:
                    sb.add(indent, _join(
                        f"if _npc != {fall}: {spill}" if spill
                        else f"if _npc != {fall}: pass",
                        f'return _ds(_f{i}, "T", _npc)'))
            elif kind is ExitKind.CALL:
                # tier-1 calls on_call after the body; the return scheme
                # may rewrite the link register (fast returns), so spill
                # it, let the scheme run, and reload the rewritten value
                sb.add(indent, _join(
                    f"_regs[{REG_RA}] = r{REG_RA}",
                    f"_oc(_cpu, {REG_RA}, {fall})",
                    f"r{REG_RA} = _regs[{REG_RA}]"))
            ns[f"_db{i}"] = _boundary_deopt(vm, fragment, key, nxt, nplan.n)
            cond = (f'_f{i}.links.get("{key}") is not _f{j} '
                    f"or not _f{j}.valid or rem < {nplan.n}")
            if chaos:
                cond += (f" or _f{j}.plan is not _p{j} or not "
                         f"_p{j}.coherent_with({nxt.guest_pc}, _f{j}.instrs)")
            sb.add(indent, _join(
                f"if {cond}: {spill}" if spill else f"if {cond}: pass",
                f"return _db{i}({npc_expr}, rem)"))

        sb.lines[0] = _def_line(_extra_binds(ns, "\n".join(sb.lines[1:])))
        source = sb.source()
        exec(_compile_cached(source, filename), ns)
        member_meta = tuple(
            (m.plan.pcs, m.plan.iclasses) for m in members
        )
        return SDTRegion(ns["_region"], list(members), filename,
                         sb.line_table, order, member_meta, source)

    # -- execution -----------------------------------------------------------

    def execute(self, fragment: "Fragment", region: SDTRegion,
                budget: int) -> "Fragment | None":
        """Run a region; returns the successor fragment (or None on exit).

        The caller (``SDTVM.execute_fragment``) has already verified the
        head block fits the remaining fuel and — under chaos — that its
        plan is coherent, the same gate the threaded fast path uses.
        """
        trace = self.vm.trace
        if trace is None:
            try:
                return region.fn(budget)
            except BaseException as exc:
                self._recover(region, exc)
                raise
        trace.emit("tier2.enter", pc=fragment.guest_pc)
        try:
            return region.fn(budget)
        except BaseException as exc:
            self._recover(region, exc)
            raise
        finally:
            trace.emit("tier2.exit", pc=fragment.guest_pc)

    def _recover(self, region: SDTRegion, exc: BaseException) -> None:
        """Replay a faulted partial block exactly like ``_flush_partial``."""
        hit = _recover_frame(region, exc)
        if hit is None:
            return  # raised by an exit call, after spill + commit
        member_idx, k, frame_locals = hit
        vm = self.vm
        regs = vm.cpu.regs
        for reg in region.used_regs:
            value = frame_locals.get(f"r{reg}")
            if value is not None:
                regs[reg] = value
        pcs, iclasses = region.member_meta[member_idx]
        counts = vm.iclass_counts
        model = vm.model
        for iclass in iclasses[:k]:
            counts[iclass] += 1
            model.charge_instr(iclass)
        vm.retired += k
        vm.cpu.pc = pcs[min(k, len(pcs) - 1)]

    # -- discard hooks -------------------------------------------------------

    def _discard(self, region: SDTRegion, reason: str) -> None:
        head = region.members[0]
        if head.region is region:
            head.region = None
        self._regions.pop(id(head), None)
        for member in region.members:
            bucket = self._by_member.get(id(member))
            if bucket is not None:
                try:
                    bucket.remove(region)
                except ValueError:
                    pass
                if not bucket:
                    del self._by_member[id(member)]
        self.vm.stats.tier2[f"discard.{reason}"] += 1
        if self.vm.trace is not None:
            self.vm.trace.emit("tier2.discard", pc=head.guest_pc,
                               reason=reason)

    def on_invalidate(self, dead) -> None:
        """Selective invalidation: drop every region holding a dead
        member (called by the coherence manager before its checker walk,
        so a surviving stale region would be a CI violation)."""
        if not self._by_member:
            return
        doomed: dict[int, SDTRegion] = {}
        for fragment in dead:
            for region in self._by_member.get(id(fragment), ()):
                doomed[id(region)] = region
        for region in doomed.values():
            self._discard(region, "invalidate")

    def on_flush(self) -> None:
        """Whole-cache flush: every member fragment just died."""
        if not self._regions:
            return
        count = len(self._regions)
        for region in self._regions.values():
            head = region.members[0]
            if head.region is region:
                head.region = None
        self._regions.clear()
        self._by_member.clear()
        self.vm.stats.tier2["discard.flush"] += count
        if self.vm.trace is not None:
            self.vm.trace.emit("tier2.discard", reason="flush", count=count)

    def live_fragment_refs(self):
        """Every fragment pointer tier-2 state holds (invariant walks)."""
        for region in self._regions.values():
            yield from region.members


# -- interpreter regions ------------------------------------------------------

class InterpRegion:
    """A compiled interpreter region (native-baseline tier 2)."""

    __slots__ = ("fn", "members", "filename", "line_table", "used_regs",
                 "member_meta", "source")

    def __init__(self, fn, members, filename, line_table, used_regs,
                 member_meta, source):
        self.fn = fn
        self.members = members
        self.filename = filename
        self.line_table = line_table
        self.used_regs = used_regs
        self.member_meta = member_meta
        self.source = source


class InterpreterTier2:
    """Tier-2 runtime for the reference interpreter.

    Regions are grown over cached superblocks along *static* direct
    successors (jumps, calls, fallthroughs; conditional branches prefer
    the edge returning to the region head, capturing loop backedges).
    Block-identity guards (``blocks.get(entry) is member``) make regions
    self-invalidating under self-modifying code: a store into watched
    code drops the member from the block cache, and
    :meth:`on_code_write` additionally discards the overlapping regions
    so the rebuilt blocks can re-promote.
    """

    def __init__(self, interp: "Interpreter"):
        self.interp = interp
        self.threshold = promote_threshold()
        self.max_blocks = max_region_blocks()
        self._regions: list[InterpRegion] = []

    # -- promotion -----------------------------------------------------------

    def _pairs(self, block: "Superblock"):
        """Re-fetch the block's instructions (superblocks keep closures,
        not the decoded :class:`Instruction` objects)."""
        fetch = self.interp.fetch
        pairs = []
        for k, pc in enumerate(block.pcs):
            instr = fetch(pc)
            if instr.iclass is not block.iclasses[k]:
                return None  # decode drifted under the block (defensive)
            pairs.append((pc, instr))
        return pairs

    def _probe(self, block: "Superblock"):
        """Eligibility check and body codegen in a single walk.

        Returns ``(lines, npc_expr, used_regs, written_regs,
        term_instr)`` or ``None`` when the block must stay on the
        threaded tier.
        """
        if block.has_syscall or block.term_iclass is InstrClass.HALT:
            return None
        try:
            pairs = self._pairs(block)
        except Exception:
            return None
        if pairs is None:
            return None
        lines: list[tuple[str, int]] = []
        used: set[int] = set()
        written: set[int] = set()
        last = block.n - 1
        npc_expr = str((block.term_pc + 4) & U32)
        for k, (pc, instr) in enumerate(pairs):
            if k == last and instr.iclass in CONTROL_CLASSES:
                gen = term_source(pc, instr)
                if gen is None:
                    return None
                line, npc_expr, regs, wr = gen
            else:
                gen = instr_source(pc, instr)
                if gen is None:
                    return None
                line, regs, wr = gen
            used |= regs
            if wr:
                written.add(wr)
            lines.append((line, k))
        return lines, npc_expr, used, written, pairs[-1][1]

    def _successor_pc(self, block: "Superblock", term: Instruction,
                      head_pc: int) -> int | None:
        """Static follow-edge out of ``block`` (None ends the region)."""
        iclass = block.term_iclass
        pc = block.term_pc
        if iclass in (InstrClass.JUMP, InstrClass.CALL):
            return term.branch_target(pc)
        if iclass not in CONTROL_CLASSES:
            return (pc + 4) & U32  # length-capped / truncated block
        if iclass is InstrClass.BRANCH:
            taken = term.branch_target(pc)
            fall = (pc + 4) & U32
            if taken == head_pc:
                return taken
            return fall
        return None  # IJUMP / ICALL / RET fuse the exit and end the region

    def try_promote(self, block: "Superblock") -> InterpRegion | None:
        body = self._probe(block)
        if body is None:
            block.region = False
            return None
        blocks = self.interp._blocks
        members = [block]
        bodies = [body]
        seen = {block.entry_pc}
        loop = False
        current, term = block, body[4]
        while len(members) < self.max_blocks:
            nxt_pc = self._successor_pc(current, term, block.entry_pc)
            if nxt_pc is None:
                break
            if nxt_pc == block.entry_pc:
                loop = True
                break
            nxt = blocks.get(nxt_pc)
            if nxt is None or nxt_pc in seen:
                break
            nxt_body = self._probe(nxt)
            if nxt_body is None:
                break
            members.append(nxt)
            bodies.append(nxt_body)
            seen.add(nxt_pc)
            current, term = nxt, nxt_body[4]
        try:
            region = self._compile(members, loop, bodies)
        except Exception:
            block.region = False
            return None
        block.region = region
        self._regions.append(region)
        return region

    def _compile(self, members, loop: bool, bodies) -> InterpRegion:
        """Emit and compile the region source from the probe output."""
        interp = self.interp
        observer = interp.observer
        model = observer.model if observer is not None else None
        count_classes = interp.count_classes

        used: set[int] = set()
        written: set[int] = set()
        for _lines, _npc, regs, wregs, _term in bodies:
            used |= regs
            written |= wregs

        order = sorted(used)
        spill = _spill(sorted(written))
        filename = f"<tier2i {members[0].entry_pc:#x}>"

        ns = _base_namespace(interp.mem)
        ns.update(
            _regs=interp.cpu.regs, _cpu=interp.cpu, _it=interp,
            _blocks=interp._blocks, _cnt=interp.iclass_counts,
        )
        if model is not None:
            ns.update(_cyc=model.cycles, _APP=Category.APP,
                      _cbr=model.cond_branch,
                      _hc=model.host_call, _ij=model.indirect_jump,
                      _hr=model.host_return)
        for iclass in InstrClass:
            ns[f"_ic_{iclass.name}"] = iclass
        nmembers = len(members)
        for i in range(nmembers):
            if i == nmembers - 1 and not loop:
                continue
            nxt_block = members[0] if i == nmembers - 1 else members[i + 1]
            ns[f"_b{i}"] = nxt_block
            nxt_block.hits += 1  # formation itself is evidence of heat

        sb = _SourceBuilder(filename)
        sb.add(0, "")  # def line patched in once the body names are known
        indent = 4
        sb.add(indent, _loads(order))
        if loop:
            sb.add(indent, "while True:")
            indent = 8

        count = len(members)
        for i, block in enumerate(members):
            lines, npc_expr, _regs, _wregs, _term = bodies[i]
            for text, k in lines:
                sb.add(indent, text, member=i, k=k)
            sb.add(indent, f"_it.retired += {block.n}; rem -= {block.n}")
            if count_classes:
                sb.add(indent, _class_commit(block.class_counts))
            if model is not None:
                sb.add(indent, f"_cyc[_APP] += {block.app_cycles}")

            iclass = block.term_iclass
            term_pc = block.term_pc
            fall = (term_pc + 4) & U32
            if model is not None and iclass in CONTROL_CLASSES:
                # native_exit_event, inlined case by case
                if iclass is InstrClass.BRANCH:
                    sb.add(indent, f"_cbr({term_pc}, _npc != {fall})")
                elif iclass is InstrClass.CALL:
                    sb.add(indent, f"_hc({fall})")
                elif iclass is InstrClass.ICALL:
                    sb.add(indent, f"_hc({fall}); _ij({term_pc}, _npc)")
                elif iclass is InstrClass.IJUMP:
                    sb.add(indent, f"_ij({term_pc}, _npc)")
                elif iclass is InstrClass.RET:
                    sb.add(indent, f"_hr(_npc)")

            is_last = i == count - 1
            if is_last and not loop:
                sb.add(indent, _join(
                    spill, f"_cpu.pc = {npc_expr}", "return rem"))
                continue

            # boundary into the next member (or the loop backedge): the
            # next block may be off the follow-edge (conditional branch
            # went the other way), dropped by a code write, or too big
            # for the remaining fuel — all exit to the tier-1 loop
            nxt_block = members[0] if is_last else members[i + 1]
            target = nxt_block.entry_pc
            if iclass is InstrClass.BRANCH:
                sb.add(indent, _join(
                    f"if _npc != {target}: {spill}" if spill
                    else f"if _npc != {target}: pass",
                    "_cpu.pc = _npc", "return rem"))
            sb.add(indent, _join(
                f"if _blocks.get({target}) is not _b{i} or rem < "
                f"{nxt_block.n}: {spill}" if spill else
                f"if _blocks.get({target}) is not _b{i} or rem < "
                f"{nxt_block.n}: pass",
                f"_cpu.pc = {target}", "return rem"))

        sb.lines[0] = _def_line(_extra_binds(ns, "\n".join(sb.lines[1:])))
        source = sb.source()
        exec(_compile_cached(source, filename), ns)
        member_meta = tuple(
            (block.pcs, block.iclasses) for block in members
        )
        return InterpRegion(ns["_region"], list(members), filename,
                            sb.line_table, order, member_meta, source)

    # -- execution -----------------------------------------------------------

    def execute(self, region: InterpRegion, remaining: int) -> int:
        try:
            return region.fn(remaining)
        except BaseException as exc:
            self._recover(region, exc)
            raise

    def _recover(self, region: InterpRegion, exc: BaseException) -> None:
        hit = _recover_frame(region, exc)
        if hit is None:
            return
        member_idx, k, frame_locals = hit
        interp = self.interp
        regs = interp.cpu.regs
        for reg in region.used_regs:
            value = frame_locals.get(f"r{reg}")
            if value is not None:
                regs[reg] = value
        pcs, iclasses = region.member_meta[member_idx]
        interp.retired += k
        if interp.count_classes:
            counts = interp.iclass_counts
            for iclass in iclasses[:k]:
                counts[iclass] += 1
        observer = interp.observer
        if observer is not None:
            model = observer.model
            for iclass in iclasses[:k]:
                model.charge_instr(iclass)
        interp.cpu.pc = pcs[min(k, len(pcs) - 1)]

    # -- discard -------------------------------------------------------------

    def on_code_write(self, addr: int, length: int) -> None:
        """Discard every region whose member bytes overlap the write."""
        if not self._regions:
            return
        end = addr + length
        survivors = []
        for region in self._regions:
            stale = any(
                pcs[0] < end and pcs[0] + 4 * len(pcs) > addr
                for pcs, _ic in region.member_meta
            )
            if stale:
                head = region.members[0]
                if head.region is region:
                    head.region = None
            else:
                survivors.append(region)
        self._regions = survivors
