"""Guest CPU architectural state."""

from __future__ import annotations

from repro.isa.registers import NUM_REGS, REG_SP

U32 = 0xFFFFFFFF


def u32(value: int) -> int:
    """Wrap a Python int to an unsigned 32-bit value."""
    return value & U32


def s32(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    value &= U32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class CPUState:
    """Register file and program counter.

    ``regs[0]`` is architecturally zero; :meth:`write` discards writes to it.
    Register values are stored as unsigned 32-bit ints.
    """

    __slots__ = ("regs", "pc")

    def __init__(self, pc: int = 0, sp: int = 0):
        self.regs: list[int] = [0] * NUM_REGS
        self.regs[REG_SP] = u32(sp)
        self.pc = u32(pc)

    def read(self, reg: int) -> int:
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != 0:
            self.regs[reg] = value & U32

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of (pc, regs) for divergence checking."""
        return (self.pc, *self.regs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CPUState(pc={self.pc:#010x})"
