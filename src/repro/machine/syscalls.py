"""Guest syscall layer.

The service number is passed in ``v0``, arguments in ``a0``/``a1``, results
in ``v0`` — a deliberately SPIM-like convention so guest programs stay
readable.

=========  ==========================================================
service    behaviour
=========  ==========================================================
1          print signed integer in ``a0``
4          print NUL-terminated string at address ``a0``
5          read one integer from the input queue into ``v0``
9          ``sbrk``: grow the heap by ``a0`` bytes, old break in ``v0``
10         exit with code ``a0``
11         print character ``a0 & 0xff``
=========  ==========================================================
"""

from __future__ import annotations

from repro.isa.registers import REG_A0, REG_V0
from repro.machine.cpu import CPUState, s32
from repro.machine.errors import InvalidSyscall
from repro.machine.memory import Memory

SYS_PRINT_INT = 1
SYS_PRINT_STR = 4
SYS_READ_INT = 5
SYS_SBRK = 9
SYS_EXIT = 10
SYS_PRINT_CHAR = 11


class SyscallHandler:
    """Implements guest syscalls against an output buffer and input queue."""

    def __init__(self, heap_base: int = 0, inputs: list[int] | None = None):
        self._output: list[str] = []
        self._inputs: list[int] = list(inputs or [])
        self._input_pos = 0
        self._brk = heap_base
        self.exit_code: int | None = None

    @property
    def exited(self) -> bool:
        return self.exit_code is not None

    @property
    def output(self) -> str:
        return "".join(self._output)

    @property
    def brk(self) -> int:
        return self._brk

    def dispatch(self, cpu: CPUState, mem: Memory) -> None:
        """Execute the syscall selected by ``v0``."""
        service = cpu.read(REG_V0)
        arg = cpu.read(REG_A0)
        if service == SYS_PRINT_INT:
            self._output.append(str(s32(arg)))
        elif service == SYS_PRINT_STR:
            self._output.append(mem.read_cstring(arg))
        elif service == SYS_PRINT_CHAR:
            self._output.append(chr(arg & 0xFF))
        elif service == SYS_READ_INT:
            if self._input_pos < len(self._inputs):
                value = self._inputs[self._input_pos]
                self._input_pos += 1
            else:
                value = 0
            cpu.write(REG_V0, value)
        elif service == SYS_SBRK:
            old = self._brk
            self._brk = (self._brk + s32(arg) + 15) & ~15 & 0xFFFFFFFF
            cpu.write(REG_V0, old)
        elif service == SYS_EXIT:
            self.exit_code = s32(arg)
        else:
            raise InvalidSyscall(service)
