"""Threaded-code execution engine: closure-specialised dispatch.

The reference executor (:func:`repro.machine.executor.execute`) pays a
~40-way opcode dispatch, per-field attribute loads and a ``cpu.write``
call for every retired guest instruction.  This module removes that cost
by *specialising* each decoded :class:`~repro.isa.instruction.Instruction`
into a Python closure at decode/translation time: operands, immediates,
sign-extension masks, branch targets and the bound memory accessors are
pre-resolved into the closure's cell/default variables, so executing an
instruction is one argumentless call with no dispatch at all.

Closures are grouped into :class:`Superblock` plans — straight-line runs
executed as a flat list — and each plan precomputes its
:class:`~repro.isa.opcodes.InstrClass` count vector plus its total APP
cycle cost under the active :class:`~repro.host.profile.ArchProfile`, so
cycle accounting and instruction-class counting are charged once per
block execution instead of once per instruction
(:meth:`repro.host.costs.HostModel.charge_block`).

Invariants the block layer relies on (see docs/performance.md):

- only the final instruction of a plan can transfer control, so host
  predictor events fire exactly once per block, at the terminator;
- ``SYSCALL`` can appear mid-plan only in SDT fragments (interpreter
  superblocks terminate at syscalls); plans flag ``has_syscall`` so
  callers keep per-step exit checks on those blocks;
- fuel is decremented in block-sized strides; when a stride would
  overshoot, callers execute a per-instruction prefix instead so runs
  stop at exactly the same retired count as the oracle engine.

The oracle engine remains the single source of SR32 semantics; every
closure here must match it bit-for-bit (enforced by
tests/test_engine_differential.py).  Unusual cases — writes to ``r0``,
loads into ``r0`` — fall back to a closure that simply calls the oracle
executor, so unspecialised paths cannot drift.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Op
from repro.isa.registers import REG_RA
from repro.machine.cpu import CPUState, s32
from repro.machine.executor import _sdiv, _srem, execute
from repro.machine.memory import Memory
from repro.machine.syscalls import SyscallHandler

#: The execution engines.  ``oracle`` steps through
#: :func:`repro.machine.executor.execute` (the semantics reference);
#: ``threaded`` runs closure-specialised superblocks; ``tier2`` adds
#: profile-guided region compilation to generated Python source on top
#: of the threaded tier (:mod:`repro.machine.tier2`), deoptimizing back
#: to it at any guard failure.  All three are architecturally and
#: cycle-count identical.
ENGINES = ("oracle", "threaded", "tier2")

#: Straight-line superblock length cap for the interpreter (fragments are
#: already capped by ``max_fragment_instrs``).
MAX_SUPERBLOCK_INSTRS = 256

U32 = 0xFFFFFFFF
_SBIT = 0x8000_0000

StepFn = Callable[[], int]


def default_engine() -> str:
    """Engine selected by ``REPRO_ENGINE`` (default: ``threaded``)."""
    return os.environ.get("REPRO_ENGINE", "threaded")


def resolve_engine(engine: str | None) -> str:
    """Validate an engine name, resolving ``None`` via the environment."""
    engine = engine if engine is not None else default_engine()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def compile_instr(
    pc: int,
    instr: Instruction,
    cpu: CPUState,
    mem: Memory,
    syscalls: SyscallHandler,
) -> StepFn:
    """Specialise one instruction at ``pc`` into an argumentless closure.

    The closure executes the instruction against the bound machine state
    and returns the next guest PC, exactly like the oracle executor.
    Operands and constants are captured as default arguments so every
    name the closure touches is a fast local.
    """
    regs = cpu.regs
    op = instr.op
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    imm, shamt = instr.imm, instr.shamt
    npc = (pc + 4) & U32

    # Fallback for shapes not worth specialising (e.g. ALU writes to the
    # hardwired-zero register, loads into r0): defer to the oracle so the
    # semantics cannot diverge.  Side effects (faults) still occur.
    def oracle(pc=pc, instr=instr, cpu=cpu, mem=mem, syscalls=syscalls):
        cpu.pc = pc
        return execute(instr, cpu, mem, syscalls)

    # -- ALU register forms -------------------------------------------------
    if op is Op.ADD:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = (regs[rs] + regs[rt]) & U32
            return npc
        return step
    if op is Op.ADDI:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, npc=npc):
            regs[rt] = (regs[rs] + imm) & U32
            return npc
        return step
    if op is Op.SUB:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = (regs[rs] - regs[rt]) & U32
            return npc
        return step
    if op is Op.AND:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = regs[rs] & regs[rt]
            return npc
        return step
    if op is Op.OR:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = regs[rs] | regs[rt]
            return npc
        return step
    if op is Op.XOR:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = regs[rs] ^ regs[rt]
            return npc
        return step
    if op is Op.NOR:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = ~(regs[rs] | regs[rt]) & U32
            return npc
        return step
    if op is Op.SLT:
        if not rd:
            return oracle

        # signed compare via bias: s32(a) < s32(b)  <=>  a^SBIT < b^SBIT
        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = 1 if (regs[rs] ^ _SBIT) < (regs[rt] ^ _SBIT) else 0
            return npc
        return step
    if op is Op.SLTU:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = 1 if regs[rs] < regs[rt] else 0
            return npc
        return step
    if op is Op.MUL:
        if not rd:
            return oracle

        # s32(a)*s32(b) is congruent to a*b mod 2^32
        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = (regs[rs] * regs[rt]) & U32
            return npc
        return step
    if op is Op.DIV:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc,
                 sdiv=_sdiv, sx=s32):
            regs[rd] = sdiv(sx(regs[rs]), sx(regs[rt])) & U32
            return npc
        return step
    if op is Op.REM:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc,
                 srem=_srem, sx=s32):
            regs[rd] = srem(sx(regs[rs]), sx(regs[rt])) & U32
            return npc
        return step

    # -- ALU immediate forms ------------------------------------------------
    if op is Op.ANDI:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, npc=npc):
            regs[rt] = regs[rs] & imm
            return npc
        return step
    if op is Op.ORI:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, npc=npc):
            regs[rt] = regs[rs] | imm
            return npc
        return step
    if op is Op.XORI:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, npc=npc):
            regs[rt] = regs[rs] ^ imm
            return npc
        return step
    if op is Op.SLTI:
        if not rt:
            return oracle
        biased = (imm & U32) ^ _SBIT

        def step(regs=regs, rt=rt, rs=rs, biased=biased, npc=npc):
            regs[rt] = 1 if (regs[rs] ^ _SBIT) < biased else 0
            return npc
        return step
    if op is Op.SLTIU:
        if not rt:
            return oracle
        uimm = imm & U32

        def step(regs=regs, rt=rt, rs=rs, uimm=uimm, npc=npc):
            regs[rt] = 1 if regs[rs] < uimm else 0
            return npc
        return step
    if op is Op.LUI:
        if not rt:
            return oracle
        value = (imm << 16) & U32

        def step(regs=regs, rt=rt, value=value, npc=npc):
            regs[rt] = value
            return npc
        return step

    # -- shifts -------------------------------------------------------------
    if op is Op.SLL:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rt=rt, sh=shamt, npc=npc):
            regs[rd] = (regs[rt] << sh) & U32
            return npc
        return step
    if op is Op.SRL:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rt=rt, sh=shamt, npc=npc):
            regs[rd] = regs[rt] >> sh
            return npc
        return step
    if op is Op.SRA:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rt=rt, sh=shamt, npc=npc, sx=s32):
            regs[rd] = (sx(regs[rt]) >> sh) & U32
            return npc
        return step
    if op is Op.SLLV:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = (regs[rs] << (regs[rt] & 31)) & U32
            return npc
        return step
    if op is Op.SRLV:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc):
            regs[rd] = regs[rs] >> (regs[rt] & 31)
            return npc
        return step
    if op is Op.SRAV:
        if not rd:
            return oracle

        def step(regs=regs, rd=rd, rs=rs, rt=rt, npc=npc, sx=s32):
            regs[rd] = (sx(regs[rs]) >> (regs[rt] & 31)) & U32
            return npc
        return step

    # -- memory -------------------------------------------------------------
    if op is Op.LW:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, load=mem.load_word,
                 npc=npc):
            regs[rt] = load((regs[rs] + imm) & U32)
            return npc
        return step
    if op is Op.SW:
        def step(regs=regs, rt=rt, rs=rs, imm=imm, store=mem.store_word,
                 npc=npc):
            store((regs[rs] + imm) & U32, regs[rt])
            return npc
        return step
    if op is Op.LB:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, load=mem.load_byte,
                 npc=npc):
            value = load((regs[rs] + imm) & U32)
            regs[rt] = value | 0xFFFFFF00 if value & 0x80 else value
            return npc
        return step
    if op is Op.LBU:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, load=mem.load_byte,
                 npc=npc):
            regs[rt] = load((regs[rs] + imm) & U32)
            return npc
        return step
    if op is Op.LH:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, load=mem.load_half,
                 npc=npc):
            value = load((regs[rs] + imm) & U32)
            regs[rt] = value | 0xFFFF0000 if value & 0x8000 else value
            return npc
        return step
    if op is Op.LHU:
        if not rt:
            return oracle

        def step(regs=regs, rt=rt, rs=rs, imm=imm, load=mem.load_half,
                 npc=npc):
            regs[rt] = load((regs[rs] + imm) & U32)
            return npc
        return step
    if op is Op.SB:
        def step(regs=regs, rt=rt, rs=rs, imm=imm, store=mem.store_byte,
                 npc=npc):
            store((regs[rs] + imm) & U32, regs[rt])
            return npc
        return step
    if op is Op.SH:
        def step(regs=regs, rt=rt, rs=rs, imm=imm, store=mem.store_half,
                 npc=npc):
            store((regs[rs] + imm) & U32, regs[rt])
            return npc
        return step

    # -- control ------------------------------------------------------------
    if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        tgt = instr.branch_target(pc)
        if op is Op.BEQ:
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if regs[rs] == regs[rt] else npc
        elif op is Op.BNE:
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if regs[rs] != regs[rt] else npc
        elif op is Op.BLT:
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if (regs[rs] ^ _SBIT) < (regs[rt] ^ _SBIT) else npc
        elif op is Op.BGE:
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if (regs[rs] ^ _SBIT) >= (regs[rt] ^ _SBIT) else npc
        elif op is Op.BLTU:
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if regs[rs] < regs[rt] else npc
        else:  # BGEU
            def step(regs=regs, rs=rs, rt=rt, tgt=tgt, npc=npc):
                return tgt if regs[rs] >= regs[rt] else npc
        return step
    if op is Op.J:
        tgt = instr.branch_target(pc)

        def step(tgt=tgt):
            return tgt
        return step
    if op is Op.JAL:
        tgt = instr.branch_target(pc)

        def step(regs=regs, ra=npc, tgt=tgt):
            regs[REG_RA] = ra
            return tgt
        return step
    if op is Op.JR:
        def step(regs=regs, rs=rs):
            return regs[rs]
        return step
    if op is Op.JALR:
        if not rd:
            def step(regs=regs, rs=rs):
                return regs[rs]
            return step

        # target is read before the link write, as in the oracle (rd == rs)
        def step(regs=regs, rd=rd, rs=rs, ra=npc):
            target = regs[rs]
            regs[rd] = ra
            return target
        return step
    if op is Op.RET:
        def step(regs=regs):
            return regs[REG_RA]
        return step
    if op is Op.SYSCALL:
        def step(dispatch=syscalls.dispatch, cpu=cpu, mem=mem, npc=npc):
            dispatch(cpu, mem)
            return npc
        return step
    if op is Op.HALT:
        def step(syscalls=syscalls, pc=pc):
            if syscalls.exit_code is None:
                syscalls.exit_code = 0
            return pc  # halt spins; run loops stop on `exited`
        return step

    return oracle  # pragma: no cover - exhaustive over Op


class Superblock:
    """A compiled straight-line block: closures plus block-level costs.

    Attributes:
        entry_pc: guest address of the first instruction.
        pcs / fns / iclasses: per-instruction guest PCs, step closures and
            instruction classes (parallel tuples).
        n: instruction count.
        class_counts: ``InstrClass -> count`` vector for the whole block.
        app_cycles: total APP cycles under the profile the block was
            compiled for (0 when compiled without a cost model).
        has_syscall: the block contains a ``SYSCALL``; callers must keep
            per-step exit checks when executing it.
        term_pc / term_iclass / term_rd: terminator metadata (host
            predictor events and SDT call/return bookkeeping key on these).
        hits: full fast-path executions — the tier-2 engine's heat
            counter; crossing the promotion threshold triggers region
            formation (:mod:`repro.machine.tier2`).
        region: tier-2 promotion state — ``None`` until probed, a
            compiled region once promoted, or ``False`` when the block
            is permanently region-ineligible.
    """

    __slots__ = (
        "entry_pc", "pcs", "fns", "iclasses", "n", "class_counts",
        "app_cycles", "has_syscall", "term_pc", "term_iclass", "term_rd",
        "hits", "region",
    )

    def __init__(
        self,
        pairs: list[tuple[int, Instruction]],
        cpu: CPUState,
        mem: Memory,
        syscalls: SyscallHandler,
        class_cycles: dict[InstrClass, int] | None = None,
        trace=None,
    ):
        if not pairs:
            raise ValueError("cannot compile an empty block")
        self.entry_pc = pairs[0][0]
        self.pcs = tuple(pc for pc, _instr in pairs)
        self.fns = tuple(
            compile_instr(pc, instr, cpu, mem, syscalls)
            for pc, instr in pairs
        )
        iclasses = tuple(instr.iclass for _pc, instr in pairs)
        self.iclasses = iclasses
        self.n = len(pairs)
        counts: dict[InstrClass, int] = {}
        for iclass in iclasses:
            counts[iclass] = counts.get(iclass, 0) + 1
        self.class_counts = counts
        self.app_cycles = (
            sum(class_cycles[ic] * c for ic, c in counts.items())
            if class_cycles is not None else 0
        )
        self.has_syscall = InstrClass.SYSCALL in counts
        term_pc, term_instr = pairs[-1]
        self.term_pc = term_pc
        self.term_iclass = iclasses[-1]
        self.term_rd = term_instr.rd
        self.hits = 0
        self.region = None
        if trace is not None:
            trace.emit("plan.build", entry=self.entry_pc, instrs=self.n,
                       syscall=self.has_syscall)

    def coherent_with(self, entry_pc: int, pairs) -> bool:
        """Does this plan still describe the block it was compiled from?

        ``pairs`` is the fragment's ``(guest_pc, instruction)`` list.  The
        SDT's graceful-degradation path calls this before executing a
        plan under fault injection: any metadata corruption (entry,
        length, terminator, class-count vector) is caught here and the
        fragment is demoted to the oracle engine instead of executing a
        lying plan (see repro.faults and docs/robustness.md).
        """
        n = len(pairs)
        if self.entry_pc != entry_pc or self.n != n:
            return False
        if self.term_pc != pairs[-1][0]:
            return False
        if sum(self.class_counts.values()) != n:
            return False
        pcs = self.pcs
        return len(pcs) == n and all(
            pcs[i] == pairs[i][0] for i in range(n)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Superblock(entry={self.entry_pc:#x}, n={self.n}, "
            f"term={self.term_iclass.value})"
        )


def compile_block(
    pairs: list[tuple[int, Instruction]],
    cpu: CPUState,
    mem: Memory,
    syscalls: SyscallHandler,
    class_cycles: dict[InstrClass, int] | None = None,
) -> Superblock:
    """Compile ``(pc, instruction)`` pairs into a :class:`Superblock`."""
    return Superblock(pairs, cpu, mem, syscalls, class_cycles=class_cycles)


def native_exit_event(model, block: Superblock, next_pc: int) -> None:
    """Charge the host-predictor event for a block's terminator.

    Mirrors :class:`repro.host.costs.NativeCostObserver` exactly; only
    terminators can transfer control, so this is the one predictor event
    per block execution.
    """
    iclass = block.term_iclass
    pc = block.term_pc
    if iclass is InstrClass.BRANCH:
        model.cond_branch(pc, taken=next_pc != pc + 4)
    elif iclass is InstrClass.CALL:
        model.host_call(pc + 4)
    elif iclass is InstrClass.ICALL:
        model.host_call(pc + 4)
        model.indirect_jump(pc, next_pc)
    elif iclass is InstrClass.IJUMP:
        model.indirect_jump(pc, next_pc)
    elif iclass is InstrClass.RET:
        model.host_return(next_pc)
