"""Reference interpreter for SR32 programs.

This is the baseline execution engine: it runs a program directly from its
text section, with no translation.  It serves two roles:

1. **Correctness oracle** — the SDT must produce the same output, exit code
   and retired-instruction count.
2. **Native-performance baseline** — attach a host cost model as the
   ``observer`` and the interpreter charges exactly the cycles the program
   would cost when running natively (no SDT dispatch code).

Two execution engines are available (see docs/performance.md):

``oracle``
    one :func:`repro.machine.executor.execute` call per instruction — the
    semantics reference.
``threaded``
    closure-specialised superblocks from :mod:`repro.machine.engine`,
    cached by entry PC and invalidated together with ``_decoded``.
    Observable results (output, exit code, retired count, iclass counts,
    charged cycles, fault timing, fuel semantics) are identical; only
    wall-clock speed differs.
``tier2``
    the threaded engine plus profile-guided region compilation
    (:mod:`repro.machine.tier2`): superblocks whose execution counter
    crosses the promotion threshold are compiled — along their hot
    static successors — into generated Python functions with registers
    as locals, deoptimizing back to this loop at any guard failure.
    Same observable-identity contract as ``threaded``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.host.costs import NativeCostObserver
from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import CONTROL_CLASSES, InstrClass
from repro.isa.program import Program
from repro.machine.engine import (
    MAX_SUPERBLOCK_INSTRS,
    Superblock,
    native_exit_event,
    resolve_engine,
)
from repro.machine.errors import FuelExhausted, MemoryFault
from repro.machine.executor import execute
from repro.machine.loader import load_program
from repro.machine.memory import PAGE_SHIFT

DEFAULT_FUEL = 50_000_000


class Observer(Protocol):
    """Per-instruction hook: called after each retired instruction."""

    def __call__(self, pc: int, instr: Instruction, next_pc: int) -> None:
        ...


@dataclass(slots=True)
class RunResult:
    """Outcome of one program run."""

    output: str
    exit_code: int
    retired: int
    iclass_counts: Counter = field(default_factory=Counter)

    @property
    def indirect_branches(self) -> int:
        """Total dynamic indirect control transfers."""
        return (
            self.iclass_counts[InstrClass.IJUMP]
            + self.iclass_counts[InstrClass.ICALL]
            + self.iclass_counts[InstrClass.RET]
        )


class Interpreter:
    """Directly interprets a loaded program."""

    def __init__(
        self,
        program: Program,
        inputs: list[int] | None = None,
        observer: Callable[[int, Instruction, int], None] | None = None,
        count_classes: bool = True,
        engine: str | None = None,
    ):
        self.program = program
        self.cpu, self.mem, self.syscalls = load_program(program, inputs)
        self.observer = observer
        self.count_classes = count_classes
        self.engine = resolve_engine(engine)
        self.retired = 0
        self.iclass_counts: Counter = Counter()
        self._decoded: dict[int, Instruction] = {}
        self._blocks: dict[int, Superblock] = {}
        self._tier2 = None
        if self.engine == "tier2":
            from repro.machine.tier2 import InterpreterTier2

            self._tier2 = InterpreterTier2(self)
        self._text_lo = program.text.base
        self._text_hi = program.text.end
        # The interpreter is the correctness oracle, so it must observe
        # self-modifying code: pages are watched as they are decoded and
        # a store into one drops the overlapping decode/superblock cache
        # entries (docs/robustness.md, "Code-cache coherence").
        self.mem.set_write_watch(self._on_code_write)

    def fetch(self, pc: int) -> Instruction:
        """Fetch and decode the instruction at ``pc`` (cached)."""
        instr = self._decoded.get(pc)
        if instr is None:
            if not (self._text_lo <= pc < self._text_hi) or pc % 4:
                raise MemoryFault(pc, "fetch")
            instr = decode(self.mem.load_word(pc))
            self._decoded[pc] = instr
            self.mem.watch_page(pc >> PAGE_SHIFT)
        return instr

    def _on_code_write(self, addr: int, length: int) -> None:
        """A store hit a page holding decoded code: drop stale entries.

        SR32's SMC visibility rule: a store to code becomes
        architecturally visible at the next control transfer.  Both
        caches are consulted at control-transfer boundaries (per-pc
        fetch, block lookup by entry), so dropping every overlapping
        entry here is exactly that boundary.
        """
        decoded = self._decoded
        if decoded:
            first = addr & ~3
            last = (addr + length - 1) & ~3
            for pc in range(first, last + 4, 4):
                decoded.pop(pc, None)
        blocks = self._blocks
        if blocks:
            end = addr + length
            stale = [
                entry for entry, block in blocks.items()
                if entry < end and entry + 4 * block.n > addr
            ]
            for entry in stale:
                del blocks[entry]
        if self._tier2 is not None:
            self._tier2.on_code_write(addr, length)

    def step(self) -> None:
        """Execute exactly one instruction."""
        cpu = self.cpu
        pc = cpu.pc
        instr = self.fetch(pc)
        next_pc = execute(instr, cpu, self.mem, self.syscalls)
        cpu.pc = next_pc
        self.retired += 1
        if self.count_classes:
            self.iclass_counts[instr.iclass] += 1
        if self.observer is not None:
            self.observer(pc, instr, next_pc)

    def run(self, fuel: int = DEFAULT_FUEL) -> RunResult:
        """Run until the program exits or ``fuel`` instructions retire."""
        # The block engines only model the cost events the native
        # observer generates; arbitrary observers (profilers etc.) need
        # the per-instruction callback, so they get the oracle loop.
        if self.engine in ("threaded", "tier2") and (
            self.observer is None
            or isinstance(self.observer, NativeCostObserver)
        ):
            self._run_threaded(fuel, tier2=self._tier2)
        else:
            self._run_oracle(fuel)
        syscalls = self.syscalls
        return RunResult(
            output=syscalls.output,
            exit_code=syscalls.exit_code or 0,
            retired=self.retired,
            iclass_counts=self.iclass_counts,
        )

    def _run_oracle(self, fuel: int) -> None:
        syscalls = self.syscalls
        step = self.step
        remaining = fuel
        while not syscalls.exited:
            if remaining <= 0:
                raise FuelExhausted(fuel)
            step()
            remaining -= 1

    # -- threaded engine -----------------------------------------------------

    def _block_at(self, pc: int) -> Superblock:
        """Build (and cache) the superblock starting at ``pc``.

        Blocks end at the first control-transfer *or* ``SYSCALL``
        instruction, so exits and predictor events only ever occur at
        block terminators.  A fetch/decode failure beyond the first
        instruction truncates the block instead of faulting: the fault
        must fire when execution actually reaches that PC, exactly as in
        the oracle loop.
        """
        observer = self.observer
        class_cycles = (
            observer.model.profile.class_cycles
            if isinstance(observer, NativeCostObserver) else None
        )
        pairs = [(pc, self.fetch(pc))]
        probe = pc
        while (
            pairs[-1][1].iclass not in CONTROL_CLASSES
            and pairs[-1][1].iclass is not InstrClass.SYSCALL
            and len(pairs) < MAX_SUPERBLOCK_INSTRS
        ):
            probe += 4
            try:
                pairs.append((probe, self.fetch(probe)))
            except (MemoryFault, DecodeError):
                break
        block = Superblock(
            pairs, self.cpu, self.mem, self.syscalls,
            class_cycles=class_cycles,
        )
        self._blocks[pc] = block
        return block

    def _run_threaded(self, fuel: int, tier2=None) -> None:
        cpu = self.cpu
        syscalls = self.syscalls
        counts = self.iclass_counts
        count_classes = self.count_classes
        observer = self.observer
        model = observer.model if observer is not None else None
        blocks = self._blocks
        block_at = self._block_at
        threshold = tier2.threshold if tier2 is not None else 0
        remaining = fuel

        while not syscalls.exited:
            if remaining <= 0:
                raise FuelExhausted(fuel)
            pc = cpu.pc
            block = blocks.get(pc)
            if block is None:
                block = block_at(pc)
            n = block.n
            if n <= remaining:
                if tier2 is not None:
                    region = block.region
                    if region is None and block.hits >= threshold:
                        region = tier2.try_promote(block)
                    if region:
                        # head-block fuel already checked (n <= remaining);
                        # every further block is fuel-guarded in-region
                        remaining = tier2.execute(region, remaining)
                        continue
                    block.hits += 1
                fns = block.fns
                k = 0
                next_pc = pc
                try:
                    for fn in fns:
                        next_pc = fn()
                        k += 1
                except BaseException:
                    self._flush_partial(block, k, model)
                    raise
                self.retired += n
                remaining -= n
                if count_classes:
                    for iclass, count in block.class_counts.items():
                        counts[iclass] += count
                if model is not None:
                    model.charge_block(block.app_cycles)
                    if block.term_iclass in CONTROL_CLASSES:
                        native_exit_event(model, block, next_pc)
                cpu.pc = next_pc
            else:
                # fuel runs out inside this block: retire exactly
                # ``remaining`` instructions one at a time (the prefix
                # never reaches the terminator, so no predictor events)
                self._run_prefix(block, remaining, model)
                remaining = 0

    def _run_prefix(self, block: Superblock, limit: int, model) -> None:
        """Execute the first ``limit`` instructions of a block."""
        cpu = self.cpu
        counts = self.iclass_counts
        count_classes = self.count_classes
        iclasses = block.iclasses
        k = 0
        try:
            for fn in block.fns[:limit]:
                fn()
                k += 1
                if count_classes:
                    counts[iclasses[k - 1]] += 1
                if model is not None:
                    model.charge_instr(iclasses[k - 1])
        except BaseException:
            cpu.pc = block.pcs[min(k, block.n - 1)]
            raise
        finally:
            self.retired += k
        cpu.pc = block.pcs[limit] if limit < block.n else block.pcs[-1]

    def _flush_partial(self, block: Superblock, k: int, model) -> None:
        """Account a block's first ``k`` instructions after a fault."""
        self.retired += k
        if self.count_classes:
            counts = self.iclass_counts
            for iclass in block.iclasses[:k]:
                counts[iclass] += 1
        if model is not None:
            for iclass in block.iclasses[:k]:
                model.charge_instr(iclass)
        # leave cpu.pc on the faulting instruction, like the oracle loop
        self.cpu.pc = block.pcs[min(k, block.n - 1)]


def run_program(
    program: Program,
    inputs: list[int] | None = None,
    fuel: int = DEFAULT_FUEL,
    observer: Callable[[int, Instruction, int], None] | None = None,
    engine: str | None = None,
) -> RunResult:
    """Convenience wrapper: load and run a program to completion."""
    return Interpreter(
        program, inputs=inputs, observer=observer, engine=engine
    ).run(fuel)
