"""Reference interpreter for SR32 programs.

This is the baseline execution engine: it runs a program directly from its
text section, with no translation.  It serves two roles:

1. **Correctness oracle** — the SDT must produce the same output, exit code
   and retired-instruction count.
2. **Native-performance baseline** — attach a host cost model as the
   ``observer`` and the interpreter charges exactly the cycles the program
   would cost when running natively (no SDT dispatch code).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.machine.errors import FuelExhausted, MemoryFault
from repro.machine.executor import execute
from repro.machine.loader import load_program

DEFAULT_FUEL = 50_000_000


class Observer(Protocol):
    """Per-instruction hook: called after each retired instruction."""

    def __call__(self, pc: int, instr: Instruction, next_pc: int) -> None:
        ...


@dataclass(slots=True)
class RunResult:
    """Outcome of one program run."""

    output: str
    exit_code: int
    retired: int
    iclass_counts: Counter = field(default_factory=Counter)

    @property
    def indirect_branches(self) -> int:
        """Total dynamic indirect control transfers."""
        from repro.isa.opcodes import InstrClass

        return (
            self.iclass_counts[InstrClass.IJUMP]
            + self.iclass_counts[InstrClass.ICALL]
            + self.iclass_counts[InstrClass.RET]
        )


class Interpreter:
    """Directly interprets a loaded program."""

    def __init__(
        self,
        program: Program,
        inputs: list[int] | None = None,
        observer: Callable[[int, Instruction, int], None] | None = None,
        count_classes: bool = True,
    ):
        self.program = program
        self.cpu, self.mem, self.syscalls = load_program(program, inputs)
        self.observer = observer
        self.count_classes = count_classes
        self.retired = 0
        self.iclass_counts: Counter = Counter()
        self._decoded: dict[int, Instruction] = {}
        self._text_lo = program.text.base
        self._text_hi = program.text.end

    def fetch(self, pc: int) -> Instruction:
        """Fetch and decode the instruction at ``pc`` (cached)."""
        instr = self._decoded.get(pc)
        if instr is None:
            if not (self._text_lo <= pc < self._text_hi) or pc % 4:
                raise MemoryFault(pc, "fetch")
            instr = decode(self.mem.load_word(pc))
            self._decoded[pc] = instr
        return instr

    def step(self) -> None:
        """Execute exactly one instruction."""
        cpu = self.cpu
        pc = cpu.pc
        instr = self.fetch(pc)
        next_pc = execute(instr, cpu, self.mem, self.syscalls)
        cpu.pc = next_pc
        self.retired += 1
        if self.count_classes:
            self.iclass_counts[instr.iclass] += 1
        if self.observer is not None:
            self.observer(pc, instr, next_pc)

    def run(self, fuel: int = DEFAULT_FUEL) -> RunResult:
        """Run until the program exits or ``fuel`` instructions retire."""
        syscalls = self.syscalls
        step = self.step
        remaining = fuel
        while not syscalls.exited:
            if remaining <= 0:
                raise FuelExhausted(fuel)
            step()
            remaining -= 1
        return RunResult(
            output=syscalls.output,
            exit_code=syscalls.exit_code or 0,
            retired=self.retired,
            iclass_counts=self.iclass_counts,
        )


def run_program(
    program: Program,
    inputs: list[int] | None = None,
    fuel: int = DEFAULT_FUEL,
    observer: Callable[[int, Instruction, int], None] | None = None,
) -> RunResult:
    """Convenience wrapper: load and run a program to completion."""
    return Interpreter(program, inputs=inputs, observer=observer).run(fuel)
