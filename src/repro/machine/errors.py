"""Guest fault hierarchy."""

from __future__ import annotations


class GuestFault(Exception):
    """Base class for all guest-visible faults."""


class MemoryFault(GuestFault):
    """Access to an unmapped or out-of-range address."""

    def __init__(self, addr: int, access: str = "access"):
        super().__init__(f"memory fault: {access} at {addr:#010x}")
        self.addr = addr


class AlignmentFault(GuestFault):
    """Misaligned load/store/fetch."""

    def __init__(self, addr: int, width: int):
        super().__init__(
            f"alignment fault: {width}-byte access at {addr:#010x}"
        )
        self.addr = addr
        self.width = width


class DivideByZeroFault(GuestFault):
    """Integer division or remainder by zero."""


class InvalidSyscall(GuestFault):
    """Unknown syscall service number."""

    def __init__(self, service: int):
        super().__init__(f"invalid syscall service {service}")
        self.service = service


class FuelExhausted(GuestFault):
    """The run exceeded its instruction budget (suspected hang)."""

    def __init__(self, fuel: int):
        super().__init__(f"instruction budget of {fuel} exhausted")
        self.fuel = fuel
