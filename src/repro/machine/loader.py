"""Program loader: build a runnable machine from a :class:`Program`."""

from __future__ import annotations

from repro.isa.program import Program, STACK_TOP
from repro.machine.cpu import CPUState
from repro.machine.memory import Memory
from repro.machine.syscalls import SyscallHandler


def load_program(
    program: Program, inputs: list[int] | None = None
) -> tuple[CPUState, Memory, SyscallHandler]:
    """Load sections into fresh memory and return (cpu, memory, syscalls).

    The stack pointer starts at :data:`repro.isa.program.STACK_TOP` and the
    heap break just past the data section.
    """
    mem = Memory()
    mem.write_bytes(program.text.base, program.text.data)
    if program.data.data:
        mem.write_bytes(program.data.base, program.data.data)
    cpu = CPUState(pc=program.entry, sp=STACK_TOP)
    syscalls = SyscallHandler(heap_base=program.heap_base, inputs=inputs)
    return cpu, mem, syscalls
