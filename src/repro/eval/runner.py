"""Measurement runner: one (workload, config, profile) cell at a time.

Every SDT measurement is verified against the reference interpreter
(output, exit code, retired-instruction count) before its cycles are
trusted — a run that diverges raises instead of producing a number.

Native baselines and SDT measurements are cached in-process keyed on
(workload, scale, fuel, profile/config), so experiment drivers can share
cells (e.g. the `ibtc(shared,4096)` column appears in E3, E6 and E7 but
is simulated once).  ``fuel`` is part of every key: a short-fuel run must
never be served to a full-fuel caller.  Config identity comes from
:meth:`repro.sdt.config.SDTConfig.fingerprint`, which enumerates every
declared field.  The persistent, cross-process counterpart of these
caches lives in :mod:`repro.eval.diskcache`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.costs import Category, HostModel, NativeCostObserver
from repro.host.profile import ArchProfile
from repro.isa.opcodes import InstrClass
from repro.machine.interpreter import Interpreter
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTRunResult, SDTVM
from repro.workloads import Workload, get_workload

DEFAULT_FUEL = 30_000_000


class DivergenceError(AssertionError):
    """The SDT produced different behaviour than the interpreter."""


@dataclass(frozen=True)
class NativeBaseline:
    """Reference-interpreter run with native cycle accounting."""

    workload: str
    scale: str
    profile: str
    output: str
    exit_code: int
    retired: int
    cycles: int
    ijumps: int
    icalls: int
    rets: int

    @property
    def indirect_branches(self) -> int:
        return self.ijumps + self.icalls + self.rets


@dataclass(frozen=True)
class Measurement:
    """One verified SDT measurement, normalised to its native baseline."""

    workload: str
    scale: str
    profile: str
    config_label: str
    native_cycles: int
    sdt_cycles: int
    breakdown: dict[str, int]
    stats: dict[str, object]
    hit_rates: dict[str, float]

    @property
    def overhead(self) -> float:
        """Slowdown vs native — the paper's y-axis."""
        if self.native_cycles <= 0:
            raise ValueError(
                f"cell {self.workload}/{self.scale}/{self.profile}/"
                f"{self.config_label} has non-positive native_cycles="
                f"{self.native_cycles}; cannot normalise overhead"
            )
        return self.sdt_cycles / self.native_cycles

    @property
    def ib_overhead_cycles(self) -> int:
        """Cycles attributable to IB handling (dispatch + slow paths)."""
        ib_categories = (
            Category.CONTEXT_SWITCH,
            Category.MAP_LOOKUP,
            Category.IBTC,
            Category.SIEVE,
            Category.SHADOW_STACK,
            Category.FAST_RETURN,
            Category.RETCACHE,
            Category.STATIC,
        )
        return sum(self.breakdown.get(cat.value, 0) for cat in ib_categories)


_NATIVE_CACHE: dict[tuple, NativeBaseline] = {}
_MEASURE_CACHE: dict[tuple, Measurement] = {}


def clear_caches() -> None:
    """Drop all cached runs (tests use this for isolation)."""
    _NATIVE_CACHE.clear()
    _MEASURE_CACHE.clear()


def run_native(
    workload: Workload | str,
    profile: ArchProfile,
    scale: str = "small",
    fuel: int = DEFAULT_FUEL,
    engine: str | None = None,
) -> NativeBaseline:
    """Interpreter run of a workload with native cost accounting (cached).

    ``engine`` selects the simulation engine (oracle/threaded; see
    :mod:`repro.machine.engine`); it is deliberately *not* part of the
    memo key because both engines produce identical baselines.
    """
    if isinstance(workload, str):
        workload = get_workload(workload, scale)
    key = (workload.name, scale, fuel, profile.fingerprint())
    cached = _NATIVE_CACHE.get(key)
    if cached is not None:
        return cached

    model = HostModel(profile)
    interp = Interpreter(
        workload.compile(), observer=NativeCostObserver(model), engine=engine
    )
    result = interp.run(fuel)
    baseline = NativeBaseline(
        workload=workload.name,
        scale=scale,
        profile=profile.name,
        output=result.output,
        exit_code=result.exit_code,
        retired=result.retired,
        cycles=model.total_cycles,
        ijumps=result.iclass_counts[InstrClass.IJUMP],
        icalls=result.iclass_counts[InstrClass.ICALL],
        rets=result.iclass_counts[InstrClass.RET],
    )
    _NATIVE_CACHE[key] = baseline
    return baseline


def _verify(
    baseline: NativeBaseline, result: SDTRunResult, label: str
) -> None:
    if result.output != baseline.output:
        raise DivergenceError(
            f"{baseline.workload}/{label}: output diverged "
            f"({result.output!r} vs {baseline.output!r})"
        )
    if result.exit_code != baseline.exit_code:
        raise DivergenceError(
            f"{baseline.workload}/{label}: exit code diverged"
        )
    if result.retired != baseline.retired:
        raise DivergenceError(
            f"{baseline.workload}/{label}: retired count diverged "
            f"({result.retired} vs {baseline.retired})"
        )


def measure(
    workload: Workload | str,
    config: SDTConfig,
    scale: str = "small",
    fuel: int = DEFAULT_FUEL,
) -> Measurement:
    """Run a workload under an SDT config; verify and normalise (cached)."""
    if isinstance(workload, str):
        workload = get_workload(workload, scale)
    # Fault-injected runs bypass the memo entirely: ``faults`` is exempt
    # from the config fingerprint (it cannot change architectural
    # results), so caching a faulted measurement under that key would
    # serve its perturbed cycle counts to fault-free callers — and vice
    # versa.  Chaos runs always recompute.
    faulted = config.faults is not None and config.faults.active
    # A dir-sink traced call must actually simulate to produce its
    # export, so it skips the memo read; tracing is pure observation,
    # so the recomputed measurement is identical and may still be
    # stored for later callers.
    traced_sink = config.trace is not None and bool(config.trace.dir)
    key = (workload.name, scale, fuel, config.fingerprint())
    if not faulted and not traced_sink:
        cached = _MEASURE_CACHE.get(key)
        if cached is not None:
            return cached

    baseline = run_native(workload, config.profile, scale=scale, fuel=fuel,
                          engine=config.engine)
    vm = SDTVM(workload.compile(), config=config)
    result = vm.run(fuel)
    _verify(baseline, result, config.label)

    # Directory-sink tracing (REPRO_TRACE="dir=..."): cells that actually
    # simulate drop their trace + metrics exports next to the results.
    # Cache-served cells carry no event stream, so they (correctly) skip
    # this — tracing observes simulations, it does not replay them.
    if vm.trace is not None and config.trace is not None and config.trace.dir:
        from repro.trace.export import export_files

        export_files(
            vm.trace, config.trace.dir,
            f"{workload.name}-{scale}-{config.profile.name}-{config.label}",
            result=result,
            context={
                "workload": workload.name, "scale": scale,
                "config": config.label, "profile": config.profile.name,
                "engine": config.engine, "native_cycles": baseline.cycles,
            },
        )

    hit_rates = {}
    for counter_key in result.stats.mechanism:
        mechanism = counter_key.rsplit(".", 1)[0]
        if mechanism not in hit_rates:
            hit_rates[mechanism] = result.stats.hit_rate(mechanism)

    measurement = Measurement(
        workload=workload.name,
        scale=scale,
        profile=config.profile.name,
        config_label=config.label,
        native_cycles=baseline.cycles,
        sdt_cycles=result.total_cycles,
        breakdown=dict(result.cycles),
        stats=result.stats.as_dict(),
        hit_rates=hit_rates,
    )
    if not faulted:
        _MEASURE_CACHE[key] = measurement
    return measurement
