"""Table rendering and result persistence for the experiment drivers."""

from __future__ import annotations

import csv
import math
from pathlib import Path

#: Default artefact directory (created on first write).
RESULTS_DIR = Path("results")


def geomean(values: list[float]) -> float:
    """Geometric mean — the paper's suite-level aggregate."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    title: str, headers: list[str], rows: list[list[object]]
) -> str:
    """Render an aligned text table."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells))
        if cells
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(w) if i else value.ljust(w)
                      for i, (value, w) in enumerate(zip(row, widths)))
        )
    return "\n".join(lines)


def write_results(
    name: str,
    title: str,
    headers: list[str],
    rows: list[list[object]],
    results_dir: Path | None = None,
) -> str:
    """Render a table, persist it as ``<name>.txt``/``<name>.csv``, print it.

    Returns the rendered text (also printed to stdout so ``pytest -s``
    shows it live).
    """
    directory = results_dir if results_dir is not None else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    text = format_table(title, headers, rows)
    (directory / f"{name}.txt").write_text(text + "\n")
    with open(directory / f"{name}.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow([format_cell(value) for value in row])
    print()
    print(text)
    return text
