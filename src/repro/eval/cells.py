"""Experiment cells: the schedulable, cacheable unit of evaluation work.

A :class:`Cell` names one simulation the experiment grid needs — a
verified SDT measurement, a native-baseline run, or a fan-out profile —
together with everything that determines its result (workload source,
scale, fuel, full config/profile field set, and a code-version salt).
Cells are plain picklable values, so the executor in
:mod:`repro.eval.parallel` can ship them to worker processes, and their
:meth:`Cell.fingerprint` is a *complete* content address, so
:mod:`repro.eval.diskcache` can persist results across processes and
invocations without ever serving a stale or aliased entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass

import repro
from repro.eval.fanout import FanoutProfile, SiteProfile, collect_fanout
from repro.eval.runner import (
    DEFAULT_FUEL,
    Measurement,
    NativeBaseline,
    measure,
    run_native,
)
from repro.host.profile import ArchProfile
from repro.sdt.config import SDTConfig
from repro.workloads import Workload, get_workload

#: Cache-invalidation salt: folded into every fingerprint so results
#: simulated by an older code version are recomputed, never trusted.
CODE_SALT = f"repro/{repro.__version__}"

#: Result type of each cell kind (documentation aid; see decode_result).
CELL_KINDS = ("measure", "native", "fanout")


@dataclass(frozen=True)
class Cell:
    """One (workload, scale, profile/config, fuel) grid cell.

    ``workload`` is either a registered workload name (resolved at the
    given scale) or an inline :class:`Workload` object (the E12
    microbenchmarks).  Exactly one of ``config`` (measure cells) and
    ``profile`` (native cells) is set; fan-out cells carry neither.
    """

    kind: str
    workload: Workload | str
    scale: str
    fuel: int = DEFAULT_FUEL
    config: SDTConfig | None = None
    profile: ArchProfile | None = None

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; expected one of {CELL_KINDS}"
            )
        if self.kind == "measure" and self.config is None:
            raise ValueError("measure cells need a config")
        if self.kind == "native" and self.profile is None:
            raise ValueError("native cells need a profile")

    def resolve(self) -> Workload:
        if isinstance(self.workload, Workload):
            return self.workload
        return get_workload(self.workload, self.scale)

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Workload):
            return self.workload.name
        return self.workload

    @property
    def cacheable(self) -> bool:
        """Whether this cell's result may be served from / stored in caches.

        Fault-injected measurements are deliberately uncacheable: the
        ``faults`` field is exempt from :meth:`SDTConfig.fingerprint` (it
        cannot change architectural results), so a cached faulted
        measurement would alias the fault-free one — its cycle counts
        would poison every clean run that shares the config.  Rather than
        splitting the cache key, chaos runs simply recompute.
        """
        return (
            self.config is None
            or self.config.faults is None
            or not self.config.faults.active
        )

    @property
    def label(self) -> str:
        """Human-readable identity for progress output."""
        base = f"{self.workload_name}[{self.scale}]"
        if self.kind == "measure":
            assert self.config is not None
            return f"{base} {self.config.label} @{self.config.profile.name}"
        if self.kind == "native":
            assert self.profile is not None
            return f"{base} native @{self.profile.name}"
        return f"{base} fanout"

    def fingerprint(self) -> tuple:
        """Complete content address of this cell's result.

        Covers the workload *source* (not just its name), the full
        config/profile field sets, scale, fuel, and :data:`CODE_SALT`.
        Equal fingerprints imply byte-identical results.
        """
        workload = self.resolve()
        source_digest = hashlib.sha256(
            workload.source.encode("utf-8")
        ).hexdigest()
        parts: list[tuple[str, object]] = [
            ("salt", CODE_SALT),
            ("kind", self.kind),
            ("workload", workload.name),
            ("scale", self.scale),
            ("source", source_digest),
            ("fuel", self.fuel),
        ]
        if self.config is not None:
            parts.append(("config", self.config.fingerprint()))
            if self.config.faults is not None and self.config.faults.active:
                # Faulted cells never reach the persistent caches (see
                # ``cacheable``), but the in-batch dedup map still keys
                # on this fingerprint — distinct fault plans must remain
                # distinct cells there.
                parts.append(("faults", self.config.faults.fingerprint()))
        if self.profile is not None:
            parts.append(("profile", self.profile.fingerprint()))
        return tuple(parts)

    def key(self) -> str:
        """Hex digest of :meth:`fingerprint` — dict and file-name safe."""
        return hashlib.sha256(
            repr(self.fingerprint()).encode("utf-8")
        ).hexdigest()

    def execute(self) -> Measurement | NativeBaseline | FanoutProfile:
        """Run this cell (in the current process, via the memoised runner)."""
        if self.kind == "measure":
            assert self.config is not None
            return measure(
                self.resolve(), self.config, scale=self.scale, fuel=self.fuel
            )
        if self.kind == "native":
            assert self.profile is not None
            return run_native(
                self.resolve(), self.profile, scale=self.scale, fuel=self.fuel
            )
        return collect_fanout(self.resolve(), scale=self.scale, fuel=self.fuel)


def measure_cell(
    workload: Workload | str,
    scale: str,
    config: SDTConfig,
    fuel: int = DEFAULT_FUEL,
) -> Cell:
    return Cell(kind="measure", workload=workload, scale=scale, fuel=fuel,
                config=config)


def native_cell(
    workload: Workload | str,
    scale: str,
    profile: ArchProfile,
    fuel: int = DEFAULT_FUEL,
) -> Cell:
    return Cell(kind="native", workload=workload, scale=scale, fuel=fuel,
                profile=profile)


def fanout_cell(
    workload: Workload | str, scale: str, fuel: int = DEFAULT_FUEL
) -> Cell:
    return Cell(kind="fanout", workload=workload, scale=scale, fuel=fuel)


# -- result (de)serialisation for the disk cache ------------------------------


def encode_result(
    result: Measurement | NativeBaseline | FanoutProfile,
) -> dict:
    """JSON-serialisable payload for a cell result (tagged by type)."""
    if isinstance(result, Measurement):
        return {"type": "measurement", "data": asdict(result)}
    if isinstance(result, NativeBaseline):
        return {"type": "native", "data": asdict(result)}
    if isinstance(result, FanoutProfile):
        sites = [
            {
                "pc": site.pc,
                "kind": site.kind,
                "targets": sorted(site.targets),
                "dispatches": site.dispatches,
            }
            for site in sorted(result.sites.values(), key=lambda s: s.pc)
        ]
        return {"type": "fanout", "data": {"sites": sites}}
    raise TypeError(f"cannot encode cell result of type {type(result)!r}")


def decode_result(
    payload: dict,
) -> Measurement | NativeBaseline | FanoutProfile:
    """Inverse of :func:`encode_result`; raises on malformed payloads."""
    kind = payload["type"]
    data = payload["data"]
    if kind == "measurement":
        return Measurement(**data)
    if kind == "native":
        return NativeBaseline(**data)
    if kind == "fanout":
        return FanoutProfile(
            sites={
                site["pc"]: SiteProfile(
                    pc=site["pc"],
                    kind=site["kind"],
                    targets=set(site["targets"]),
                    dispatches=site["dispatches"],
                )
                for site in data["sites"]
            }
        )
    raise ValueError(f"unknown cell result type {kind!r}")
