"""Static-vs-dynamic indirect-branch fan-out cross-validation.

Runs a workload under the reference interpreter with the E1/E11 fan-out
observer, then joins every *dynamic* IB site against the *static*
classification from :mod:`repro.analysis`.  For each site the static
fan-out bound must be a sound upper bound:

- the dynamic fan-out count must not exceed the static bound, and
- when the static target set was recovered exactly, every dynamic target
  must be a member of it.

A violation means either the analyzer's recovery is wrong or the VM
executed control flow the image cannot express — so this is a correctness
oracle for both.  The report also quantifies *over*-approximation (bound
slack), which is the price of soundness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.classify import StaticAnalysis, analyze_program
from repro.analysis.targets import (
    TargetSetReport,
    VERDICT_UNKNOWN,
    build_report,
)
from repro.eval.fanout import FanoutProfile, collect_fanout
from repro.workloads import Workload, get_workload, workload_names


@dataclass(frozen=True, slots=True)
class SiteValidation:
    """Join of one IB site's static bound and dynamic behaviour."""

    pc: int
    kind: str                 # "ijump" | "icall" | "ret"
    role: str                 # static classification
    bounded: bool             # non-trivial static bound
    static_bound: int
    dynamic_fanout: int
    dispatches: int
    missing_targets: tuple[int, ...]   # dynamic targets outside the static set
    #: target-set verdict from repro.analysis.targets
    verdict: str = VERDICT_UNKNOWN
    verdict_bound: int = 0
    #: dynamic targets outside the *verdict's* set (must be empty unless
    #: the verdict is unknown — the tentpole soundness gate)
    verdict_missing: tuple[int, ...] = ()

    @property
    def sound(self) -> bool:
        return (
            self.dynamic_fanout <= self.static_bound
            and not self.missing_targets
            and not self.verdict_missing
        )

    @property
    def slack(self) -> int:
        """Over-approximation: bound minus observed fan-out."""
        return self.static_bound - self.dynamic_fanout

    @property
    def verdict_slack(self) -> int:
        """Over-approximation of the verdict set (precision measure)."""
        if self.verdict == VERDICT_UNKNOWN:
            return self.slack
        return self.verdict_bound - self.dynamic_fanout


@dataclass(slots=True)
class CrossValidation:
    """Whole-workload cross-validation result."""

    workload: str
    scale: str
    sites: list[SiteValidation]
    #: static sites the run never exercised (not a soundness issue)
    unexercised: int
    #: dynamic site pcs with no static site at all (always a bug)
    unknown_dynamic: tuple[int, ...]

    @property
    def all_sound(self) -> bool:
        return not self.unknown_dynamic and all(site.sound for site in self.sites)

    @property
    def violations(self) -> list[SiteValidation]:
        return [site for site in self.sites if not site.sound]

    @property
    def predicted_dispatch_share(self) -> float:
        """Dispatch-weighted fraction of dynamic IB resolutions the
        target-set analysis predicted (verdict not unknown and no
        escaping targets) — the static-vs-dynamic precision metric."""
        total = sum(site.dispatches for site in self.sites)
        if not total:
            return 0.0
        predicted = sum(
            site.dispatches
            for site in self.sites
            if site.verdict != VERDICT_UNKNOWN and not site.verdict_missing
        )
        return predicted / total

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "all_sound": self.all_sound,
            "sites": len(self.sites),
            "predicted_dispatch_share": round(
                self.predicted_dispatch_share, 6
            ),
            "unexercised_static_sites": self.unexercised,
            "unknown_dynamic_sites": list(self.unknown_dynamic),
            "violations": [
                {
                    "pc": site.pc,
                    "kind": site.kind,
                    "role": site.role,
                    "static_bound": site.static_bound,
                    "dynamic_fanout": site.dynamic_fanout,
                    "missing_targets": list(site.missing_targets),
                    "verdict": site.verdict,
                    "verdict_missing": list(site.verdict_missing),
                }
                for site in self.violations
            ],
            "per_site": [
                {
                    "pc": site.pc,
                    "kind": site.kind,
                    "role": site.role,
                    "bounded": site.bounded,
                    "static_bound": site.static_bound,
                    "dynamic_fanout": site.dynamic_fanout,
                    "dispatches": site.dispatches,
                    "slack": site.slack,
                    "sound": site.sound,
                    "verdict": site.verdict,
                    "verdict_bound": site.verdict_bound,
                    "verdict_slack": site.verdict_slack,
                }
                for site in self.sites
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def format(self, limit: int = 10) -> str:
        verdict = "SOUND" if self.all_sound else "UNSOUND"
        lines = [
            f"{self.workload} [{self.scale}]: {len(self.sites)} exercised "
            f"IB sites, {self.unexercised} unexercised — {verdict} "
            f"(predicted {self.predicted_dispatch_share:.1%} of dispatches)",
        ]
        if self.unknown_dynamic:
            lines.append(
                "  dynamic sites missing from static analysis: "
                + ", ".join(f"{pc:#x}" for pc in self.unknown_dynamic)
            )
        for site in self.violations:
            lines.append(
                f"  VIOLATION {site.role} @ {site.pc:#010x}: "
                f"bound={site.static_bound} < fanout={site.dynamic_fanout} "
                f"or targets escape"
            )
        shown = sorted(self.sites, key=lambda s: -s.dispatches)[:limit]
        for site in shown:
            tag = "" if site.bounded else " (trivial bound)"
            lines.append(
                f"  {site.role:13s} @ {site.pc:#010x}: "
                f"fanout {site.dynamic_fanout}/{site.static_bound} "
                f"(slack {site.slack}), {site.dispatches} dispatches, "
                f"verdict {site.verdict}({site.verdict_bound}){tag}"
            )
        if len(self.sites) > limit:
            lines.append(f"  ... {len(self.sites) - limit} more site(s)")
        return "\n".join(lines)


def join_static_dynamic(
    analysis: StaticAnalysis,
    profile: FanoutProfile,
    workload: str = "?",
    scale: str = "?",
    report: TargetSetReport | None = None,
) -> CrossValidation:
    """Join a static analysis against a dynamic fan-out profile.

    When a :class:`TargetSetReport` is given, every site's verdict set is
    additionally checked against the observed targets (``verdict_missing``
    must stay empty — the tentpole soundness gate).
    """
    sites: list[SiteValidation] = []
    unknown: list[int] = []
    for pc, dyn in sorted(profile.sites.items()):
        static = analysis.sites.get(pc)
        if static is None:
            unknown.append(pc)
            continue
        missing: tuple[int, ...] = ()
        if static.bounded:
            missing = tuple(sorted(dyn.targets - set(static.targets)))
        verdict = VERDICT_UNKNOWN
        verdict_bound = 0
        verdict_missing: tuple[int, ...] = ()
        if report is not None:
            v = report.verdicts.get(pc)
            if v is not None:
                verdict = v.verdict
                verdict_bound = len(v.targets)
                if v.verdict != VERDICT_UNKNOWN:
                    verdict_missing = tuple(
                        sorted(dyn.targets - set(v.targets))
                    )
        sites.append(
            SiteValidation(
                pc=pc,
                kind=dyn.kind,
                role=static.role,
                bounded=static.bounded,
                static_bound=static.bound,
                dynamic_fanout=dyn.fanout,
                dispatches=dyn.dispatches,
                missing_targets=missing,
                verdict=verdict,
                verdict_bound=verdict_bound,
                verdict_missing=verdict_missing,
            )
        )
    unexercised = len(analysis.sites) - len(sites)
    return CrossValidation(
        workload=workload,
        scale=scale,
        sites=sites,
        unexercised=unexercised,
        unknown_dynamic=tuple(unknown),
    )


def cross_validate(
    workload: Workload | str,
    scale: str = "small",
    fuel: int = 30_000_000,
) -> CrossValidation:
    """Run one workload and cross-validate static bounds against it."""
    if isinstance(workload, str):
        workload = get_workload(workload, scale)
    program = workload.compile()
    analysis = analyze_program(program)
    report = build_report(program, analysis=analysis)
    profile = collect_fanout(workload, scale=scale, fuel=fuel)
    return join_static_dynamic(
        analysis, profile, workload=workload.name, scale=scale,
        report=report,
    )


def cross_validate_suite(
    scale: str = "small", fuel: int = 30_000_000
) -> list[CrossValidation]:
    """Cross-validate every registered workload."""
    return [
        cross_validate(name, scale=scale, fuel=fuel)
        for name in workload_names()
    ]
