"""Content-addressed on-disk cache for experiment cell results.

Layout: ``<root>/<key[:2]>/<key[2:]>.json``, where ``key`` is the SHA-256
of the cell's full fingerprint (workload source, scale, fuel, complete
config/profile field set, and a code-version salt — see
:meth:`repro.eval.cells.Cell.fingerprint`).  Each entry stores the
fingerprint alongside the payload and is only served when it matches the
requesting cell exactly, so a stale or colliding entry can never be
trusted.

Writes are atomic (temp file in the same directory, then ``os.replace``),
so a crashed or concurrent writer leaves either the old entry or the new
one, never a torn file.  Loads are corruption-tolerant: any entry that
fails to parse or validate is discarded and recomputed.  Concurrent
multi-process access is safe by construction: readers see either the old
or the new complete entry (tests/test_eval_diskcache.py stresses this
with racing writer/reader processes).

An optional in-memory LRU tier (``lru_entries > 0``) sits read-through
in front of the files, so a hot serving loop — the ``repro-sdt serve``
daemon — answers repeated lookups without touching the filesystem.  The
tier is a pure cache of immutable results keyed by the same complete
fingerprint digest, so it can never serve a stale or aliased entry
either; it is process-local and never consulted for invalidation.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.eval.cells import Cell, decode_result, encode_result

#: Default cache root, next to the experiment artefacts.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


class _LruTier:
    """Bounded in-memory key→result map with LRU eviction (thread-safe)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            try:
                self._entries.move_to_end(key)
            except KeyError:
                return None
            return self._entries[key]

    def put(self, key: str, result: object) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DiskCache:
    """Persistent cell-result store with hit/miss accounting.

    ``lru_entries > 0`` adds the read-through memory tier: ``get`` serves
    from memory when it can (counted in ``memory_hits``), falls back to
    the files and populates the tier on a disk hit; ``put`` fills both.
    """

    def __init__(self, root: Path | str | None = None,
                 lru_entries: int = 0) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.lru = _LruTier(lru_entries) if lru_entries > 0 else None

    def path_for(self, cell: Cell) -> Path:
        key = cell.key()
        return self.root / key[:2] / f"{key[2:]}.json"

    def get(self, cell: Cell):
        """The cached result for ``cell``, or ``None``.

        A missing entry is a plain miss; a present-but-invalid entry
        (truncated JSON, wrong shape, fingerprint mismatch) is deleted
        and reported as a miss so the caller recomputes it.
        """
        key = cell.key()
        if self.lru is not None:
            cached = self.lru.get(key)
            if cached is not None:
                self.hits += 1
                self.memory_hits += 1
                return cached
        path = self.root / key[:2] / f"{key[2:]}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("fingerprint") != repr(cell.fingerprint()):
                raise ValueError("fingerprint mismatch")
            result = decode_result(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, TypeError, KeyError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        if self.lru is not None:
            self.lru.put(key, result)
        return result

    def put(self, cell: Cell, result) -> None:
        """Persist ``result`` for ``cell`` atomically."""
        if self.lru is not None:
            self.lru.put(cell.key(), result)
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"fingerprint": repr(cell.fingerprint())}
        payload.update(encode_result(result))
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
