"""Content-addressed on-disk cache for experiment cell results.

Layout: ``<root>/<key[:2]>/<key[2:]>.json``, where ``key`` is the SHA-256
of the cell's full fingerprint (workload source, scale, fuel, complete
config/profile field set, and a code-version salt — see
:meth:`repro.eval.cells.Cell.fingerprint`).  Each entry stores the
fingerprint alongside the payload and is only served when it matches the
requesting cell exactly, so a stale or colliding entry can never be
trusted.

Writes are atomic (temp file in the same directory, then ``os.replace``),
so a crashed or concurrent writer leaves either the old entry or the new
one, never a torn file.  Loads are corruption-tolerant: any entry that
fails to parse or validate is discarded and recomputed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.eval.cells import Cell, decode_result, encode_result

#: Default cache root, next to the experiment artefacts.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


class DiskCache:
    """Persistent cell-result store with hit/miss accounting."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0

    def path_for(self, cell: Cell) -> Path:
        key = cell.key()
        return self.root / key[:2] / f"{key[2:]}.json"

    def get(self, cell: Cell):
        """The cached result for ``cell``, or ``None``.

        A missing entry is a plain miss; a present-but-invalid entry
        (truncated JSON, wrong shape, fingerprint mismatch) is deleted
        and reported as a miss so the caller recomputes it.
        """
        path = self.path_for(cell)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("fingerprint") != repr(cell.fingerprint()):
                raise ValueError("fingerprint mismatch")
            result = decode_result(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, TypeError, KeyError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cell: Cell, result) -> None:
        """Persist ``result`` for ``cell`` atomically."""
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"fingerprint": repr(cell.fingerprint())}
        payload.update(encode_result(result))
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
