"""Parallel + persistent experiment executor.

Fans deduplicated experiment cells across a process pool
(:class:`concurrent.futures.ProcessPoolExecutor`), optionally backed by
the on-disk result cache in :mod:`repro.eval.diskcache`.  Determinism is
structural: results are collected into a mapping keyed by cell
fingerprint and each experiment's ``build`` assembles its table in
declared cell order, so tables (and the CSVs written from them) are
byte-identical whatever the worker count or completion order.

Flow per batch: dedup cells by fingerprint (first-seen order), serve
what the disk cache already has, dispatch only the misses (serially
in-process when ``jobs <= 1``, so the runner's memo caches still apply),
then persist every newly computed result from the parent — workers never
write the cache, which keeps persistence single-writer and atomic.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.eval.cells import Cell
from repro.eval.diskcache import DiskCache

#: Progress callback: called once per unique cell as its result lands.
ProgressFn = Callable[["CellEvent"], None]


@dataclass(frozen=True)
class CellEvent:
    """One unique cell finished (served from cache or simulated)."""

    index: int          #: 1-based position among unique cells
    total: int          #: unique cell count in this batch
    label: str          #: human-readable cell identity
    source: str         #: ``"cache"`` or ``"run"``
    seconds: float      #: simulation wall time (0.0 for cache hits)


@dataclass
class ExecutionReport:
    """Accounting for one executor batch."""

    requested: int = 0      #: cells asked for, including duplicates
    unique: int = 0         #: cells after fingerprint dedup
    cache_hits: int = 0     #: unique cells served from the disk cache
    computed: int = 0       #: unique cells actually simulated
    elapsed: float = 0.0    #: wall time for the whole batch
    cell_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Disk-cache hit rate over unique cells (0.0 for empty batches)."""
        return self.cache_hits / self.unique if self.unique else 0.0


def dedup_cells(cells: Iterable[Cell]) -> dict[str, Cell]:
    """Unique cells keyed by fingerprint digest, in first-seen order."""
    unique: dict[str, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key(), cell)
    return unique


def _execute_cell(cell: Cell) -> tuple[object, float]:
    """Worker entry point: run one cell, return (result, seconds)."""
    start = time.perf_counter()
    result = cell.execute()
    return result, time.perf_counter() - start


def execute_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
) -> tuple[dict[str, object], ExecutionReport]:
    """Execute a batch of cells; returns ``(results_by_key, report)``.

    ``results_by_key`` maps every requested cell's :meth:`Cell.key` to
    its result (duplicates share one entry).  ``jobs <= 1`` runs
    serially in-process; larger values fan misses across that many
    worker processes.
    """
    start = time.perf_counter()
    cell_list = list(cells)
    unique = dedup_cells(cell_list)
    report = ExecutionReport(requested=len(cell_list), unique=len(unique))
    results: dict[str, object] = {}

    pending: list[tuple[str, Cell]] = []
    for key, cell in unique.items():
        cached = cache.get(cell) if cache is not None else None
        if cached is not None:
            results[key] = cached
            report.cache_hits += 1
        else:
            pending.append((key, cell))

    def finish(key: str, cell: Cell, result: object, seconds: float) -> None:
        results[key] = result
        report.computed += 1
        report.cell_seconds[key] = seconds
        if cache is not None:
            cache.put(cell, result)

    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    (key, cell, pool.submit(_execute_cell, cell))
                    for key, cell in pending
                ]
                for key, cell, future in futures:
                    result, seconds = future.result()
                    finish(key, cell, result, seconds)
        else:
            for key, cell in pending:
                result, seconds = _execute_cell(cell)
                finish(key, cell, result, seconds)

    if progress is not None:
        total = len(unique)
        for index, (key, cell) in enumerate(unique.items(), start=1):
            seconds = report.cell_seconds.get(key)
            progress(CellEvent(
                index=index,
                total=total,
                label=cell.label,
                source="cache" if seconds is None else "run",
                seconds=seconds or 0.0,
            ))

    report.elapsed = time.perf_counter() - start
    return results, report


# -- experiment-level entry points --------------------------------------------


def plan_cells(
    names: Iterable[str], scale: str
) -> tuple[dict[str, list[Cell]], dict[str, Cell]]:
    """Cell lists per experiment plus the cross-experiment unique set.

    The unique set is what actually gets dispatched: shared cells (the
    ``ibtc(shared,4096)`` column appears in E3, E6 and E7, E9 reuses the
    whole E3 grid, …) are simulated once.
    """
    from repro.eval.experiments import EXPERIMENT_SPECS

    per_experiment: dict[str, list[Cell]] = {}
    for name in names:
        try:
            spec = EXPERIMENT_SPECS[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; "
                f"available: {sorted(EXPERIMENT_SPECS)}"
            ) from None
        per_experiment[name] = spec.cells(scale)
    unique = dedup_cells(
        cell for cells in per_experiment.values() for cell in cells
    )
    return per_experiment, unique


def run_experiments(
    names: Iterable[str],
    scale: str | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
    results_dir: Path | None = None,
    write: bool = True,
) -> tuple[dict[str, tuple[list[str], list[list[object]]]], ExecutionReport]:
    """Run experiment drivers on the shared executor.

    Cells are deduplicated *across* the selected experiments before
    dispatch.  Each experiment's table is then assembled in its declared
    cell order and (by default) persisted via
    :func:`repro.eval.report.write_results`.  Returns
    ``({name: (headers, rows)}, report)``.
    """
    from repro.eval.experiments import EXPERIMENT_SPECS, bench_scale
    from repro.eval.report import write_results

    names = list(names)
    scale = scale or bench_scale()
    per_experiment, _unique = plan_cells(names, scale)
    all_cells = [
        cell for cells in per_experiment.values() for cell in cells
    ]
    results, report = execute_cells(
        all_cells, jobs=jobs, cache=cache, progress=progress
    )

    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    for name in names:
        spec = EXPERIMENT_SPECS[name]

        def lookup(cell: Cell) -> object:
            return results[cell.key()]

        headers, rows = spec.build(lookup, scale)
        if write:
            write_results(spec.slug, spec.title(scale), headers, rows,
                          results_dir=results_dir)
        tables[name] = (headers, rows)
    return tables, report


def run_experiment(
    name: str,
    scale: str | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
    results_dir: Path | None = None,
    write: bool = True,
) -> tuple[list[str], list[list[object]]]:
    """Single-experiment convenience wrapper around :func:`run_experiments`."""
    tables, _report = run_experiments(
        [name], scale=scale, jobs=jobs, cache=cache, progress=progress,
        results_dir=results_dir, write=write,
    )
    return tables[name]


__all__ = [
    "CellEvent",
    "ExecutionReport",
    "dedup_cells",
    "execute_cells",
    "plan_cells",
    "run_experiment",
    "run_experiments",
]
