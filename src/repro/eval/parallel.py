"""Parallel + persistent experiment executor.

Fans deduplicated experiment cells across a process pool
(:class:`concurrent.futures.ProcessPoolExecutor`), optionally backed by
the on-disk result cache in :mod:`repro.eval.diskcache`.  Determinism is
structural: results are collected into a mapping keyed by cell
fingerprint and each experiment's ``build`` assembles its table in
declared cell order, so tables (and the CSVs written from them) are
byte-identical whatever the worker count or completion order.

Flow per batch: dedup cells by fingerprint (first-seen order), serve
what the disk cache already has, dispatch only the misses (serially
in-process when ``jobs <= 1``, so the runner's memo caches still apply),
then persist every newly computed result from the parent — workers never
write the cache, which keeps persistence single-writer and atomic.

The executor is *hardened*: a cell that raises is retried with
exponential backoff and then quarantined; a worker process that dies
(segfault, ``os._exit``, OOM-kill) breaks only the cells that were in
flight, not the run — the pool is rebuilt and the survivors resubmitted;
a per-cell watchdog ``timeout`` turns a hung worker into a terminated
process and a quarantined cell.  Failures land in
:attr:`ExecutionReport.failures` in declared cell order, so a degraded
batch still yields a byte-deterministic partial report.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.eval.backoff import Backoff, BackoffPolicy
from repro.eval.cells import Cell
from repro.eval.diskcache import DiskCache

#: Progress callback: called once per unique cell as its result lands.
ProgressFn = Callable[["CellEvent"], None]

#: Default bounded-retry budget: attempts beyond the first per cell.
DEFAULT_RETRIES = 2

#: Default base of the exponential inter-round backoff, in seconds.
DEFAULT_BACKOFF = 0.25

#: Ceiling on any single backoff sleep, in seconds.
MAX_BACKOFF = 30.0


def _backoff_policy(backoff: "float | BackoffPolicy") -> BackoffPolicy:
    """Normalise the executor's ``backoff`` argument to a policy."""
    if isinstance(backoff, BackoffPolicy):
        return backoff
    return BackoffPolicy(base=float(backoff), ceiling=MAX_BACKOFF)


@dataclass(frozen=True)
class CellEvent:
    """One unique cell finished (served from cache or simulated)."""

    index: int          #: 1-based position among unique cells
    total: int          #: unique cell count in this batch
    label: str          #: human-readable cell identity
    source: str         #: ``"cache"``, ``"run"`` or ``"failed"``
    seconds: float      #: simulation wall time (0.0 for cache hits)


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: its retry budget is spent, the batch goes on."""

    key: str            #: the cell's fingerprint digest
    label: str          #: human-readable cell identity
    kind: str           #: ``"error"``, ``"timeout"`` or ``"crash"``
    attempts: int       #: executions charged against the cell
    error: str          #: stable one-line description of the last failure


class MissingCellResult(KeyError):
    """An experiment table asked for a cell that failed (or was never run)."""


@dataclass
class ExecutionReport:
    """Accounting for one executor batch."""

    requested: int = 0      #: cells asked for, including duplicates
    unique: int = 0         #: cells after fingerprint dedup
    cache_hits: int = 0     #: unique cells served from the disk cache
    computed: int = 0       #: unique cells actually simulated
    elapsed: float = 0.0    #: wall time for the whole batch
    cell_seconds: dict[str, float] = field(default_factory=dict)
    retries: int = 0        #: re-executions granted across all cells
    #: quarantined cells by key, in declared (deduped) cell order
    failures: dict[str, CellFailure] = field(default_factory=dict)
    #: degraded experiments: name -> sorted labels of its failed cells
    degraded: dict[str, list[str]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Disk-cache hit rate over unique cells (0.0 for empty batches)."""
        return self.cache_hits / self.unique if self.unique else 0.0

    @property
    def ok(self) -> bool:
        """True when every requested cell produced a result."""
        return not self.failures


def dedup_cells(cells: Iterable[Cell]) -> dict[str, Cell]:
    """Unique cells keyed by fingerprint digest, in first-seen order."""
    unique: dict[str, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key(), cell)
    return unique


def _execute_cell(cell: Cell) -> tuple[object, float]:
    """Worker entry point: run one cell, return (result, seconds)."""
    start = time.perf_counter()
    result = cell.execute()
    return result, time.perf_counter() - start


def _stable_error(exc: BaseException) -> str:
    """One-line, reproducible rendering of a failure (no addresses)."""
    text = str(exc).strip().splitlines()
    return f"{type(exc).__name__}: {text[0] if text else ''}".rstrip(": ")


def _shutdown_pool(pool: ProcessPoolExecutor, force: bool) -> None:
    """Dispose of a pool; ``force`` also terminates hung worker processes."""
    if not force:
        pool.shutdown(wait=True)
        return
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
        except Exception:
            pass  # already reaped, or not ours to kill


def _run_serial(
    pending: list[tuple[str, Cell]],
    retries: int,
    policy: BackoffPolicy,
    finish: Callable[[str, Cell, object, float], None],
    fail: Callable[[str, Cell, str, int, BaseException], None],
    report: ExecutionReport,
) -> None:
    """In-process execution with bounded retry (no watchdog possible)."""
    for key, cell in pending:
        pacer = Backoff(policy, token=key)
        for attempt in range(1, retries + 2):
            try:
                result, seconds = _execute_cell(cell)
            except Exception as exc:
                if attempt <= retries:
                    report.retries += 1
                    pacer.sleep()
                    continue
                fail(key, cell, "error", attempt, exc)
            else:
                finish(key, cell, result, seconds)
            break


def _run_pooled(
    pending: list[tuple[str, Cell]],
    jobs: int,
    timeout: float | None,
    retries: int,
    policy: BackoffPolicy,
    finish: Callable[[str, Cell, object, float], None],
    fail: Callable[[str, Cell, str, int, BaseException], None],
    report: ExecutionReport,
    mp_context=None,
) -> None:
    """Process-pool execution with watchdog, retry and crash recovery.

    Runs in *rounds*: each round owns a fresh pool.  A round ends early
    when a worker hangs past ``timeout`` (the pool is torn down and its
    processes terminated) or dies (``BrokenProcessPool``).  Cells that
    finished before the incident keep their results; cells that were in
    flight during a crash are charged an attempt (one of them is the
    killer, and the innocents win their retries on the next, clean
    round); cells that merely lost their pool to someone else's timeout
    are resubmitted free of charge.
    """
    attempts: dict[str, int] = {key: 0 for key, _ in pending}
    queue = list(pending)
    pacer = Backoff(policy)
    while queue:
        retry_queue: list[tuple[str, Cell]] = []
        dead = False        # pool unusable for the rest of this round
        blame_rest = False  # crash round: unfinished cells are charged

        def charge(key: str, cell: Cell, kind: str,
                   exc: BaseException) -> None:
            attempts[key] += 1
            if attempts[key] <= retries:
                report.retries += 1
                retry_queue.append((key, cell))
            else:
                fail(key, cell, kind, attempts[key], exc)

        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context)
        try:
            submitted: list[tuple[str, Cell, object]] = []
            try:
                for key, cell in queue:
                    submitted.append(
                        (key, cell, pool.submit(_execute_cell, cell))
                    )
            except BrokenProcessPool:
                dead = True
                blame_rest = True
            for key, cell, future in submitted:
                if not dead:
                    try:
                        result, seconds = future.result(timeout=timeout)
                        finish(key, cell, result, seconds)
                        continue
                    except FuturesTimeout:
                        dead = True
                        charge(key, cell, "timeout", TimeoutError(
                            f"no result within {timeout:g}s "
                            f"(worker terminated)"
                        ))
                        continue
                    except BrokenProcessPool as exc:
                        dead = True
                        blame_rest = True
                        charge(key, cell, "crash", exc)
                        continue
                    except Exception as exc:
                        charge(key, cell, "error", exc)
                        continue
                # pool is gone: harvest what finished, reschedule the rest
                if future.done() and not future.cancelled():
                    try:
                        result, seconds = future.result(timeout=0)
                        finish(key, cell, result, seconds)
                        continue
                    except BrokenProcessPool as exc:
                        if blame_rest:
                            charge(key, cell, "crash", exc)
                        else:
                            retry_queue.append((key, cell))
                        continue
                    except Exception as exc:
                        charge(key, cell, "error", exc)
                        continue
                future.cancel()
                if blame_rest:
                    charge(key, cell, "crash",
                           BrokenProcessPool("worker pool died"))
                else:
                    retry_queue.append((key, cell))
            # cells we never managed to submit: free retry
            retry_queue.extend(queue[len(submitted):])
        finally:
            _shutdown_pool(pool, force=dead)
        if retry_queue:
            pacer.sleep()
        queue = retry_queue


def execute_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff: "float | BackoffPolicy" = DEFAULT_BACKOFF,
    mp_context=None,
) -> tuple[dict[str, object], ExecutionReport]:
    """Execute a batch of cells; returns ``(results_by_key, report)``.

    ``results_by_key`` maps every requested cell's :meth:`Cell.key` to
    its result (duplicates share one entry); cells listed in
    ``report.failures`` have no entry.  ``jobs <= 1`` runs serially
    in-process; larger values fan misses across that many worker
    processes.  ``timeout`` is the per-cell watchdog in seconds (it
    forces pool execution even for ``jobs == 1``, since a hung cell can
    only be killed from outside its process) — external callers with
    their own deadlines, e.g. the serve daemon, pass the remaining
    deadline here so a client timeout *kills* the worker instead of
    orphaning it; ``retries`` bounds re-execution of failing cells, with
    exponential ``backoff`` (a base in seconds, or a full
    :class:`repro.eval.backoff.BackoffPolicy`) between rounds.
    Uncacheable cells (fault-injected measurements) skip the disk cache
    in both directions.  ``mp_context`` selects the multiprocessing
    start method for worker pools (default: the platform's) — callers
    that execute from a *multithreaded* process (the serve daemon's
    dispatcher thread) must pass a fork-safe context such as
    ``forkserver``, because fork-starting workers from a threaded parent
    can deadlock the child.
    """
    start = time.perf_counter()
    cell_list = list(cells)
    unique = dedup_cells(cell_list)
    report = ExecutionReport(requested=len(cell_list), unique=len(unique))
    results: dict[str, object] = {}
    failed: dict[str, CellFailure] = {}

    pending: list[tuple[str, Cell]] = []
    for key, cell in unique.items():
        cacheable = getattr(cell, "cacheable", True)
        cached = cache.get(cell) if cache is not None and cacheable else None
        if cached is not None:
            results[key] = cached
            report.cache_hits += 1
        else:
            pending.append((key, cell))

    def finish(key: str, cell: Cell, result: object, seconds: float) -> None:
        results[key] = result
        report.computed += 1
        report.cell_seconds[key] = seconds
        if cache is not None and getattr(cell, "cacheable", True):
            cache.put(cell, result)

    def fail(key: str, cell: Cell, kind: str, attempts: int,
             exc: BaseException) -> None:
        failed[key] = CellFailure(
            key=key, label=cell.label, kind=kind, attempts=attempts,
            error=_stable_error(exc),
        )

    if pending:
        policy = _backoff_policy(backoff)
        if jobs > 1 or timeout is not None:
            _run_pooled(pending, max(1, jobs), timeout, retries, policy,
                        finish, fail, report, mp_context=mp_context)
        else:
            _run_serial(pending, retries, policy, finish, fail, report)

    # deterministic failure order: declared (deduped) cell order, not
    # the completion order the incident happened to produce
    report.failures = {
        key: failed[key] for key in unique if key in failed
    }

    if progress is not None:
        total = len(unique)
        for index, (key, cell) in enumerate(unique.items(), start=1):
            seconds = report.cell_seconds.get(key)
            if key in report.failures:
                source = "failed"
            elif seconds is None:
                source = "cache"
            else:
                source = "run"
            progress(CellEvent(
                index=index,
                total=total,
                label=cell.label,
                source=source,
                seconds=seconds or 0.0,
            ))

    report.elapsed = time.perf_counter() - start
    return results, report


# -- experiment-level entry points --------------------------------------------


def plan_cells(
    names: Iterable[str], scale: str
) -> tuple[dict[str, list[Cell]], dict[str, Cell]]:
    """Cell lists per experiment plus the cross-experiment unique set.

    The unique set is what actually gets dispatched: shared cells (the
    ``ibtc(shared,4096)`` column appears in E3, E6 and E7, E9 reuses the
    whole E3 grid, …) are simulated once.
    """
    from repro.eval.experiments import EXPERIMENT_SPECS

    per_experiment: dict[str, list[Cell]] = {}
    for name in names:
        try:
            spec = EXPERIMENT_SPECS[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; "
                f"available: {sorted(EXPERIMENT_SPECS)}"
            ) from None
        per_experiment[name] = spec.cells(scale)
    unique = dedup_cells(
        cell for cells in per_experiment.values() for cell in cells
    )
    return per_experiment, unique


def run_experiments(
    names: Iterable[str],
    scale: str | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
    results_dir: Path | None = None,
    write: bool = True,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff: "float | BackoffPolicy" = DEFAULT_BACKOFF,
) -> tuple[dict[str, tuple[list[str], list[list[object]]]], ExecutionReport]:
    """Run experiment drivers on the shared executor.

    Cells are deduplicated *across* the selected experiments before
    dispatch.  Each experiment's table is then assembled in its declared
    cell order and (by default) persisted via
    :func:`repro.eval.report.write_results`.  Returns
    ``({name: (headers, rows)}, report)``.

    Degraded mode: when cells fail despite the executor's retries, the
    experiments that needed them get a deterministic placeholder table
    (naming each failed cell, in sorted order) instead of a partial
    results file — their on-disk results are left untouched — and are
    listed in ``report.degraded``.  Experiments whose cells all
    succeeded are built and written normally.
    """
    from repro.eval.experiments import EXPERIMENT_SPECS, bench_scale
    from repro.eval.report import write_results

    names = list(names)
    scale = scale or bench_scale()
    per_experiment, _unique = plan_cells(names, scale)
    all_cells = [
        cell for cells in per_experiment.values() for cell in cells
    ]
    results, report = execute_cells(
        all_cells, jobs=jobs, cache=cache, progress=progress,
        timeout=timeout, retries=retries, backoff=backoff,
    )

    tables: dict[str, tuple[list[str], list[list[object]]]] = {}
    for name in names:
        spec = EXPERIMENT_SPECS[name]

        failed_labels = sorted({
            report.failures[cell.key()].label
            for cell in per_experiment[name]
            if cell.key() in report.failures
        })
        if failed_labels:
            report.degraded[name] = failed_labels
            headers = ["experiment", "status"]
            rows: list[list[object]] = [
                [name, f"DEGRADED: {len(failed_labels)} cell(s) failed"]
            ]
            rows.extend([name, f"failed: {label}"]
                        for label in failed_labels)
            tables[name] = (headers, rows)
            continue

        def lookup(cell: Cell) -> object:
            try:
                return results[cell.key()]
            except KeyError:
                raise MissingCellResult(cell.label) from None

        headers, rows = spec.build(lookup, scale)
        if write:
            write_results(spec.slug, spec.title(scale), headers, rows,
                          results_dir=results_dir)
        tables[name] = (headers, rows)
    return tables, report


def run_experiment(
    name: str,
    scale: str | None = None,
    jobs: int = 1,
    cache: DiskCache | None = None,
    progress: ProgressFn | None = None,
    results_dir: Path | None = None,
    write: bool = True,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    backoff: "float | BackoffPolicy" = DEFAULT_BACKOFF,
) -> tuple[list[str], list[list[object]]]:
    """Single-experiment convenience wrapper around :func:`run_experiments`."""
    tables, _report = run_experiments(
        [name], scale=scale, jobs=jobs, cache=cache, progress=progress,
        results_dir=results_dir, write=write,
        timeout=timeout, retries=retries, backoff=backoff,
    )
    return tables[name]


__all__ = [
    "CellEvent",
    "CellFailure",
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "ExecutionReport",
    "MissingCellResult",
    "dedup_cells",
    "execute_cells",
    "plan_cells",
    "run_experiment",
    "run_experiments",
]
