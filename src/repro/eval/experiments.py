"""E1–E12: drivers that regenerate the paper's tables and figures.

Each experiment is declared in two halves so the shared executor
(:mod:`repro.eval.parallel`) can schedule, deduplicate, parallelise and
persist the underlying simulations:

- ``cells(scale)`` — the declarative list of :class:`repro.eval.cells.Cell`
  grid cells the experiment needs (duplicates across experiments are
  simulated once; e.g. E9 reuses the whole E3 grid and the
  ``ibtc(shared,4096)`` column is shared by E3/E4/E6/E9),
- ``build(lookup, scale)`` — assembles ``(headers, rows)`` from the cell
  results, in declared order, so output is byte-identical whatever the
  worker count or execution order.

The public ``eN_*`` drivers keep their historical signatures: they run
their cells serially in-process and persist the table under ``results/``
via :func:`repro.eval.report.write_results`.  See DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured notes.

The default host profile for single-architecture experiments is the
P4-like x86 profile (the paper's headline machine); E8 sweeps all three.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.eval.cells import Cell, fanout_cell, measure_cell, native_cell
from repro.eval.report import geomean
from repro.host.profile import ArchProfile, SPARC_US3, X86_K8, X86_P4
from repro.sdt.cache import DEFAULT_CAPACITY
from repro.sdt.config import SDTConfig
from repro.workloads import workload_names

DEFAULT_PROFILE = X86_P4

#: IBTC sizes swept in E3/E4/E9 (entries).
IBTC_SIZES = (16, 64, 256, 1024, 4096, 16384)
#: Sieve bucket counts swept in E5.
SIEVE_SIZES = (32, 128, 512, 2048)
#: The tuned configurations compared head-to-head in E6/E8.
BEST_IBTC = 4096
BEST_SIEVE = 512

#: ``build`` receives this: resolves a declared cell to its result.
CellLookup = Callable[[Cell], object]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, split into a cell list and a table builder."""

    name: str       #: short id ("e3")
    slug: str       #: results/ file stem ("e3_ibtc_sweep")
    title: Callable[[str], str]
    cells: Callable[[str], list[Cell]]
    build: Callable[[CellLookup, str], tuple[list[str], list[list[object]]]]


def bench_scale() -> str:
    """Workload scale for experiment runs (``REPRO_SCALE`` overrides)."""
    return os.environ.get("REPRO_SCALE", "small")


def _suite_names() -> list[str]:
    return workload_names()


def _overhead_row_foot(
    rows: list[list[object]], first_data_col: int = 1
) -> list[object]:
    """Geomean row across the numeric columns of per-workload rows."""
    foot: list[object] = ["geomean"]
    for col in range(first_data_col, len(rows[0])):
        foot.append(geomean([float(row[col]) for row in rows]))
    return foot


def _run(name: str, scale: str | None):
    """Serial in-process execution of one experiment (legacy driver body)."""
    from repro.eval.parallel import run_experiment

    return run_experiment(name, scale=scale)


# -- E1: Table 1 — indirect branch characteristics ---------------------------


def _cells_e1(scale: str) -> list[Cell]:
    return [native_cell(name, scale, DEFAULT_PROFILE)
            for name in _suite_names()]


def _build_e1(lookup: CellLookup, scale: str):
    headers = [
        "benchmark", "retired", "ijump", "icall", "ret",
        "IB total", "instrs/IB",
    ]
    rows: list[list[object]] = []
    for name in _suite_names():
        base = lookup(native_cell(name, scale, DEFAULT_PROFILE))
        total = base.indirect_branches
        rows.append(
            [
                name, base.retired, base.ijumps, base.icalls, base.rets,
                total, round(base.retired / max(total, 1), 1),
            ]
        )
    return headers, rows


def e1_ib_characteristics(scale: str | None = None):
    """Dynamic IB counts and rates per benchmark (native run)."""
    return _run("e1", scale)


# -- E2: baseline overhead (translator re-entry on every IB) -----------------


def _e2_configs() -> dict[str, SDTConfig]:
    return {
        "reentry": SDTConfig(profile=DEFAULT_PROFILE, ib="reentry"),
        "reentry+nolink": SDTConfig(
            profile=DEFAULT_PROFILE, ib="reentry", linking=False
        ),
    }


def _cells_e2(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, config)
        for name in _suite_names()
        for config in _e2_configs().values()
    ]


def _build_e2(lookup: CellLookup, scale: str):
    configs = _e2_configs()
    headers = ["benchmark"] + list(configs)
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for config in configs.values():
            row.append(lookup(measure_cell(name, scale, config)).overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e2_baseline_overhead(scale: str | None = None):
    """Slowdown of the unoptimised SDT, with and without fragment linking."""
    return _run("e2", scale)


# -- E3: shared IBTC size sweep ------------------------------------------------


def _e3_config(size: int) -> SDTConfig:
    return SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                     ibtc_entries=size, ibtc_shared=True)


def _cells_e3(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, _e3_config(size))
        for name in _suite_names()
        for size in IBTC_SIZES
    ]


def _build_e3(lookup: CellLookup, scale: str):
    headers = ["benchmark"] + [str(size) for size in IBTC_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in IBTC_SIZES:
            row.append(
                lookup(measure_cell(name, scale, _e3_config(size))).overhead
            )
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e3_ibtc_sweep(scale: str | None = None):
    """Overhead vs shared-IBTC size."""
    return _run("e3", scale)


# -- E4: shared vs per-site IBTC ------------------------------------------------

E4_SHARED_SIZES = (64, 1024, 4096)
E4_PERSITE_SIZES = (4, 16, 64)


def _e4_config(size: int, shared: bool) -> SDTConfig:
    return SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                     ibtc_entries=size, ibtc_shared=shared)


def _cells_e4(scale: str) -> list[Cell]:
    cells = []
    for name in _suite_names():
        for size in E4_SHARED_SIZES:
            cells.append(measure_cell(name, scale, _e4_config(size, True)))
        for size in E4_PERSITE_SIZES:
            cells.append(measure_cell(name, scale, _e4_config(size, False)))
    return cells


def _build_e4(lookup: CellLookup, scale: str):
    headers = (
        ["benchmark"]
        + [f"shared/{s}" for s in E4_SHARED_SIZES]
        + [f"persite/{s}" for s in E4_PERSITE_SIZES]
    )
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in E4_SHARED_SIZES:
            row.append(
                lookup(measure_cell(name, scale, _e4_config(size, True)))
                .overhead
            )
        for size in E4_PERSITE_SIZES:
            row.append(
                lookup(measure_cell(name, scale, _e4_config(size, False)))
                .overhead
            )
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e4_ibtc_scope(scale: str | None = None):
    """Shared tables vs per-site tables across sizes."""
    return _run("e4", scale)


# -- E5: sieve bucket sweep -------------------------------------------------------


def _e5_config(buckets: int) -> SDTConfig:
    return SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                     sieve_buckets=buckets)


def _cells_e5(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, _e5_config(buckets))
        for name in _suite_names()
        for buckets in SIEVE_SIZES
    ]


def _build_e5(lookup: CellLookup, scale: str):
    headers = ["benchmark"] + [str(b) for b in SIEVE_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for buckets in SIEVE_SIZES:
            row.append(
                lookup(measure_cell(name, scale, _e5_config(buckets)))
                .overhead
            )
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e5_sieve_sweep(scale: str | None = None):
    """Overhead vs sieve bucket count."""
    return _run("e5", scale)


# -- E6: tuned mechanism comparison --------------------------------------------------


def _e6_configs(profile: ArchProfile) -> dict[str, SDTConfig]:
    return {
        "reentry": SDTConfig(profile=profile, ib="reentry"),
        "ibtc": SDTConfig(profile=profile, ib="ibtc", ibtc_entries=BEST_IBTC),
        "sieve": SDTConfig(profile=profile, ib="sieve",
                           sieve_buckets=BEST_SIEVE),
        "ibtc+fastret": SDTConfig(profile=profile, ib="ibtc",
                                  ibtc_entries=BEST_IBTC, returns="fast"),
    }


def _cells_e6(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, config)
        for name in _suite_names()
        for config in _e6_configs(DEFAULT_PROFILE).values()
    ]


def _build_e6(lookup: CellLookup, scale: str):
    configs = _e6_configs(DEFAULT_PROFILE)
    headers = ["benchmark"] + list(configs)
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for config in configs.values():
            row.append(lookup(measure_cell(name, scale, config)).overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e6_mechanism_comparison(scale: str | None = None):
    """Baseline vs tuned IBTC vs tuned sieve vs IBTC+fast-returns."""
    return _run("e6", scale)


# -- E7: return handling ------------------------------------------------------------

E7_SCHEMES = ("same", "shadow", "retcache", "fast")


def _e7_config(scheme: str) -> SDTConfig:
    return SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                     ibtc_entries=BEST_IBTC, returns=scheme)


def _cells_e7(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, _e7_config(scheme))
        for name in _suite_names()
        for scheme in E7_SCHEMES
    ]


def _build_e7(lookup: CellLookup, scale: str):
    headers = ["benchmark"] + [f"ret={s}" for s in E7_SCHEMES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for scheme in E7_SCHEMES:
            row.append(
                lookup(measure_cell(name, scale, _e7_config(scheme)))
                .overhead
            )
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    return headers, rows


def e7_return_handling(scale: str | None = None):
    """Return schemes over an IBTC base configuration."""
    return _run("e7", scale)


# -- E8: cross-architecture sensitivity ------------------------------------------------

E8_PROFILES = (X86_P4, X86_K8, SPARC_US3)


def _cells_e8(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, config)
        for profile in E8_PROFILES
        for config in _e6_configs(profile).values()
        for name in _suite_names()
    ]


def _build_e8(lookup: CellLookup, scale: str):
    config_names = list(_e6_configs(X86_P4))
    headers = ["profile"] + config_names + ["winner"]
    rows: list[list[object]] = []
    for profile in E8_PROFILES:
        configs = _e6_configs(profile)
        row: list[object] = [profile.name]
        means = []
        for config in configs.values():
            overheads = [
                lookup(measure_cell(name, scale, config)).overhead
                for name in _suite_names()
            ]
            means.append(geomean(overheads))
        row.extend(means)
        row.append(config_names[means.index(min(means))])
        rows.append(row)
    return headers, rows


def e8_cross_arch(scale: str | None = None):
    """Geomean overhead of each mechanism under each host profile."""
    return _run("e8", scale)


# -- E9: IBTC hit rates -----------------------------------------------------------------


def _cells_e9(scale: str) -> list[Cell]:
    # the exact E3 grid: cross-experiment dedup makes E9 free after E3
    return _cells_e3(scale)


def _build_e9(lookup: CellLookup, scale: str):
    headers = ["benchmark"] + [str(size) for size in IBTC_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in IBTC_SIZES:
            m = lookup(measure_cell(name, scale, _e3_config(size)))
            mechanism = f"ibtc-shared-{size}"
            row.append(m.hit_rates.get(mechanism, 0.0))
        rows.append(row)
    return headers, rows


def e9_ibtc_hitrate(scale: str | None = None):
    """IBTC hit rate per benchmark per size (explains the E3 knee)."""
    return _run("e9", scale)


# -- E10: design-choice ablations ---------------------------------------------------


def _e10_ablations() -> dict[str, tuple[SDTConfig, SDTConfig]]:
    return {
        "ibtc inline vs outline": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, ibtc_inline=True),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, ibtc_inline=False),
        ),
        "ibtc hash fold vs shift": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=64, ibtc_hash="fold"),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=64, ibtc_hash="shift"),
        ),
        "sieve prepend vs append": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                      sieve_buckets=16, sieve_policy="prepend"),
            SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                      sieve_buckets=16, sieve_policy="append"),
        ),
        "linking on vs off": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, linking=True),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, linking=False),
        ),
        "blocks vs traces": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, trace_jumps=False),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, trace_jumps=True),
        ),
    }


def _cells_e10(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, config)
        for base_config, variant_config in _e10_ablations().values()
        for config in (base_config, variant_config)
        for name in _suite_names()
    ]


def _build_e10(lookup: CellLookup, scale: str):
    headers = ["ablation", "base", "variant", "variant/base"]
    rows: list[list[object]] = []
    for name, (base_config, variant_config) in _e10_ablations().items():
        base = geomean(
            [lookup(measure_cell(w, scale, base_config)).overhead
             for w in _suite_names()]
        )
        variant = geomean(
            [lookup(measure_cell(w, scale, variant_config)).overhead
             for w in _suite_names()]
        )
        rows.append([name, base, variant, variant / base])
    return headers, rows


def e10_ablations(scale: str | None = None):
    """Ablations of the design choices DESIGN.md calls out.

    Columns (geomean overhead over the suite):

    - IBTC probe inlined at each site vs. one shared out-of-line stub,
    - IBTC hash: xor-fold vs. plain shift/mask,
    - sieve stub insertion: MRU-prepend vs. append,
    - fragment linking on vs. off (the E2 companion, aggregated).
    """
    return _run("e10", scale)


# -- E11: per-site target fan-out ------------------------------------------------


def _cells_e11(scale: str) -> list[Cell]:
    return [fanout_cell(name, scale) for name in _suite_names()]


def _build_e11(lookup: CellLookup, scale: str):
    headers = [
        "benchmark", "IB sites", "mono", "2-4", "5-16", ">16",
        "mono disp%", ">16 disp%", "max fanout", "wmean fanout",
    ]
    rows: list[list[object]] = []
    for name in _suite_names():
        profile = lookup(fanout_cell(name, scale))
        rows.append(
            [
                name,
                len(profile.sites),
                profile.sites_with_fanout(1, 1),
                profile.sites_with_fanout(2, 4),
                profile.sites_with_fanout(5, 16),
                profile.sites_with_fanout(17),
                round(100 * profile.dispatch_share(1, 1), 1),
                round(100 * profile.dispatch_share(17), 1),
                profile.max_fanout,
                round(profile.weighted_mean_fanout, 2),
            ]
        )
    return headers, rows


def e11_site_fanout(scale: str | None = None):
    """Distribution of distinct dynamic targets per IB site.

    The paper's motivation table: most sites are monomorphic (a BTB/IBTC
    entry suffices), while a handful of megamorphic sites carry most of
    the dynamic dispatches on interpreter-style codes.
    """
    return _run("e11", scale)


# -- E12: overhead vs site fan-out (synthetic sweep) -----------------------------

E12_FANOUTS = (1, 2, 4, 8, 16, 32)
E12_ITERATIONS = {"tiny": 500, "small": 2000, "large": 8000}


def _e12_configs() -> dict[str, SDTConfig]:
    return {
        "reentry": SDTConfig(profile=DEFAULT_PROFILE, ib="reentry"),
        "ibtc": SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc"),
        "ibtc+predict": SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                                  inline_predict=True),
        "sieve": SDTConfig(profile=DEFAULT_PROFILE, ib="sieve"),
    }


def _e12_workload(fanout: int, skewed: bool, scale: str):
    from repro.workloads.microbench import dispatch_microbench

    return dispatch_microbench(
        fanout, iterations=E12_ITERATIONS[scale], skewed=skewed
    )


def _cells_e12(scale: str) -> list[Cell]:
    return [
        measure_cell(_e12_workload(fanout, skewed, scale), scale, config)
        for skewed in (False, True)
        for fanout in E12_FANOUTS
        for config in _e12_configs().values()
    ]


def _build_e12(lookup: CellLookup, scale: str):
    """Overhead of each mechanism as one site's fan-out grows.

    A controlled version of the paper's polymorphism discussion: with a
    uniform (round-robin) target pattern the host BTB — and the inline
    target prediction — collapse as fan-out passes 1, while table-based
    mechanisms only pay the hardware misprediction; a skewed pattern
    restores the cheap cases.  ``scale`` selects iteration count.
    """
    configs = _e12_configs()
    headers = ["site", *configs]
    rows: list[list[object]] = []
    for skewed in (False, True):
        for fanout in E12_FANOUTS:
            workload = _e12_workload(fanout, skewed, scale)
            label = f"{'skew' if skewed else 'unif'}/{fanout}"
            row: list[object] = [label]
            for config in configs.values():
                row.append(
                    lookup(measure_cell(workload, scale, config)).overhead
                )
            rows.append(row)
    return headers, rows


def e12_fanout_sweep(scale: str | None = None):
    """Overhead of each mechanism as one dispatch site's fan-out grows."""
    return _run("e12", scale)


# -- E13: fragment-cache pressure & fault resilience --------------------------

#: Swept fragment-cache capacities (label, bytes).  The floor must stay
#: above the largest single fragment the suite produces (~260 bytes at
#: ``max_fragment_instrs=128``), else ``FragmentTooLarge``; 8M is the
#: effectively-unbounded default.
E13_CAPACITIES: tuple[tuple[str, int], ...] = (
    ("1K", 1024),
    ("2K", 2048),
    ("4K", 4096),
    ("8M", DEFAULT_CAPACITY),
)

#: Pinned fault plan for the starred (chaos) columns.  A fixed seed makes
#: the injected fault sequence — and therefore every chaos cycle count —
#: fully reproducible; the runner still verifies each chaos run against
#: the native baseline, so regenerating E13 re-proves that injected
#: faults never change architectural results.
E13_CHAOS = "chaos:1234"


def _e13_mechs() -> dict[str, dict]:
    return {
        "reentry": dict(ib="reentry"),
        "ibtc": dict(ib="ibtc", ibtc_entries=BEST_IBTC),
        "sieve": dict(ib="sieve", sieve_buckets=BEST_SIEVE),
    }


def _e13_config(
    mech_kwargs: dict, capacity: int, faults: str | None
) -> SDTConfig:
    # faults is passed explicitly (None pins the clean columns clean even
    # under a REPRO_FAULTS environment), so E13 output is env-independent.
    return SDTConfig(
        profile=DEFAULT_PROFILE, fragment_cache_bytes=capacity,
        faults=faults, **mech_kwargs,
    )


def _cells_e13(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, _e13_config(kwargs, capacity, faults))
        for name in _suite_names()
        for kwargs in _e13_mechs().values()
        for _label, capacity in E13_CAPACITIES
        for faults in (None, E13_CHAOS)
    ]


def _build_e13(lookup: CellLookup, scale: str):
    """Overhead and flush volume vs fragment-cache capacity, clean + chaos.

    Per mechanism: geomean overhead over the suite and summed whole-cache
    flush count, fault-free and (starred) under the pinned chaos plan.
    Capacity pressure dominates at the small end; the chaos flush surplus
    (storms, drops, failed translations, demotions) stays visible even
    when the cache is effectively unbounded.
    """
    mechs = _e13_mechs()
    headers = ["capacity"]
    for mech in mechs:
        headers += [mech, "fl", f"{mech}*", "fl*"]
    rows: list[list[object]] = []
    for label, capacity in E13_CAPACITIES:
        row: list[object] = [label]
        for kwargs in mechs.values():
            for faults in (None, E13_CHAOS):
                cells = [
                    lookup(measure_cell(
                        name, scale, _e13_config(kwargs, capacity, faults)
                    ))
                    for name in _suite_names()
                ]
                row.append(geomean([m.overhead for m in cells]))
                row.append(sum(m.stats["cache_flushes"] for m in cells))
        rows.append(row)
    return headers, rows


def e13_cache_pressure(scale: str | None = None):
    """Cache-pressure sweep: overhead/flushes vs capacity, with chaos."""
    return _run("e13", scale)


# -- E14: static target-set analysis — devirtualization & preseeding ----------


def _e14_mechs() -> dict[str, dict]:
    return {
        "reentry": dict(ib="reentry"),
        "ibtc": dict(ib="ibtc", ibtc_entries=BEST_IBTC),
        "sieve": dict(ib="sieve", sieve_buckets=BEST_SIEVE),
    }


def _e14_config(mech_kwargs: dict, static: bool) -> SDTConfig:
    return SDTConfig(
        profile=DEFAULT_PROFILE, static_targets=static, **mech_kwargs,
    )


def _cells_e14(scale: str) -> list[Cell]:
    return [
        measure_cell(name, scale, _e14_config(kwargs, static))
        for name in _suite_names()
        for kwargs in _e14_mechs().values()
        for static in (False, True)
    ]


def _build_e14(lookup: CellLookup, scale: str):
    """Effect of translator-time devirtualization + IBTC/sieve preseeding.

    Per mechanism: overhead without and with ``static_targets``, plus the
    IB-dispatch cycle delta (positive = cycles saved by the static
    pipeline).  The final column is the dispatch-weighted static
    precision (share of dynamic IB resolutions whose target the analysis
    predicted); ``escaped`` dispatches would be soundness violations and
    the crossval oracle pins them to zero.  Architectural results are
    verified identical on/off by the runner for every cell.
    """
    mechs = _e14_mechs()
    headers = ["benchmark"]
    for mech in mechs:
        headers += [mech, f"{mech}+s", f"Δib({mech})"]
    headers.append("precision")
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        precision = 0.0
        for kwargs in mechs.values():
            off = lookup(measure_cell(name, scale, _e14_config(kwargs, False)))
            on = lookup(measure_cell(name, scale, _e14_config(kwargs, True)))
            row += [
                off.overhead, on.overhead,
                off.ib_overhead_cycles - on.ib_overhead_cycles,
            ]
            static = on.stats.get("static") or {}
            scored = sum(static.get(k, 0)
                         for k in ("predicted", "unpredicted", "escaped"))
            if scored:
                precision = static.get("predicted", 0) / scored
        row.append(round(precision, 4))
        rows.append(row)
    foot: list[object] = ["geomean/sum"]
    for col in range(1, len(headers) - 1):
        values = [float(row[col]) for row in rows]
        if headers[col].startswith("Δib"):
            foot.append(sum(int(v) for v in values))
        else:
            foot.append(geomean(values))
    foot.append(round(
        sum(float(row[-1]) for row in rows) / max(len(rows), 1), 4
    ))
    rows.append(foot)
    return headers, rows


def e14_static_targets(scale: str | None = None):
    """Devirtualization/preseeding delta table (static targets on/off)."""
    return _run("e14", scale)


# -- E15: code-cache coherence — invalidation policy cost ---------------------

#: Invalidation policies compared (``none`` would execute stale fragments
#: on these guests, so it is excluded by construction).
E15_POLICIES = ("flush", "page", "targeted")

#: Capacities: unconstrained, plus one E13-style pressure point so
#: coherence invalidations compound with capacity flushes.
E15_CAPACITIES: tuple[tuple[str, int], ...] = (
    ("2K", 2048),
    ("8M", DEFAULT_CAPACITY),
)


def _e15_mechs() -> dict[str, dict]:
    return {
        "reentry": dict(ib="reentry"),
        "ibtc": dict(ib="ibtc", ibtc_entries=BEST_IBTC),
        "sieve": dict(ib="sieve", sieve_buckets=BEST_SIEVE),
    }


def _e15_config(
    mech_kwargs: dict, policy: str, capacity: int
) -> SDTConfig:
    # faults pinned to None so E15 output is env-independent (cf. E13)
    return SDTConfig(
        profile=DEFAULT_PROFILE, coherence=policy,
        fragment_cache_bytes=capacity, faults=None, **mech_kwargs,
    )


def _e15_workloads(scale: str) -> list:
    from repro.workloads.coherence import coherence_suite

    return coherence_suite(scale)


def _cells_e15(scale: str) -> list[Cell]:
    return [
        measure_cell(workload, scale, _e15_config(kwargs, policy, capacity))
        for workload in _e15_workloads(scale)
        for kwargs in _e15_mechs().values()
        for policy in E15_POLICIES
        for _label, capacity in E15_CAPACITIES
    ]


def _build_e15(lookup: CellLookup, scale: str):
    """Invalidation-policy cost on the self-modifying scenario suite.

    Per (scenario, capacity, policy): overhead under each IB mechanism,
    plus the coherence counters (guest code writes seen, fragments
    selectively invalidated, whole-cache flushes) from the IBTC cell —
    the counters are mechanism-independent, only the overhead differs.
    Every cell is verified against the reference interpreter by the
    runner, so this table doubles as the coherence correctness gate:
    flush must cost the most, targeted the least, with page between.
    """
    mechs = _e15_mechs()
    headers = ["scenario", "cap", "policy"]
    headers += list(mechs)
    headers += ["writes", "inval", "flushes"]
    rows: list[list[object]] = []
    for workload in _e15_workloads(scale):
        for cap_label, capacity in E15_CAPACITIES:
            for policy in E15_POLICIES:
                row: list[object] = [workload.name, cap_label, policy]
                stats_cell = None
                for mech, kwargs in mechs.items():
                    cell = lookup(measure_cell(
                        workload, scale, _e15_config(kwargs, policy, capacity)
                    ))
                    row.append(cell.overhead)
                    if mech == "ibtc":
                        stats_cell = cell
                assert stats_cell is not None
                coherence = stats_cell.stats.get("coherence") or {}
                row += [
                    coherence.get("code_writes", 0),
                    coherence.get("fragments_invalidated", 0),
                    stats_cell.stats.get("cache_flushes", 0),
                ]
                rows.append(row)
    return headers, rows


def e15_coherence(scale: str | None = None):
    """Coherence-policy cost table on the SMC/loader/JIT scenarios."""
    return _run("e15", scale)


# -- registry -----------------------------------------------------------------

EXPERIMENT_SPECS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="e1",
            slug="e1_ib_characteristics",
            title=lambda scale: (
                f"E1 (Table 1): dynamic indirect-branch characteristics "
                f"[scale={scale}]"
            ),
            cells=_cells_e1,
            build=_build_e1,
        ),
        ExperimentSpec(
            name="e2",
            slug="e2_baseline_overhead",
            title=lambda scale: (
                f"E2 (Fig.): baseline SDT overhead vs native "
                f"({DEFAULT_PROFILE.name}) [scale={scale}]"
            ),
            cells=_cells_e2,
            build=_build_e2,
        ),
        ExperimentSpec(
            name="e3",
            slug="e3_ibtc_sweep",
            title=lambda scale: (
                f"E3 (Fig.): overhead vs shared IBTC entries [scale={scale}]"
            ),
            cells=_cells_e3,
            build=_build_e3,
        ),
        ExperimentSpec(
            name="e4",
            slug="e4_ibtc_scope",
            title=lambda scale: (
                f"E4 (Fig.): shared vs per-site IBTC [scale={scale}]"
            ),
            cells=_cells_e4,
            build=_build_e4,
        ),
        ExperimentSpec(
            name="e5",
            slug="e5_sieve_sweep",
            title=lambda scale: (
                f"E5 (Fig.): overhead vs sieve buckets [scale={scale}]"
            ),
            cells=_cells_e5,
            build=_build_e5,
        ),
        ExperimentSpec(
            name="e6",
            slug="e6_mechanism_comparison",
            title=lambda scale: (
                f"E6 (Fig.): tuned mechanism comparison [scale={scale}]"
            ),
            cells=_cells_e6,
            build=_build_e6,
        ),
        ExperimentSpec(
            name="e7",
            slug="e7_return_handling",
            title=lambda scale: (
                f"E7 (Fig.): return-handling mechanisms (generic=IBTC/"
                f"{BEST_IBTC}) [scale={scale}]"
            ),
            cells=_cells_e7,
            build=_build_e7,
        ),
        ExperimentSpec(
            name="e8",
            slug="e8_cross_arch",
            title=lambda scale: (
                f"E8 (Fig.): cross-architecture geomean overhead "
                f"[scale={scale}]"
            ),
            cells=_cells_e8,
            build=_build_e8,
        ),
        ExperimentSpec(
            name="e9",
            slug="e9_ibtc_hitrate",
            title=lambda scale: (
                f"E9 (Table): shared IBTC hit rates by size [scale={scale}]"
            ),
            cells=_cells_e9,
            build=_build_e9,
        ),
        ExperimentSpec(
            name="e10",
            slug="e10_ablations",
            title=lambda scale: (
                f"E10 (ablations): design choices, geomean overhead "
                f"[scale={scale}]"
            ),
            cells=_cells_e10,
            build=_build_e10,
        ),
        ExperimentSpec(
            name="e11",
            slug="e11_site_fanout",
            title=lambda scale: (
                f"E11 (Table): per-site indirect-branch target fan-out "
                f"[scale={scale}]"
            ),
            cells=_cells_e11,
            build=_build_e11,
        ),
        ExperimentSpec(
            name="e12",
            slug="e12_fanout_sweep",
            title=lambda scale: (
                f"E12 (Fig.): overhead vs dispatch-site fan-out "
                f"[scale={scale}]"
            ),
            cells=_cells_e12,
            build=_build_e12,
        ),
        ExperimentSpec(
            name="e13",
            slug="e13_cache_pressure",
            title=lambda scale: (
                f"E13 (resilience): overhead & flushes vs fragment-cache "
                f"capacity (*: faults={E13_CHAOS}) [scale={scale}]"
            ),
            cells=_cells_e13,
            build=_build_e13,
        ),
        ExperimentSpec(
            name="e14",
            slug="e14_static_targets",
            title=lambda scale: (
                f"E14 (static targets): devirtualization + preseeding "
                f"delta (+s: static_targets on; Δib: IB dispatch cycles "
                f"saved) [scale={scale}]"
            ),
            cells=_cells_e14,
            build=_build_e14,
        ),
        ExperimentSpec(
            name="e15",
            slug="e15_coherence",
            title=lambda scale: (
                f"E15 (coherence): invalidation policy cost on "
                f"self-modifying / dyn-load / mini-JIT scenarios "
                f"[scale={scale}]"
            ),
            cells=_cells_e15,
            build=_build_e15,
        ),
    )
}

#: Legacy driver registry (CLI ``experiment`` subcommand, tests).
ALL_EXPERIMENTS = {
    "e1": e1_ib_characteristics,
    "e2": e2_baseline_overhead,
    "e3": e3_ibtc_sweep,
    "e4": e4_ibtc_scope,
    "e5": e5_sieve_sweep,
    "e6": e6_mechanism_comparison,
    "e7": e7_return_handling,
    "e8": e8_cross_arch,
    "e9": e9_ibtc_hitrate,
    "e10": e10_ablations,
    "e11": e11_site_fanout,
    "e12": e12_fanout_sweep,
    "e13": e13_cache_pressure,
    "e14": e14_static_targets,
    "e15": e15_coherence,
}
