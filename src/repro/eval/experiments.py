"""E1–E9: drivers that regenerate the paper's tables and figures.

Each driver returns ``(headers, rows)`` and persists the table under
``results/`` via :func:`repro.eval.report.write_results`.  See DESIGN.md
for the experiment index and EXPERIMENTS.md for paper-vs-measured notes.

The default host profile for single-architecture experiments is the
P4-like x86 profile (the paper's headline machine); E8 sweeps all three.
"""

from __future__ import annotations

import os

from repro.eval.report import geomean, write_results
from repro.eval.runner import measure, run_native
from repro.host.profile import ArchProfile, SPARC_US3, X86_K8, X86_P4
from repro.sdt.config import SDTConfig
from repro.workloads import workload_names

DEFAULT_PROFILE = X86_P4

#: IBTC sizes swept in E3/E4/E9 (entries).
IBTC_SIZES = (16, 64, 256, 1024, 4096, 16384)
#: Sieve bucket counts swept in E5.
SIEVE_SIZES = (32, 128, 512, 2048)
#: The tuned configurations compared head-to-head in E6/E8.
BEST_IBTC = 4096
BEST_SIEVE = 512


def bench_scale() -> str:
    """Workload scale for experiment runs (``REPRO_SCALE`` overrides)."""
    return os.environ.get("REPRO_SCALE", "small")


def _suite_names() -> list[str]:
    return workload_names()


def _overhead_row_foot(
    rows: list[list[object]], first_data_col: int = 1
) -> list[object]:
    """Geomean row across the numeric columns of per-workload rows."""
    foot: list[object] = ["geomean"]
    for col in range(first_data_col, len(rows[0])):
        foot.append(geomean([float(row[col]) for row in rows]))
    return foot


# -- E1: Table 1 — indirect branch characteristics ---------------------------


def e1_ib_characteristics(scale: str | None = None) -> tuple[list[str], list[list[object]]]:
    """Dynamic IB counts and rates per benchmark (native run)."""
    scale = scale or bench_scale()
    headers = [
        "benchmark", "retired", "ijump", "icall", "ret",
        "IB total", "instrs/IB",
    ]
    rows: list[list[object]] = []
    for name in _suite_names():
        base = run_native(name, DEFAULT_PROFILE, scale=scale)
        total = base.indirect_branches
        rows.append(
            [
                name, base.retired, base.ijumps, base.icalls, base.rets,
                total, round(base.retired / max(total, 1), 1),
            ]
        )
    write_results(
        "e1_ib_characteristics",
        f"E1 (Table 1): dynamic indirect-branch characteristics "
        f"[scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E2: baseline overhead (translator re-entry on every IB) -----------------


def e2_baseline_overhead(scale: str | None = None):
    """Slowdown of the unoptimised SDT, with and without fragment linking."""
    scale = scale or bench_scale()
    headers = ["benchmark", "reentry", "reentry+nolink"]
    rows: list[list[object]] = []
    for name in _suite_names():
        linked = measure(
            name, SDTConfig(profile=DEFAULT_PROFILE, ib="reentry"), scale
        )
        nolink = measure(
            name,
            SDTConfig(profile=DEFAULT_PROFILE, ib="reentry", linking=False),
            scale,
        )
        rows.append([name, linked.overhead, nolink.overhead])
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e2_baseline_overhead",
        f"E2 (Fig.): baseline SDT overhead vs native "
        f"({DEFAULT_PROFILE.name}) [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E3: shared IBTC size sweep ------------------------------------------------


def e3_ibtc_sweep(scale: str | None = None):
    """Overhead vs shared-IBTC size."""
    scale = scale or bench_scale()
    headers = ["benchmark"] + [str(size) for size in IBTC_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in IBTC_SIZES:
            m = measure(
                name,
                SDTConfig(
                    profile=DEFAULT_PROFILE, ib="ibtc",
                    ibtc_entries=size, ibtc_shared=True,
                ),
                scale,
            )
            row.append(m.overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e3_ibtc_sweep",
        f"E3 (Fig.): overhead vs shared IBTC entries [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E4: shared vs per-site IBTC ------------------------------------------------


def e4_ibtc_scope(scale: str | None = None):
    """Shared tables vs per-site tables across sizes."""
    scale = scale or bench_scale()
    shared_sizes = (64, 1024, 4096)
    persite_sizes = (4, 16, 64)
    headers = (
        ["benchmark"]
        + [f"shared/{s}" for s in shared_sizes]
        + [f"persite/{s}" for s in persite_sizes]
    )
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in shared_sizes:
            m = measure(
                name,
                SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                          ibtc_entries=size, ibtc_shared=True),
                scale,
            )
            row.append(m.overhead)
        for size in persite_sizes:
            m = measure(
                name,
                SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                          ibtc_entries=size, ibtc_shared=False),
                scale,
            )
            row.append(m.overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e4_ibtc_scope",
        f"E4 (Fig.): shared vs per-site IBTC [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E5: sieve bucket sweep -------------------------------------------------------


def e5_sieve_sweep(scale: str | None = None):
    """Overhead vs sieve bucket count."""
    scale = scale or bench_scale()
    headers = ["benchmark"] + [str(b) for b in SIEVE_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for buckets in SIEVE_SIZES:
            m = measure(
                name,
                SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                          sieve_buckets=buckets),
                scale,
            )
            row.append(m.overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e5_sieve_sweep",
        f"E5 (Fig.): overhead vs sieve buckets [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E6: tuned mechanism comparison --------------------------------------------------


def _e6_configs(profile: ArchProfile) -> dict[str, SDTConfig]:
    return {
        "reentry": SDTConfig(profile=profile, ib="reentry"),
        "ibtc": SDTConfig(profile=profile, ib="ibtc", ibtc_entries=BEST_IBTC),
        "sieve": SDTConfig(profile=profile, ib="sieve",
                           sieve_buckets=BEST_SIEVE),
        "ibtc+fastret": SDTConfig(profile=profile, ib="ibtc",
                                  ibtc_entries=BEST_IBTC, returns="fast"),
    }


def e6_mechanism_comparison(scale: str | None = None):
    """Baseline vs tuned IBTC vs tuned sieve vs IBTC+fast-returns."""
    scale = scale or bench_scale()
    configs = _e6_configs(DEFAULT_PROFILE)
    headers = ["benchmark"] + list(configs)
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for config in configs.values():
            row.append(measure(name, config, scale).overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e6_mechanism_comparison",
        f"E6 (Fig.): tuned mechanism comparison [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E7: return handling ------------------------------------------------------------


def e7_return_handling(scale: str | None = None):
    """Return schemes over an IBTC base configuration."""
    scale = scale or bench_scale()
    schemes = ("same", "shadow", "retcache", "fast")
    headers = ["benchmark"] + [f"ret={s}" for s in schemes]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for scheme in schemes:
            m = measure(
                name,
                SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                          ibtc_entries=BEST_IBTC, returns=scheme),
                scale,
            )
            row.append(m.overhead)
        rows.append(row)
    rows.append(_overhead_row_foot(rows))
    write_results(
        "e7_return_handling",
        f"E7 (Fig.): return-handling mechanisms (generic=IBTC/"
        f"{BEST_IBTC}) [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E8: cross-architecture sensitivity ------------------------------------------------


def e8_cross_arch(scale: str | None = None):
    """Geomean overhead of each mechanism under each host profile."""
    scale = scale or bench_scale()
    profiles = (X86_P4, X86_K8, SPARC_US3)
    config_names = list(_e6_configs(X86_P4))
    headers = ["profile"] + config_names + ["winner"]
    rows: list[list[object]] = []
    for profile in profiles:
        configs = _e6_configs(profile)
        row: list[object] = [profile.name]
        means = []
        for config in configs.values():
            overheads = [
                measure(name, config, scale).overhead
                for name in _suite_names()
            ]
            means.append(geomean(overheads))
        row.extend(means)
        row.append(config_names[means.index(min(means))])
        rows.append(row)
    write_results(
        "e8_cross_arch",
        f"E8 (Fig.): cross-architecture geomean overhead [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E9: IBTC hit rates -----------------------------------------------------------------


def e9_ibtc_hitrate(scale: str | None = None):
    """IBTC hit rate per benchmark per size (explains the E3 knee)."""
    scale = scale or bench_scale()
    headers = ["benchmark"] + [str(size) for size in IBTC_SIZES]
    rows: list[list[object]] = []
    for name in _suite_names():
        row: list[object] = [name]
        for size in IBTC_SIZES:
            m = measure(
                name,
                SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                          ibtc_entries=size, ibtc_shared=True),
                scale,
            )
            mechanism = f"ibtc-shared-{size}"
            row.append(m.hit_rates.get(mechanism, 0.0))
        rows.append(row)
    write_results(
        "e9_ibtc_hitrate",
        f"E9 (Table): shared IBTC hit rates by size [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E10: design-choice ablations ---------------------------------------------------


def e10_ablations(scale: str | None = None):
    """Ablations of the design choices DESIGN.md calls out.

    Columns (geomean overhead over the suite):

    - IBTC probe inlined at each site vs. one shared out-of-line stub,
    - IBTC hash: xor-fold vs. plain shift/mask,
    - sieve stub insertion: MRU-prepend vs. append,
    - fragment linking on vs. off (the E2 companion, aggregated).
    """
    scale = scale or bench_scale()
    ablations: dict[str, tuple[SDTConfig, SDTConfig]] = {
        "ibtc inline vs outline": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, ibtc_inline=True),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, ibtc_inline=False),
        ),
        "ibtc hash fold vs shift": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=64, ibtc_hash="fold"),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=64, ibtc_hash="shift"),
        ),
        "sieve prepend vs append": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                      sieve_buckets=16, sieve_policy="prepend"),
            SDTConfig(profile=DEFAULT_PROFILE, ib="sieve",
                      sieve_buckets=16, sieve_policy="append"),
        ),
        "linking on vs off": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, linking=True),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, linking=False),
        ),
        "blocks vs traces": (
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, trace_jumps=False),
            SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                      ibtc_entries=BEST_IBTC, trace_jumps=True),
        ),
    }
    headers = ["ablation", "base", "variant", "variant/base"]
    rows: list[list[object]] = []
    for name, (base_config, variant_config) in ablations.items():
        base = geomean(
            [measure(w, base_config, scale).overhead for w in _suite_names()]
        )
        variant = geomean(
            [measure(w, variant_config, scale).overhead
             for w in _suite_names()]
        )
        rows.append([name, base, variant, variant / base])
    write_results(
        "e10_ablations",
        f"E10 (ablations): design choices, geomean overhead [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E11: per-site target fan-out ------------------------------------------------


def e11_site_fanout(scale: str | None = None):
    """Distribution of distinct dynamic targets per IB site.

    The paper's motivation table: most sites are monomorphic (a BTB/IBTC
    entry suffices), while a handful of megamorphic sites carry most of
    the dynamic dispatches on interpreter-style codes.
    """
    from repro.eval.fanout import collect_fanout

    scale = scale or bench_scale()
    headers = [
        "benchmark", "IB sites", "mono", "2-4", "5-16", ">16",
        "mono disp%", ">16 disp%", "max fanout", "wmean fanout",
    ]
    rows: list[list[object]] = []
    for name in _suite_names():
        profile = collect_fanout(name, scale=scale)
        rows.append(
            [
                name,
                len(profile.sites),
                profile.sites_with_fanout(1, 1),
                profile.sites_with_fanout(2, 4),
                profile.sites_with_fanout(5, 16),
                profile.sites_with_fanout(17),
                round(100 * profile.dispatch_share(1, 1), 1),
                round(100 * profile.dispatch_share(17), 1),
                profile.max_fanout,
                round(profile.weighted_mean_fanout, 2),
            ]
        )
    write_results(
        "e11_site_fanout",
        f"E11 (Table): per-site indirect-branch target fan-out "
        f"[scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


# -- E12: overhead vs site fan-out (synthetic sweep) -----------------------------


def e12_fanout_sweep(scale: str | None = None):
    """Overhead of each mechanism as one site's fan-out grows.

    A controlled version of the paper's polymorphism discussion: with a
    uniform (round-robin) target pattern the host BTB — and the inline
    target prediction — collapse as fan-out passes 1, while table-based
    mechanisms only pay the hardware misprediction; a skewed pattern
    restores the cheap cases.  ``scale`` selects iteration count.
    """
    from repro.eval.runner import measure
    from repro.workloads.microbench import dispatch_microbench

    scale = scale or bench_scale()
    iterations = {"tiny": 500, "small": 2000, "large": 8000}[scale]
    fanouts = (1, 2, 4, 8, 16, 32)
    configs = {
        "reentry": SDTConfig(profile=DEFAULT_PROFILE, ib="reentry"),
        "ibtc": SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc"),
        "ibtc+predict": SDTConfig(profile=DEFAULT_PROFILE, ib="ibtc",
                                  inline_predict=True),
        "sieve": SDTConfig(profile=DEFAULT_PROFILE, ib="sieve"),
    }
    headers = ["site", *configs]
    rows: list[list[object]] = []
    for skewed in (False, True):
        for fanout in fanouts:
            workload = dispatch_microbench(
                fanout, iterations=iterations, skewed=skewed
            )
            label = f"{'skew' if skewed else 'unif'}/{fanout}"
            row: list[object] = [label]
            for config in configs.values():
                row.append(measure(workload, config, scale).overhead)
            rows.append(row)
    write_results(
        "e12_fanout_sweep",
        f"E12 (Fig.): overhead vs dispatch-site fan-out [scale={scale}]",
        headers,
        rows,
    )
    return headers, rows


ALL_EXPERIMENTS = {
    "e1": e1_ib_characteristics,
    "e2": e2_baseline_overhead,
    "e3": e3_ibtc_sweep,
    "e4": e4_ibtc_scope,
    "e5": e5_sieve_sweep,
    "e6": e6_mechanism_comparison,
    "e7": e7_return_handling,
    "e8": e8_cross_arch,
    "e9": e9_ibtc_hitrate,
    "e10": e10_ablations,
    "e11": e11_site_fanout,
    "e12": e12_fanout_sweep,
}
