"""Experiment drivers reproducing the paper's tables and figures.

- :mod:`repro.eval.runner` — measure one (workload, SDT-config, profile)
  cell, with equivalence checking against the reference interpreter and
  in-process caching,
- :mod:`repro.eval.report` — text/CSV table rendering,
- :mod:`repro.eval.experiments` — E1…E9 drivers (see DESIGN.md for the
  experiment index).
"""

from repro.eval.runner import Measurement, NativeBaseline, measure, run_native
from repro.eval.report import format_table, geomean, write_results

__all__ = [
    "Measurement",
    "NativeBaseline",
    "format_table",
    "geomean",
    "measure",
    "run_native",
    "write_results",
]
