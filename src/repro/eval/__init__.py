"""Experiment drivers reproducing the paper's tables and figures.

- :mod:`repro.eval.runner` — measure one (workload, SDT-config, profile)
  cell, with equivalence checking against the reference interpreter and
  in-process caching,
- :mod:`repro.eval.cells` — the declarative cell model (one schedulable,
  cacheable simulation) with content-addressed fingerprints,
- :mod:`repro.eval.diskcache` — persistent result store under
  ``results/.cache/`` (atomic writes, corruption-tolerant loads),
- :mod:`repro.eval.parallel` — process-pool executor with
  cross-experiment cell dedup and deterministic table assembly,
- :mod:`repro.eval.report` — text/CSV table rendering,
- :mod:`repro.eval.experiments` — E1…E12 drivers declared as cell lists
  plus table builders (see DESIGN.md for the experiment index and
  docs/experiments.md for the executor).
"""

from repro.eval.runner import Measurement, NativeBaseline, measure, run_native
from repro.eval.report import format_table, geomean, write_results

__all__ = [
    "Measurement",
    "NativeBaseline",
    "format_table",
    "geomean",
    "measure",
    "run_native",
    "write_results",
]
