"""Per-site indirect-branch target fan-out analysis.

The paper motivates its mechanisms with the observation that most indirect
branch *sites* are monomorphic or nearly so (a BTB/IBTC entry captures
them), while a few megamorphic sites (interpreter dispatch, shared
returns) dominate dynamic dispatches.  This module measures that
distribution for any workload: for every guest IB site, the set of
distinct dynamic targets and the dispatch count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import INDIRECT_CLASSES
from repro.machine.interpreter import Interpreter
from repro.workloads import Workload, get_workload


@dataclass(slots=True)
class SiteProfile:
    """Dynamic behaviour of one indirect-branch site."""

    pc: int
    kind: str
    targets: set[int] = field(default_factory=set)
    dispatches: int = 0

    @property
    def fanout(self) -> int:
        return len(self.targets)


@dataclass(slots=True)
class FanoutProfile:
    """Whole-program IB site statistics."""

    sites: dict[int, SiteProfile]

    @property
    def total_dispatches(self) -> int:
        return sum(site.dispatches for site in self.sites.values())

    def sites_with_fanout(self, low: int, high: int | None = None) -> int:
        """Number of sites whose fan-out lies in [low, high]."""
        return sum(
            1
            for site in self.sites.values()
            if site.fanout >= low and (high is None or site.fanout <= high)
        )

    def dispatch_share(self, low: int, high: int | None = None) -> float:
        """Share of dynamic dispatches from sites with fan-out in range."""
        total = self.total_dispatches
        if total == 0:
            return 0.0
        covered = sum(
            site.dispatches
            for site in self.sites.values()
            if site.fanout >= low and (high is None or site.fanout <= high)
        )
        return covered / total

    @property
    def max_fanout(self) -> int:
        return max(
            (site.fanout for site in self.sites.values()), default=0
        )

    @property
    def weighted_mean_fanout(self) -> float:
        """Mean fan-out weighted by dispatch count."""
        total = self.total_dispatches
        if total == 0:
            return 0.0
        return sum(
            site.fanout * site.dispatches for site in self.sites.values()
        ) / total


class _FanoutObserver:
    def __init__(self) -> None:
        self.sites: dict[int, SiteProfile] = {}

    def __call__(self, pc: int, instr: Instruction, next_pc: int) -> None:
        iclass = instr.iclass
        if iclass not in INDIRECT_CLASSES:
            return
        site = self.sites.get(pc)
        if site is None:
            site = SiteProfile(pc=pc, kind=iclass.value)
            self.sites[pc] = site
        site.targets.add(next_pc)
        site.dispatches += 1


def collect_fanout(
    workload: Workload | str,
    scale: str = "small",
    fuel: int = 30_000_000,
) -> FanoutProfile:
    """Run a workload natively and profile every IB site's targets."""
    if isinstance(workload, str):
        workload = get_workload(workload, scale)
    observer = _FanoutObserver()
    Interpreter(workload.compile(), observer=observer).run(fuel)
    return FanoutProfile(sites=observer.sites)
