"""Deterministic exponential backoff shared by the executor and the
serve-layer circuit breaker.

The schedule is a pure function of a frozen :class:`BackoffPolicy` and a
1-based attempt number, so retry timing is reproducible across runs,
processes and hosts.  Jitter — needed by the circuit breaker so that a
fleet of quarantined cell families does not re-probe in lockstep — is
*seeded*: it draws from CRC32 over ``(seed, token, attempt)``, never
from wall-clock or per-process ``hash()`` salting, so a given
``(policy, token)`` pair always produces the same jittered schedule.
Tests exercise schedules with a fake sleeper/clock; nothing in this
module sleeps unless the caller's injected sleeper does.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class BackoffPolicy:
    """An exponential backoff schedule: ``base * factor**(attempt-1)``.

    Attributes:
        base: delay before the first retry, in seconds (0 disables
            backoff entirely — every delay is 0.0).
        factor: multiplier applied per additional attempt.
        ceiling: upper bound on any single delay.
        jitter: fraction of each delay that may be *subtracted* by the
            deterministic jitter draw (0.0 = none, 1.0 = full jitter).
            Delays shrink rather than grow so a configured ceiling is a
            hard bound.
        seed: jitter stream seed; combined with the per-call ``token``
            so distinct consumers (e.g. distinct breaker families)
            decorrelate without losing determinism.
    """

    base: float = 0.25
    factor: float = 2.0
    ceiling: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("backoff base must be >= 0")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.ceiling < 0:
            raise ValueError("backoff ceiling must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int, token: str = "") -> float:
        """Delay in seconds before retry ``attempt`` (1-based).

        Deterministic: equal ``(policy, attempt, token)`` triples always
        produce the same delay.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.base <= 0:
            return 0.0
        raw = min(self.base * self.factor ** (attempt - 1), self.ceiling)
        if not self.jitter:
            return raw
        draw = zlib.crc32(f"{self.seed}:{token}:{attempt}".encode("utf-8"))
        fraction = draw / 0xFFFFFFFF  # uniform-ish in [0, 1]
        return raw * (1.0 - self.jitter * fraction)

    def schedule(self, attempts: int, token: str = "") -> list[float]:
        """The first ``attempts`` delays, for inspection and tests."""
        return [self.delay(n, token) for n in range(1, attempts + 1)]


class Backoff:
    """Stateful schedule walker with an injectable sleeper.

    Each :meth:`sleep` call advances to the next attempt and sleeps for
    that attempt's (possibly jittered) delay via the injected callable —
    ``time.sleep`` by default, a fake clock in tests.
    """

    def __init__(
        self,
        policy: BackoffPolicy,
        sleep: Callable[[float], None] = time.sleep,
        token: str = "",
    ) -> None:
        self.policy = policy
        self.token = token
        self.attempt = 0
        self.slept = 0.0
        self._sleep = sleep

    def sleep(self) -> float:
        """Sleep for the next attempt's delay; returns the delay used."""
        self.attempt += 1
        delay = self.policy.delay(self.attempt, self.token)
        if delay > 0:
            self._sleep(delay)
        self.slept += delay
        return delay

    def reset(self) -> None:
        """Restart the schedule (a success ends the failure streak)."""
        self.attempt = 0


__all__ = ["Backoff", "BackoffPolicy"]
