"""Command-line interface.

::

    repro-sdt run <workload> [--scale S] [--ib M] [--returns R]
                             [--profile P] [--engine E] [--trace] [--json]
    repro-sdt trace <workload> [--mechanism M] [--returns R] [--out D]
    repro-sdt experiment <e1..e12|all> [--scale S]
    repro-sdt experiments [--only e3,e6] [--jobs N] [--no-cache]
                          [--cache-dir D] [--scale S] [--engine E]
                          [--trace SPEC]
    repro-sdt fragments <workload> [--disassemble]  # fragment-cache dump
    repro-sdt fanout <workload>                     # per-site IB targets
    repro-sdt analyze <prog> [--json]               # static CFG/IB analysis
    repro-sdt lint <prog> [--json]                  # static lint checks
    repro-sdt crossval <workload|all> [--json]      # static-vs-dynamic oracle
    repro-sdt compile <file.mc> [-O] [-o out.s]     # MiniC -> assembly
    repro-sdt asm <file.s> [--run]                  # assemble (and run)
    repro-sdt list                                  # workloads & profiles

``<prog>`` accepts a registered workload name, a MiniC source file
(``*.mc``) or an SR32 assembly file (``*.s``/``*.asm``).
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.experiments import ALL_EXPERIMENTS
from repro.eval.runner import measure, run_native
from repro.host.profile import PROFILES, get_profile
from repro.isa.assembler import assemble
from repro.lang import compile_source
from repro.machine.engine import ENGINES, resolve_engine
from repro.machine.interpreter import run_program
from repro.sdt.config import COHERENCE_POLICIES, SDTConfig
from repro.workloads import (
    COHERENCE_WORKLOADS,
    get_coherence_workload,
    get_workload,
    workload_names,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads: ", ", ".join(workload_names()))
    print("scenarios: ", ", ".join(COHERENCE_WORKLOADS),
          "(self-modifying; need --coherence)")
    print("profiles:  ", ", ".join(sorted(PROFILES)))
    print("mechanisms: reentry, ibtc, sieve")
    print("returns:    same, fast, shadow, retcache")
    print("coherence: ", ", ".join(COHERENCE_POLICIES))
    print("experiments:", ", ".join(ALL_EXPERIMENTS))
    return 0


def _resolve_workload(name: str, scale: str):
    """A registered workload, or one of the coherence scenarios."""
    if name in COHERENCE_WORKLOADS:
        return get_coherence_workload(name, scale)
    return get_workload(name, scale)


def _cmd_run(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    config_kwargs = {}
    if args.faults is not None:
        config_kwargs["faults"] = args.faults  # spec string; config parses
    if args.trace is not None:
        config_kwargs["trace"] = args.trace  # spec string; config parses
    config = SDTConfig(
        profile=profile,
        ib=args.ib,
        ibtc_entries=args.ibtc_entries,
        ibtc_shared=not args.ibtc_persite,
        sieve_buckets=args.sieve_buckets,
        returns=args.returns,
        linking=not args.no_linking,
        static_targets=args.static_targets,
        coherence=args.coherence,
        engine=resolve_engine(args.engine),
        **config_kwargs,
    )
    workload = _resolve_workload(args.workload, args.scale)
    if args.workload in COHERENCE_WORKLOADS and args.coherence == "none":
        print(
            f"error: scenario {args.workload!r} modifies its own code; "
            f"pick --coherence flush|page|targeted",
            file=sys.stderr,
        )
        return 2
    baseline = run_native(workload, profile, scale=args.scale,
                          engine=config.engine)
    trace_paths = None
    if config.trace is not None:
        # a traced run exports through measure()'s directory sink; default
        # the sink so a bare --trace always produces files
        import dataclasses

        from repro.trace.export import slug

        if not config.trace.dir:
            config = dataclasses.replace(
                config,
                trace=dataclasses.replace(config.trace, dir="results/trace"),
            )
        stem = slug(f"{workload.name}-{args.scale}-{profile.name}-"
                    f"{config.label}")
        trace_paths = tuple(
            f"{config.trace.dir}/{stem}{suffix}"
            for suffix in (".trace.json", ".metrics.json")
        )
    result = measure(workload, config, scale=args.scale)
    if args.json:
        import json

        print(json.dumps({
            "workload": workload.name,
            "scale": args.scale,
            "config": config.label,
            "profile": profile.name,
            "retired": baseline.retired,
            "ib": {"ijump": baseline.ijumps, "icall": baseline.icalls,
                   "ret": baseline.rets},
            "native_cycles": result.native_cycles,
            "sdt_cycles": result.sdt_cycles,
            "overhead": result.overhead,
            "breakdown": result.breakdown,
            "hit_rates": result.hit_rates,
            **({"trace_files": list(trace_paths)} if trace_paths else {}),
        }, indent=2))
        return 0
    print(f"workload : {workload.name} [{args.scale}] ({workload.spec_analog})")
    print(f"config   : {config.label} on {profile.name}")
    print(f"output   : {baseline.output.strip()}")
    print(f"retired  : {baseline.retired}")
    print(
        f"IBs      : ijump={baseline.ijumps} icall={baseline.icalls} "
        f"ret={baseline.rets}"
    )
    print(f"native   : {result.native_cycles} cycles")
    print(f"sdt      : {result.sdt_cycles} cycles")
    print(f"overhead : {result.overhead:.3f}x")
    print("breakdown:")
    for category, cycles in sorted(
        result.breakdown.items(), key=lambda item: -item[1]
    ):
        if cycles:
            share = cycles / result.sdt_cycles
            print(f"  {category:15s} {cycles:12d}  ({share:6.1%})")
    if result.hit_rates:
        for mechanism, rate in sorted(result.hit_rates.items()):
            print(f"hit rate : {mechanism} = {rate:.4f}")
    static = result.stats.get("static") or {}
    if static:
        scored = sum(static.get(k, 0)
                     for k in ("predicted", "unpredicted", "escaped"))
        precision = static.get("predicted", 0) / scored if scored else 0.0
        print(f"static   : precision={precision:.4f} " + " ".join(
            f"{key}={count}" for key, count in sorted(static.items())
        ))
    coherence = result.stats.get("coherence") or {}
    if coherence:
        print("coherence: " + " ".join(
            f"{key}={count}" for key, count in sorted(coherence.items())
        ))
    faults = result.stats.get("faults") or {}
    if faults:
        print("faults   : " + ", ".join(
            f"{site}={count}" for site, count in sorted(faults.items())
        ))
        print(f"demoted  : {result.stats.get('fragments_demoted', 0)} "
              f"fragment(s) pinned to the oracle engine")
    if trace_paths:
        for path in trace_paths:
            print(f"trace    : {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Traced run: terminal attribution summary plus JSON exports."""
    from repro.trace.export import export_files, summary
    from repro.trace.runtrace import trace_run
    from repro.trace.spec import TraceSpec

    profile = get_profile(args.profile)
    config = SDTConfig(
        profile=profile,
        ib=args.mechanism,
        ibtc_entries=args.ibtc_entries,
        sieve_buckets=args.sieve_buckets,
        returns=args.returns,
        engine=resolve_engine(args.engine),
        trace=TraceSpec(ring=args.ring),
    )
    traced = trace_run(args.workload, config, scale=args.scale)
    trace_path, metrics_path = export_files(
        traced.session, args.out, traced.stem,
        result=traced.result, context=traced.context,
    )
    if args.json:
        import json

        from repro.trace.export import metrics_dict

        print(json.dumps(
            metrics_dict(traced.session, traced.result, traced.context),
            indent=2, sort_keys=True,
        ))
    else:
        workload = traced.workload
        print(f"workload : {workload} [{args.scale}]")
        print(f"config   : {config.label} on {profile.name} "
              f"({config.engine} engine)")
        overhead = traced.result.total_cycles / traced.baseline.cycles
        print(f"overhead : {overhead:.3f}x "
              f"({traced.result.total_cycles} / {traced.baseline.cycles} "
              f"native)")
        print(summary(traced.session, traced.result))
    print(f"exported : {trace_path}", file=sys.stderr)
    print(f"exported : {metrics_path}", file=sys.stderr)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        ALL_EXPERIMENTS[name](args.scale)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    """Parallel + disk-cached regeneration of the experiment grid."""
    import os

    from repro.eval.diskcache import DiskCache
    from repro.eval.experiments import EXPERIMENT_SPECS
    from repro.eval.parallel import run_experiments

    if args.only:
        names = [n.strip() for n in args.only.split(",") if n.strip()]
        unknown = [n for n in names if n not in EXPERIMENT_SPECS]
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)}; "
                  f"available: {', '.join(EXPERIMENT_SPECS)}",
                  file=sys.stderr)
            return 2
    else:
        names = list(EXPERIMENT_SPECS)

    cache = None if args.no_cache else DiskCache(args.cache_dir)

    def progress(event) -> None:
        source = "cache" if event.source == "cache" else f"{event.seconds:.2f}s"
        print(f"[{event.index:3d}/{event.total}] {event.label:<55s} {source}",
              file=sys.stderr)

    # Experiment specs build their own SDTConfigs; the engine default
    # comes from REPRO_ENGINE and the fault plan from REPRO_FAULTS, so
    # exporting them here reaches every cell — including ones simulated
    # in worker processes.  Engine choice never changes results or cache
    # keys, only simulation speed; a fault plan never changes
    # architectural results but makes cells uncacheable.
    saved: dict[str, str | None] = {
        "REPRO_ENGINE": os.environ.get("REPRO_ENGINE"),
        "REPRO_FAULTS": os.environ.get("REPRO_FAULTS"),
        "REPRO_TRACE": os.environ.get("REPRO_TRACE"),
    }
    os.environ["REPRO_ENGINE"] = resolve_engine(args.engine)
    if args.faults is not None:
        from repro.faults import parse_fault_plan

        plan = parse_fault_plan(args.faults)  # validate before exporting
        os.environ["REPRO_FAULTS"] = plan.describe() if plan else "off"
    if args.trace is not None:
        from repro.trace.spec import parse_trace_spec

        spec = parse_trace_spec(args.trace)  # validate before exporting
        os.environ["REPRO_TRACE"] = spec.describe() if spec else "off"
    try:
        _tables, report = run_experiments(
            names, scale=args.scale, jobs=args.jobs, cache=cache,
            progress=None if args.quiet else progress,
            timeout=args.timeout, retries=args.retries,
        )
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
    print(
        f"\ncells: {report.requested} requested, {report.unique} unique "
        f"after dedup, {report.cache_hits} from cache, "
        f"{report.computed} simulated "
        f"({report.hit_rate:.0%} cache hits) in {report.elapsed:.1f}s "
        f"with {args.jobs} job(s)"
    )
    if report.failures:
        print(f"\nFAILED: {len(report.failures)} cell(s) quarantined "
              f"after {report.retries} retry(ies):", file=sys.stderr)
        for failure in report.failures.values():
            print(f"  [{failure.kind:7s}] {failure.label}  "
                  f"(attempts={failure.attempts}) {failure.error}",
                  file=sys.stderr)
        for name, labels in report.degraded.items():
            print(f"  degraded experiment {name}: {len(labels)} cell(s) "
                  f"missing; results file left untouched", file=sys.stderr)
        return 1
    return 0


def _cmd_fragments(args: argparse.Namespace) -> int:
    from repro.sdt.debug import dump_fragment_cache
    from repro.sdt.vm import SDTVM

    workload = get_workload(args.workload, args.scale)
    config = SDTConfig(profile=get_profile(args.profile), ib=args.ib,
                       trace_jumps=args.traces)
    vm = SDTVM(workload.compile(), config=config)
    vm.run()
    print(dump_fragment_cache(vm, disassemble=args.disassemble,
                              limit=args.limit))
    return 0


def _cmd_fanout(args: argparse.Namespace) -> int:
    from repro.eval.fanout import collect_fanout

    profile = collect_fanout(args.workload, scale=args.scale)
    print(
        f"{args.workload} [{args.scale}]: {len(profile.sites)} IB sites, "
        f"{profile.total_dispatches} dynamic dispatches"
    )
    print(
        f"monomorphic sites: {profile.sites_with_fanout(1, 1)} "
        f"({profile.dispatch_share(1, 1):.1%} of dispatches)"
    )
    print(f"max fan-out: {profile.max_fanout}, "
          f"dispatch-weighted mean: {profile.weighted_mean_fanout:.2f}")
    for site in sorted(profile.sites.values(),
                       key=lambda s: -s.fanout)[: args.limit]:
        print(
            f"  {site.kind:5s} @ {site.pc:#010x}: "
            f"{site.fanout} targets, {site.dispatches} dispatches"
        )
    return 0


def _load_guest_program(spec: str, scale: str):
    """Resolve a CLI program spec: workload name, ``.mc`` or ``.s`` file."""
    if spec.endswith(".mc"):
        from repro.lang import compile_to_program

        with open(spec) as handle:
            return compile_to_program(handle.read())
    if spec.endswith((".s", ".asm")):
        with open(spec) as handle:
            return assemble(handle.read())
    return get_workload(spec, scale).compile()


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analysis_to_json,
        analyze_program,
        format_analysis,
        format_targets,
        targets_to_json,
    )

    program = _load_guest_program(args.prog, args.scale)
    analysis = analyze_program(program)
    status = 0
    if args.targets:
        from repro.analysis import build_report, verify_report

        report = build_report(program, analysis=analysis)
        problems = verify_report(report)
        if problems:
            for problem in problems:
                print(f"certificate violation: {problem}", file=sys.stderr)
            return 2
        if args.strict and report.verdict_counts().get("unknown", 0):
            status = 1
        payload = targets_to_json(report)
        rendered = format_targets(report, limit=args.limit)
    else:
        payload = analysis_to_json(analysis)
        rendered = format_analysis(analysis, limit=args.limit)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    elif args.json:
        print(payload)
    else:
        print(f"program  : {args.prog}")
        print(rendered)
    if status:
        print("strict: unresolved (unknown) IB site(s) present",
              file=sys.stderr)
    return status


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import run_lint

    program = _load_guest_program(args.prog, args.scale)
    report = run_lint(program, only=args.check or None)
    if args.json:
        print(report.to_json())
    else:
        print(f"program  : {args.prog}")
        print(report.format())
    return 0 if report.clean else 1


def _cmd_crossval(args: argparse.Namespace) -> int:
    from repro.eval.static_dynamic import cross_validate, cross_validate_suite

    if args.workload == "all":
        reports = cross_validate_suite(scale=args.scale)
    else:
        reports = [cross_validate(args.workload, scale=args.scale)]
    if args.json:
        import json

        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.format(limit=args.limit))
    return 0 if all(report.all_sound for report in reports) else 1


def _cmd_compile(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    assembly = compile_source(source, optimize=args.optimize)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(assembly)
    else:
        print(assembly)
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source)
    print(
        f"text: {len(program.text.data)} bytes, "
        f"data: {len(program.data.data)} bytes, "
        f"entry: {program.entry:#x}"
    )
    if args.run:
        result = run_program(program)
        print(result.output, end="")
        return result.exit_code
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve.server import run_daemon
    from repro.serve.service import ServeSettings

    settings = ServeSettings(
        queue_depth=args.queue_depth,
        jobs=args.jobs,
        timeout=args.timeout if args.timeout > 0 else None,
        retries=args.retries,
        state_dir=Path(args.state_dir),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        lru_entries=args.lru_entries,
        breaker_threshold=args.breaker_threshold,
        drain_timeout=args.drain_timeout,
    )
    return asyncio.run(run_daemon(settings, host=args.host, port=args.port))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sdt",
        description="SDT indirect-branch mechanism evaluation (CGO'07 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads/profiles/experiments")

    run = sub.add_parser("run", help="run one workload under one SDT config")
    run.add_argument("workload")
    run.add_argument("--scale", default="small",
                     choices=("tiny", "small", "large"))
    run.add_argument("--profile", default="x86_p4")
    run.add_argument("--ib", default="ibtc",
                     choices=("reentry", "ibtc", "sieve"))
    run.add_argument("--ibtc-entries", type=int, default=4096)
    run.add_argument("--ibtc-persite", action="store_true")
    run.add_argument("--sieve-buckets", type=int, default=512)
    run.add_argument("--returns", default="same",
                     choices=("same", "fast", "shadow", "retcache"))
    run.add_argument("--no-linking", action="store_true")
    run.add_argument(
        "--static-targets", action="store_true",
        help="enable translator-time devirtualization and IBTC/sieve "
        "preseeding from the whole-program target-set analysis",
    )
    run.add_argument(
        "--coherence", default="none", choices=COHERENCE_POLICIES,
        help="code-cache coherence policy for guests that write their "
        "own code (required for the smc_loop/dyn_loader/mini_jit "
        "scenarios)",
    )
    run.add_argument(
        "--engine", default=None, choices=ENGINES,
        help="simulation engine (default: threaded, or $REPRO_ENGINE); "
        "oracle/threaded/tier2 results are identical, only simulator "
        "speed differs",
    )
    run.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="fault-injection plan (light/chaos/storm, profile:seed or "
        "k=v list; default: $REPRO_FAULTS)",
    )
    run.add_argument(
        "--trace", nargs="?", const="on", default=None, metavar="SPEC",
        help="structured event tracing: bare flag or 'ring=N,dir=PATH' "
        "(default: $REPRO_TRACE); exports Chrome-trace + metrics JSON "
        "under results/trace/ and never changes results",
    )
    run.add_argument("--json", action="store_true",
                     help="machine-readable output")

    trace = sub.add_parser(
        "trace",
        help="traced run: per-phase cycle attribution, event counters, "
        "Chrome trace_event + metrics JSON exports",
    )
    trace.add_argument("workload")
    trace.add_argument("--scale", default="small",
                       choices=("tiny", "small", "large"))
    trace.add_argument("--profile", default="x86_p4")
    trace.add_argument("--mechanism", "--ib", dest="mechanism",
                       default="ibtc", choices=("reentry", "ibtc", "sieve"))
    trace.add_argument("--ibtc-entries", type=int, default=4096)
    trace.add_argument("--sieve-buckets", type=int, default=512)
    trace.add_argument("--returns", default="same",
                       choices=("same", "fast", "shadow", "retcache"))
    trace.add_argument(
        "--engine", default=None, choices=ENGINES,
        help="simulation engine (default: threaded, or $REPRO_ENGINE)",
    )
    trace.add_argument("--ring", type=int, default=65536,
                       help="event ring-buffer capacity (default: 65536)")
    trace.add_argument("--out", default="results/trace", metavar="DIR",
                       help="export directory (default: results/trace)")
    trace.add_argument("--json", action="store_true",
                       help="print the metrics JSON instead of the summary")

    experiment = sub.add_parser("experiment", help="run an E1..E12 driver")
    experiment.add_argument("name")
    experiment.add_argument("--scale", default=None)

    experiments = sub.add_parser(
        "experiments",
        help="regenerate experiments on the parallel, disk-cached executor",
    )
    experiments.add_argument(
        "--only", default=None, metavar="e3,e6",
        help="comma-separated experiment subset (default: all)",
    )
    experiments.add_argument("--scale", default=None)
    experiments.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    experiments.add_argument(
        "--no-cache", action="store_true",
        help="bypass the results/.cache disk cache entirely",
    )
    experiments.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="disk-cache root (default: results/.cache)",
    )
    experiments.add_argument(
        "--quiet", action="store_true",
        help="suppress per-cell progress output",
    )
    experiments.add_argument(
        "--engine", default=None, choices=ENGINES,
        help="simulation engine for every cell (default: threaded, or "
        "$REPRO_ENGINE); does not affect results or cache keys",
    )
    experiments.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell watchdog: kill and quarantine cells that run "
        "longer (forces pool execution even with --jobs 1)",
    )
    experiments.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-executions granted to a failing cell before quarantine "
        "(default: 2)",
    )
    experiments.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="fault-injection plan for every cell: a profile "
        "(light/chaos/storm), profile:seed, k=v list, or 'off' "
        "(default: $REPRO_FAULTS); never changes architectural results, "
        "but faulted cells bypass all result caches",
    )
    experiments.add_argument(
        "--trace", default=None, metavar="SPEC",
        help="structured tracing for every cell ('on', 'off', or "
        "'ring=N,dir=PATH'; default: $REPRO_TRACE); cells that actually "
        "simulate export trace/metrics JSON when dir= is set — "
        "cache-served cells have no event stream to export",
    )

    fragments = sub.add_parser(
        "fragments", help="dump a workload's fragment cache after a run"
    )
    fragments.add_argument("workload")
    fragments.add_argument("--scale", default="tiny",
                           choices=("tiny", "small", "large"))
    fragments.add_argument("--profile", default="x86_p4")
    fragments.add_argument("--ib", default="ibtc",
                           choices=("reentry", "ibtc", "sieve"))
    fragments.add_argument("--traces", action="store_true")
    fragments.add_argument("--disassemble", action="store_true")
    fragments.add_argument("--limit", type=int, default=10)

    fanout = sub.add_parser(
        "fanout", help="per-site indirect-branch target fan-out profile"
    )
    fanout.add_argument("workload")
    fanout.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "large"))
    fanout.add_argument("--limit", type=int, default=10)

    analyze = sub.add_parser(
        "analyze", help="static CFG and indirect-branch site analysis"
    )
    analyze.add_argument("prog", help="workload name, .mc file, or .s file")
    analyze.add_argument("--scale", default="tiny",
                         choices=("tiny", "small", "large"))
    analyze.add_argument("--limit", type=int, default=20)
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable output (deterministic "
                         "sorted-key JSON)")
    analyze.add_argument(
        "--targets", action="store_true",
        help="run the whole-program target-set analysis (dataflow + "
        "verdicts + soundness certificates) instead of the site summary",
    )
    analyze.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report to PATH instead of stdout",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="with --targets: exit nonzero when any IB site's verdict "
        "is 'unknown'",
    )

    lint = sub.add_parser(
        "lint", help="run static lint checks over a guest program"
    )
    lint.add_argument("prog", help="workload name, .mc file, or .s file")
    lint.add_argument("--scale", default="tiny",
                      choices=("tiny", "small", "large"))
    lint.add_argument("--check", action="append", metavar="ID",
                      help="run only this check (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable output")

    crossval = sub.add_parser(
        "crossval",
        help="cross-validate static fan-out bounds against a dynamic run",
    )
    crossval.add_argument("workload", help="workload name, or 'all'")
    crossval.add_argument("--scale", default="tiny",
                          choices=("tiny", "small", "large"))
    crossval.add_argument("--limit", type=int, default=10)
    crossval.add_argument("--json", action="store_true",
                          help="machine-readable output")

    compile_cmd = sub.add_parser("compile", help="compile MiniC to assembly")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-o", "--output")
    compile_cmd.add_argument("-O", "--optimize", action="store_true",
                             help="enable constant folding/simplification")

    asm = sub.add_parser("asm", help="assemble (and optionally run) SR32 asm")
    asm.add_argument("file")
    asm.add_argument("--run", action="store_true")

    serve = sub.add_parser(
        "serve",
        help="long-running HTTP experiment service (see docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 binds an ephemeral port; the bound port "
                       "is printed in the JSON ready line")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admission queue bound; beyond it requests "
                       "are shed with 429")
    serve.add_argument("--jobs", type=int, default=2,
                       help="worker processes / max dispatch batch size")
    serve.add_argument("--timeout", type=float, default=60.0,
                       help="default per-cell watchdog seconds "
                       "(0 disables)")
    serve.add_argument("--retries", type=int, default=1,
                       help="executor retry budget per cell")
    serve.add_argument("--state-dir", default="results/serve",
                       help="journal directory (survives restarts)")
    serve.add_argument("--cache-dir", default="results/.cache",
                       help="disk result cache ('' disables caching)")
    serve.add_argument("--lru-entries", type=int, default=1024,
                       help="in-memory result tier size (0 disables)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive family failures that open the "
                       "circuit")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="SIGTERM grace period for in-flight work")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "experiment": _cmd_experiment,
    "experiments": _cmd_experiments,
    "fragments": _cmd_fragments,
    "fanout": _cmd_fanout,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "crossval": _cmd_crossval,
    "compile": _cmd_compile,
    "asm": _cmd_asm,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
