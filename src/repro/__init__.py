"""Reproduction of *Evaluating Indirect Branch Handling Mechanisms in
Software Dynamic Translation Systems* (Hiser et al., CGO 2007).

The package builds a complete software-dynamic-translation stack over a
synthetic 32-bit RISC guest:

- :mod:`repro.isa` — guest ISA and toolchain (assembler/disassembler),
- :mod:`repro.machine` — guest machine and reference interpreter,
- :mod:`repro.lang` — MiniC, a small C-like language compiled to the guest,
- :mod:`repro.host` — host microarchitecture cost models and predictors,
- :mod:`repro.sdt` — the SDT itself, with all indirect-branch mechanisms,
- :mod:`repro.workloads` — the SPEC-CPU2000-inspired benchmark suite,
- :mod:`repro.eval` — experiment drivers reproducing the paper's artefacts.
"""

__version__ = "1.3.0"
