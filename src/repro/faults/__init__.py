"""Deterministic fault injection and IB-state coherence checking.

See docs/robustness.md for the fault model, the recovery paths, and the
invariants this package enforces.
"""

from repro.faults.inject import (
    FaultInjector,
    InjectedTranslationFault,
    MAX_TRANSLATE_ATTEMPTS,
    PLAN_PERTURBATIONS,
    apply_plan_perturbation,
    tombstone,
)
from repro.faults.invariants import (
    CoherenceError,
    CoherenceViolation,
    InvariantChecker,
    assert_coherent,
    collect_violations,
)
from repro.faults.plan import (
    ENV_VAR,
    FaultPlan,
    PROFILES,
    RATE_FIELDS,
    default_fault_plan,
    parse_fault_plan,
)

__all__ = [
    "ENV_VAR",
    "CoherenceError",
    "CoherenceViolation",
    "FaultInjector",
    "FaultPlan",
    "InjectedTranslationFault",
    "InvariantChecker",
    "MAX_TRANSLATE_ATTEMPTS",
    "PLAN_PERTURBATIONS",
    "PROFILES",
    "RATE_FIELDS",
    "apply_plan_perturbation",
    "assert_coherent",
    "collect_violations",
    "default_fault_plan",
    "parse_fault_plan",
    "tombstone",
]
