"""Deterministic fault event streams and corruption helpers.

One :class:`FaultInjector` is bound per SDT VM.  Each fault site draws
from its *own* :class:`random.Random` stream, seeded from the plan seed
and a CRC-32 of the site name — never :func:`hash`, whose per-process
salting would destroy cross-process determinism.  Because every draw
happens at a point both execution engines reach identically (dispatches,
translations, reservations are all architectural events), the injected
fault sequence is engine-invariant, which is what lets the engine
differential tests keep holding under chaos.

Corrupted table entries are *tombstones*: a copy of the real fragment
with ``valid`` cleared, exactly what a stale pointer left behind by a
missed flush invalidation looks like.  The recovery paths in the IB
mechanisms treat an invalid cached fragment as a miss, so architecture
is preserved and only cycle counts move.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from random import Random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdt.stats import SDTStats

#: Superblock-plan corruption kinds (all detectable by the coherence
#: check in :meth:`repro.machine.engine.Superblock.coherent_with`).
PLAN_PERTURBATIONS = ("entry", "length", "term", "classes")

#: Bound on consecutive injected translation failures before the
#: translator retries with injection suppressed (forward progress).
MAX_TRANSLATE_ATTEMPTS = 4


class InjectedTranslationFault(RuntimeError):
    """An injected mid-fragment translation abort (always recoverable)."""


class FaultInjector:
    """Per-VM deterministic fault event source."""

    def __init__(self, plan: FaultPlan, stats: "SDTStats | None" = None):
        self.plan = plan
        self.stats = stats
        self._streams: dict[str, Random] = {}
        #: optional observability sink (repro.trace.session.TraceSession);
        #: the owning VM wires it after construction
        self.trace = None

    def stream(self, site: str) -> Random:
        """The dedicated RNG stream for one fault site (lazily created)."""
        rng = self._streams.get(site)
        if rng is None:
            salt = zlib.crc32(site.encode("ascii"))
            rng = Random((self.plan.seed * 0x9E3779B1) ^ salt)
            self._streams[site] = rng
        return rng

    def _fire(self, site: str) -> None:
        if self.stats is not None:
            self.stats.faults[site] += 1
        if self.trace is not None:
            self.trace.emit("fault", site=site)

    # -- event draws ---------------------------------------------------------

    def should_force_flush(self) -> bool:
        """One draw per cache reservation: force a whole-cache flush?"""
        rate = self.plan.flush_storm
        if rate and self.stream("flush_storm").random() < rate:
            self._fire("flush_storm")
            return True
        return False

    def table_event(self, site: str) -> str | None:
        """One draw per IBTC/sieve dispatch: ``"drop"``, ``"corrupt"`` or
        ``None``.  ``site`` keys the stream (``"ibtc"``/``"sieve"``) so
        mechanisms never perturb each other's sequences."""
        drop = self.plan.table_drop
        corrupt = self.plan.table_corrupt
        if not (drop or corrupt):
            return None
        draw = self.stream(f"table.{site}").random()
        if draw < drop:
            self._fire(f"{site}.drop")
            return "drop"
        if draw < drop + corrupt:
            self._fire(f"{site}.corrupt")
            return "corrupt"
        return None

    def should_fail_translation(self) -> bool:
        """One draw per translation attempt: abort mid-fragment?"""
        rate = self.plan.translate_fail
        if rate and self.stream("translate_fail").random() < rate:
            self._fire("translate_fail")
            return True
        return False

    def plan_perturbation(self) -> str | None:
        """Exactly two draws per translation: gate plus perturbation kind.

        Both draws are consumed even when the gate does not fire (and even
        under the oracle engine, where there is no plan to corrupt), so
        the stream position — and therefore every later fault — is
        identical whatever the engine or the plan's presence.
        """
        rate = self.plan.plan_perturb
        if not rate:
            return None
        rng = self.stream("plan_perturb")
        gate = rng.random() < rate
        kind = PLAN_PERTURBATIONS[rng.randrange(len(PLAN_PERTURBATIONS))]
        if not gate:
            return None
        self._fire(f"plan_perturb.{kind}")
        return kind


def tombstone(fragment):
    """A stale copy of ``fragment``: same identity, ``valid`` cleared.

    This is what an IB-table entry looks like after a flush whose
    invalidation the table missed — the exact hazard the recovery paths
    and the invariant checker exist for.
    """
    return replace(fragment, valid=False)


def apply_plan_perturbation(plan_obj, kind: str) -> None:
    """Corrupt one piece of a superblock plan's metadata in place.

    Every kind breaks an invariant that
    :meth:`repro.machine.engine.Superblock.coherent_with` checks, so a
    perturbed plan is always caught before it executes.
    """
    if kind == "entry":
        plan_obj.entry_pc += 4
    elif kind == "length":
        plan_obj.n += 1
    elif kind == "term":
        plan_obj.term_pc += 4
    elif kind == "classes":
        first = next(iter(plan_obj.class_counts))
        plan_obj.class_counts[first] += 1
    else:  # pragma: no cover - guarded by PLAN_PERTURBATIONS
        raise ValueError(f"unknown plan perturbation {kind!r}")
