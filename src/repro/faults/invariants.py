"""IB-state coherence checking.

The paper's mechanisms all cache fragment pointers (IBTC entries, sieve
stubs, return-cache slots, link stubs, fast-return pad bindings) that a
whole-cache flush invalidates.  A single missed invalidation silently
corrupts every overhead number, so this module provides the watchdog: a
walk over *every* place a fragment pointer can hide, verifying that none
of them retains a stale (invalidated or unregistered) fragment, and that
every threaded-engine superblock plan still describes the fragment it is
attached to.

:class:`InvariantChecker` runs the walk after every flush (it registers
its hook *after* the mechanisms', so it sees their post-invalidation
state) and accumulates a report the chaos CI job uploads as an artifact.
:func:`collect_violations` can also be called directly at any point, with
or without fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdt.vm import SDTVM


@dataclass(frozen=True)
class CoherenceViolation:
    """One stale-pointer or incoherent-plan finding."""

    site: str    #: where the pointer lives ("ibtc", "links", "plan", ...)
    kind: str    #: "stale-fragment", "unregistered-fragment", "bad-plan"
    detail: str  #: human-readable description

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.site}] {self.kind}: {self.detail}"


class CoherenceError(AssertionError):
    """Raised by :func:`assert_coherent` when violations are present."""

    def __init__(self, violations: list[CoherenceViolation]):
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(
            f"{len(violations)} IB-state coherence violation(s):\n{lines}"
        )


def _check_refs(site: str, refs, live_ids, violations) -> None:
    for ref in refs:
        if ref is None:
            continue
        if not ref.valid:
            violations.append(CoherenceViolation(
                site=site,
                kind="stale-fragment",
                detail=f"holds invalidated fragment {ref!r}",
            ))
        elif id(ref) not in live_ids:
            violations.append(CoherenceViolation(
                site=site,
                kind="unregistered-fragment",
                detail=f"holds live-looking fragment {ref!r} "
                f"that the cache does not know about",
            ))


def collect_violations(
    vm: "SDTVM", include_plans: bool = True
) -> list[CoherenceViolation]:
    """Walk every fragment-pointer store in ``vm`` and report stale state.

    Checked stores: the generic IB mechanism and the return mechanism
    (via their ``live_fragment_refs()``), the static-targets runtime's
    devirtualized edges (when bound), the tier-2 region engine's member
    fragments (when bound), every live fragment's link stubs, and every
    live fragment's attached superblock plan.

    ``include_plans=False`` skips the plan-coherence leg: the coherence
    manager's post-invalidation walk runs *between* flushes, where a
    fault-injected plan perturbation may legitimately sit un-executed
    (plan incoherence has its own detection + demotion path at execution
    time; it is not a stale-pointer bug).
    """
    violations: list[CoherenceViolation] = []
    live = vm.cache.fragments()
    live_ids = {id(fragment) for fragment in live}

    _check_refs(
        vm.generic_ib.name, vm.generic_ib.live_fragment_refs(),
        live_ids, violations,
    )
    _check_refs(
        vm.return_mech.name, vm.return_mech.live_fragment_refs(),
        live_ids, violations,
    )
    static_rt = getattr(vm, "static_rt", None)
    if static_rt is not None:
        _check_refs(
            "static-devirt", static_rt.live_fragment_refs(),
            live_ids, violations,
        )
    tier2 = getattr(vm, "_tier2", None)
    if tier2 is not None:
        _check_refs(
            "tier2-region", tier2.live_fragment_refs(),
            live_ids, violations,
        )

    for fragment in live:
        for key, linked in fragment.links.items():
            if not linked.valid:
                violations.append(CoherenceViolation(
                    site="links",
                    kind="stale-fragment",
                    detail=f"{fragment!r} link {key!r} -> invalidated "
                    f"{linked!r}",
                ))
        plan = fragment.plan
        if (
            include_plans
            and plan is not None
            and hasattr(plan, "coherent_with")
            and not plan.coherent_with(fragment.guest_pc, fragment.instrs)
        ):
            violations.append(CoherenceViolation(
                site="plan",
                kind="bad-plan",
                detail=f"{fragment!r} carries a plan that does not "
                f"describe it (entry={plan.entry_pc:#x}, n={plan.n})",
            ))
    return violations


def assert_coherent(vm: "SDTVM") -> None:
    """Raise :class:`CoherenceError` if ``vm`` holds any stale IB state."""
    violations = collect_violations(vm)
    if violations:
        raise CoherenceError(violations)


class InvariantChecker:
    """Post-flush coherence watchdog bound to one VM.

    Install with :meth:`install` *after* the IB mechanisms have bound
    (flush hooks run in registration order, and the checker must observe
    the tables after they processed the flush).  Findings accumulate in
    :attr:`violations` and are mirrored into ``stats.faults`` under
    ``invariant.violations`` so they travel with measurement results.
    """

    def __init__(self, vm: "SDTVM"):
        self.vm = vm
        self.flushes_checked = 0
        self.invalidations_checked = 0
        self.violations: list[CoherenceViolation] = []

    def install(self) -> None:
        self.vm.cache.on_flush(self._on_flush)

    def _on_flush(self) -> None:
        self.flushes_checked += 1
        found = collect_violations(self.vm)
        stats = self.vm.stats
        stats.faults["invariant.flushes_checked"] += 1
        if found:
            self.violations.extend(found)
            stats.faults["invariant.violations"] += len(found)

    def on_invalidate(self) -> None:
        """Coherence site: walk after each selective invalidation.

        The coherence manager calls this once it has finished scrubbing
        the mechanisms/static runtime, so any surviving stale pointer is
        a real missed scrub.  Plans are excluded — between flushes an
        injected plan perturbation may sit un-executed, and plan
        incoherence is caught (and demoted) at execution time.
        """
        self.invalidations_checked += 1
        found = collect_violations(self.vm, include_plans=False)
        stats = self.vm.stats
        stats.faults["invariant.invalidations_checked"] += 1
        if found:
            self.violations.extend(found)
            stats.faults["invariant.violations"] += len(found)

    def report(self) -> dict:
        """JSON-ready summary (the chaos CI artifact's per-run record)."""
        return {
            "flushes_checked": self.flushes_checked,
            "invalidations_checked": self.invalidations_checked,
            "violations": [
                {"site": v.site, "kind": v.kind, "detail": v.detail}
                for v in self.violations
            ],
        }
