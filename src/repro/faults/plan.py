"""Deterministic fault plans.

A :class:`FaultPlan` declares *what* to break and *how often*: per-site
event rates plus the seed that makes every injected fault sequence
reproducible.  :mod:`repro.faults.inject` turns a plan into deterministic
per-site event streams; the SDT consults those streams at fixed points
(fragment-cache reservation, IB-table probes, translation), so a given
``(plan, workload, config)`` triple always injects byte-identical fault
sequences — across processes, across runs, and across execution engines.

Plans ride on :class:`repro.sdt.config.SDTConfig` as the ``faults`` field.
Like ``engine``, the field is *fingerprint-exempt*: faults may never change
architectural results (only cycle counts), so a plan must not split the
config-level cache keys.  The evaluation layer separately refuses to serve
fault-free cached measurements to faulted cells — see
:meth:`repro.eval.cells.Cell.cacheable`.

The ``REPRO_FAULTS`` environment variable supplies the default plan (the
chaos CI job sets it for the whole test suite):

- ``off`` / ``none`` / ``0`` / empty — no injection (``None``),
- a profile name — ``light``, ``chaos`` or ``storm``,
- ``<profile>:<seed>`` — profile with an explicit seed,
- ``k=v,k=v,...`` — explicit field list (``seed=7,flush_storm=0.5``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace

#: Environment variable holding the default fault plan spec.
ENV_VAR = "REPRO_FAULTS"

#: The injectable fault sites (rate fields of :class:`FaultPlan`).
RATE_FIELDS = (
    "flush_storm",      # forced whole-cache flush per reservation
    "table_drop",       # drop the probed IBTC/sieve entry
    "table_corrupt",    # replace it with a stale (invalid) fragment ref
    "translate_fail",   # abort a translation mid-fragment
    "plan_perturb",     # corrupt a threaded-engine superblock plan
)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-site fault rates.  All rates are probabilities in [0, 1].

    Attributes:
        seed: base seed for every per-site event stream.
        flush_storm: chance per :meth:`FragmentCache.reserve` call of
            forcing a whole-cache flush regardless of occupancy.
        table_drop: chance per IBTC/sieve dispatch of dropping the probed
            table entry (simulates lost fills).
        table_corrupt: chance per IBTC/sieve dispatch of replacing the
            probed entry with a stale, invalidated fragment reference
            (simulates a missed flush invalidation).
        translate_fail: chance per translation of aborting mid-fragment
            after the decode work has been charged.
        plan_perturb: chance per translation of corrupting the attached
            superblock plan's metadata (threaded engine only; detected by
            the coherence check and demoted to the oracle engine).
    """

    seed: int = 1234
    flush_storm: float = 0.0
    table_drop: float = 0.0
    table_corrupt: float = 0.0
    translate_fail: float = 0.0
    plan_perturb: float = 0.0

    def __post_init__(self) -> None:
        for name in RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.table_drop + self.table_corrupt > 1.0:
            raise ValueError(
                "table_drop + table_corrupt must not exceed 1.0 "
                "(they share one event draw per dispatch)"
            )

    @property
    def active(self) -> bool:
        """True when at least one fault site can fire."""
        return any(getattr(self, name) > 0.0 for name in RATE_FIELDS)

    def fingerprint(self) -> tuple:
        """Canonical hashable identity covering every declared field.

        Used by :meth:`repro.eval.cells.Cell.fingerprint` so faulted
        cells never alias fault-free ones in a batch (SDTConfig's own
        fingerprint deliberately excludes the plan).
        """
        return tuple(
            (spec.name, getattr(self, spec.name)) for spec in fields(self)
        )

    def describe(self) -> str:
        """Canonical spec string (parses back to an equal plan)."""
        for name, rates in PROFILES.items():
            if replace(self, seed=DEFAULT_SEED) == FaultPlan(**rates):
                return f"{name}:{self.seed}"
        parts = [f"seed={self.seed}"]
        parts += [
            f"{name}={getattr(self, name):g}"
            for name in RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return ",".join(parts)


DEFAULT_SEED = 1234

#: Named fault profiles.  ``light`` barely perturbs a run, ``chaos`` is the
#: CI stress level (every site fires regularly but runs stay fast), and
#: ``storm`` is flush-heavy pressure for targeted cache-coherence tests.
PROFILES: dict[str, dict[str, float]] = {
    "light": dict(
        flush_storm=0.01, table_drop=0.02, table_corrupt=0.01,
        translate_fail=0.005, plan_perturb=0.002,
    ),
    "chaos": dict(
        flush_storm=0.04, table_drop=0.08, table_corrupt=0.04,
        translate_fail=0.02, plan_perturb=0.01,
    ),
    "storm": dict(
        flush_storm=0.25, table_drop=0.15, table_corrupt=0.10,
        translate_fail=0.05, plan_perturb=0.02,
    ),
}

_OFF = ("", "off", "none", "0")


def parse_fault_plan(spec: str | FaultPlan | None) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS``-style spec into a plan (or ``None``).

    Accepts an existing plan (pass-through), ``None``/off-words, a profile
    name with optional ``:seed``, or a comma-separated ``k=v`` list.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    text = spec.strip().lower()
    if text in _OFF:
        return None

    head, _, seed_text = text.partition(":")
    if head in PROFILES:
        seed = DEFAULT_SEED
        if seed_text:
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError(
                    f"bad fault-plan seed {seed_text!r} in {spec!r}"
                ) from None
        return FaultPlan(seed=seed, **PROFILES[head])

    values: dict[str, object] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in ("seed",) + RATE_FIELDS:
            raise ValueError(
                f"bad fault-plan spec {spec!r}: expected a profile name "
                f"({', '.join(PROFILES)}), 'off', or k=v pairs over "
                f"seed/{'/'.join(RATE_FIELDS)}"
            )
        try:
            values[key] = int(value) if key == "seed" else float(value)
        except ValueError:
            raise ValueError(
                f"bad value {value!r} for {key!r} in fault plan {spec!r}"
            ) from None
    plan = FaultPlan(**values)
    return plan if plan.active else None


def default_fault_plan() -> FaultPlan | None:
    """Plan selected by ``REPRO_FAULTS`` (default: no injection)."""
    return parse_fault_plan(os.environ.get(ENV_VAR))
