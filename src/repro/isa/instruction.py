"""Decoded-instruction data model for SR32."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    CONTROL_CLASSES,
    INDIRECT_CLASSES,
    Fmt,
    InstrClass,
    Op,
    spec,
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded SR32 instruction.

    Field usage depends on the format (unused fields are zero):

    ========  =============================================
    format    fields
    ========  =============================================
    R3        ``rd, rs, rt``
    SHIFT     ``rd, rt, shamt``
    I2        ``rt, rs, imm``
    LUI       ``rt, imm``
    MEM       ``rt, imm(rs)``
    BR        ``rs, rt, imm`` (signed word offset from pc+4)
    J         ``imm`` (absolute word index within segment)
    JR        ``rs``
    JALR      ``rd, rs``
    ========  =============================================
    """

    op: Op
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    shamt: int = 0

    @property
    def iclass(self) -> InstrClass:
        return spec(self.op).iclass

    @property
    def fmt(self) -> Fmt:
        return spec(self.op).fmt

    @property
    def is_control(self) -> bool:
        """True if this instruction (potentially) transfers control."""
        return self.iclass in CONTROL_CLASSES

    @property
    def is_indirect(self) -> bool:
        """True for indirect jumps, indirect calls and returns."""
        return self.iclass in INDIRECT_CLASSES

    @property
    def writes_reg(self) -> int | None:
        """Destination register number, or ``None`` if no register result."""
        fmt = self.fmt
        if fmt in (Fmt.R3, Fmt.SHIFT, Fmt.JALR):
            return self.rd
        if fmt in (Fmt.I2, Fmt.LUI):
            return self.rt
        if fmt == Fmt.MEM and self.iclass is InstrClass.LOAD:
            return self.rt
        if self.op is Op.JAL:
            return 31
        if self.op is Op.RET:
            return None
        return None

    def branch_target(self, pc: int) -> int:
        """Resolved target of a direct control transfer at address ``pc``.

        Only meaningful for BRANCH/JUMP/CALL instructions; indirect
        transfers raise :class:`ValueError` because the target is dynamic.
        """
        iclass = self.iclass
        if iclass is InstrClass.BRANCH:
            return (pc + 4 + (self.imm << 2)) & 0xFFFFFFFF
        if iclass in (InstrClass.JUMP, InstrClass.CALL):
            return ((pc + 4) & 0xF0000000) | (self.imm << 2)
        raise ValueError(f"{self.op.value} has no static target")
