"""Two-pass assembler for SR32 assembly.

Supported syntax (one statement per line, ``#`` comments)::

        .text
    main:
        addi  sp, sp, -8
        sw    ra, 4(sp)
        li    t0, 123456          # pseudo: lui+ori / addi
        la    a0, message         # pseudo: lui+ori
        jal   helper
        lw    ra, 4(sp)
        addi  sp, sp, 8
        ret

        .data
    message: .asciiz "hello"
    table:   .word helper, main, 42
    buffer:  .space 64

Directives: ``.text``, ``.data``, ``.word``, ``.half``, ``.byte``,
``.ascii``, ``.asciiz``, ``.space``, ``.align``, ``.globl`` (accepted and
ignored), ``.entry label``.

Pseudo-instructions: ``li``, ``la``, ``mv``, ``nop``, ``not``, ``neg``,
``b``, ``beqz``, ``bnez``, ``bltz``, ``bgez``, ``blez``, ``bgtz``, ``bgt``,
``ble``, ``bgtu``, ``bleu``, ``call`` (alias of ``jal``), ``seqz``, ``snez``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, MNEMONIC_TO_OP, Op, spec
from repro.isa.program import DATA_BASE, Program, Section, TEXT_BASE
from repro.isa.registers import REG_RA, REG_ZERO, reg_number


class AssemblyError(ValueError):
    """Raised for any malformed assembly input."""

    def __init__(self, message: str, line: int | None = None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\$?\w+)\s*\)$")


@dataclass(slots=True)
class _Stmt:
    """One parsed source statement (instruction or data directive)."""

    line: int
    mnemonic: str
    operands: list[str]
    section: str
    addr: int = 0


def _parse_int(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {text!r}", line) from None


def _split_operands(text: str) -> list[str]:
    """Split an operand string on commas, honouring string literals."""
    operands: list[str] = []
    current = []
    in_string = False
    escaped = False
    for ch in text:
        if in_string:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
            current.append(ch)
        elif ch == ",":
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail or operands:
        operands.append(tail)
    return [op for op in operands if op]


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    escaped = False
    for ch in line:
        if in_string:
            out.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == "#" or ch == ";":
            break
        if ch == '"':
            in_string = True
        out.append(ch)
    return "".join(out).strip()


_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"', "r": "\r"}


def _parse_string(text: str, line: int) -> bytes:
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblyError(f"expected string literal, got {text!r}", line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body) or body[i] not in _ESCAPES:
                raise AssemblyError(f"bad escape in string {text!r}", line)
            out.append(ord(_ESCAPES[body[i]]))
        else:
            out.append(ord(ch))
        i += 1
    return bytes(out)


# Pseudo-instruction expansion -------------------------------------------

_BR_ZERO = {
    "beqz": Op.BEQ,
    "bnez": Op.BNE,
    "bltz": Op.BLT,
    "bgez": Op.BGE,
}
_BR_SWAP = {
    "bgt": Op.BLT,
    "ble": Op.BGE,
    "bgtu": Op.BLTU,
    "bleu": Op.BGEU,
}

PSEUDO_MNEMONICS = frozenset(
    {
        "li",
        "la",
        "mv",
        "move",
        "nop",
        "not",
        "neg",
        "b",
        "blez",
        "bgtz",
        "call",
        "seqz",
        "snez",
    }
    | set(_BR_ZERO)
    | set(_BR_SWAP)
)


def _pseudo_size(mnemonic: str, operands: list[str], line: int) -> int:
    """Number of real instructions a pseudo expands to (pass 1)."""
    if mnemonic == "li":
        if len(operands) != 2:
            raise AssemblyError("li needs 2 operands", line)
        value = _parse_int(operands[1], line)
        if -0x8000 <= value <= 0x7FFF:
            return 1
        if value & 0xFFFF == 0 and 0 <= value <= 0xFFFFFFFF:
            return 1
        return 2
    if mnemonic == "la":
        return 2
    return 1


class _Assembler:
    """Internal two-pass assembler state."""

    def __init__(self, source: str):
        self.source = source
        self.symbols: dict[str, int] = {}
        self.text_stmts: list[_Stmt] = []
        self.data_items: list[tuple[_Stmt, int]] = []  # stmt, size
        self.entry_label: str | None = None

    # -- pass 1 -----------------------------------------------------------

    def pass1(self) -> None:
        section = "text"
        text_addr = TEXT_BASE
        data_addr = DATA_BASE
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    label, line = match.group(1), match.group(2).strip()
                    if label in self.symbols:
                        raise AssemblyError(
                            f"duplicate label {label!r}", lineno
                        )
                    self.symbols[label] = (
                        text_addr if section == "text" else data_addr
                    )
                    continue
                break
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            if mnemonic == ".globl":
                continue
            if mnemonic == ".entry":
                if len(operands) != 1:
                    raise AssemblyError(".entry needs one label", lineno)
                self.entry_label = operands[0]
                continue
            stmt = _Stmt(lineno, mnemonic, operands, section)
            if mnemonic.startswith("."):
                if section != "data":
                    raise AssemblyError(
                        f"data directive {mnemonic} outside .data", lineno
                    )
                size, data_addr = self._sized_directive(stmt, data_addr)
                self.data_items.append((stmt, size))
                continue
            if section != "text":
                raise AssemblyError("instruction outside .text", lineno)
            stmt.addr = text_addr
            if mnemonic in PSEUDO_MNEMONICS:
                count = _pseudo_size(mnemonic, operands, lineno)
            elif mnemonic in MNEMONIC_TO_OP:
                count = 1
            else:
                raise AssemblyError(f"unknown mnemonic {mnemonic!r}", lineno)
            self.text_stmts.append(stmt)
            text_addr += 4 * count

    def _sized_directive(self, stmt: _Stmt, addr: int) -> tuple[int, int]:
        """Size a data directive; returns (size, next_addr) with alignment."""
        mnemonic, operands, line = stmt.mnemonic, stmt.operands, stmt.line
        if mnemonic == ".align":
            power = _parse_int(operands[0], line)
            step = 1 << power
            new_addr = (addr + step - 1) & ~(step - 1)
            # retroactively fix the label if one pointed at the pad start
            self._fix_labels(addr, new_addr)
            return new_addr - addr, new_addr
        if mnemonic == ".word":
            new_addr = (addr + 3) & ~3
            self._fix_labels(addr, new_addr)
            pad = new_addr - addr
            return pad + 4 * len(operands), new_addr + 4 * len(operands)
        if mnemonic == ".half":
            new_addr = (addr + 1) & ~1
            self._fix_labels(addr, new_addr)
            pad = new_addr - addr
            return pad + 2 * len(operands), new_addr + 2 * len(operands)
        if mnemonic == ".byte":
            return len(operands), addr + len(operands)
        if mnemonic in (".ascii", ".asciiz"):
            data = _parse_string(operands[0], line)
            size = len(data) + (1 if mnemonic == ".asciiz" else 0)
            return size, addr + size
        if mnemonic == ".space":
            size = _parse_int(operands[0], line)
            if size < 0:
                raise AssemblyError(".space size must be >= 0", line)
            return size, addr + size
        raise AssemblyError(f"unknown directive {mnemonic!r}", line)

    def _fix_labels(self, old_addr: int, new_addr: int) -> None:
        if old_addr == new_addr:
            return
        for label, value in self.symbols.items():
            if value == old_addr:
                self.symbols[label] = new_addr

    # -- pass 2 -----------------------------------------------------------

    def _resolve(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        if re.fullmatch(r"-?(0[xX][0-9a-fA-F]+|\d+)", token):
            return int(token, 0)
        raise AssemblyError(f"undefined symbol {token!r}", line)

    def _reg(self, token: str, line: int) -> int:
        try:
            return reg_number(token)
        except ValueError as exc:
            raise AssemblyError(str(exc), line) from None

    def _expand_pseudo(self, stmt: _Stmt) -> list[Instruction]:
        m, ops, line = stmt.mnemonic, stmt.operands, stmt.line
        if m == "nop":
            return [Instruction(Op.SLL, rd=0, rt=0, shamt=0)]
        if m in ("mv", "move"):
            rd, rs = self._reg(ops[0], line), self._reg(ops[1], line)
            return [Instruction(Op.OR, rd=rd, rs=rs, rt=REG_ZERO)]
        if m == "not":
            rd, rs = self._reg(ops[0], line), self._reg(ops[1], line)
            return [Instruction(Op.NOR, rd=rd, rs=rs, rt=REG_ZERO)]
        if m == "neg":
            rd, rs = self._reg(ops[0], line), self._reg(ops[1], line)
            return [Instruction(Op.SUB, rd=rd, rs=REG_ZERO, rt=rs)]
        if m == "seqz":
            rd, rs = self._reg(ops[0], line), self._reg(ops[1], line)
            return [Instruction(Op.SLTIU, rt=rd, rs=rs, imm=1)]
        if m == "snez":
            rd, rs = self._reg(ops[0], line), self._reg(ops[1], line)
            return [Instruction(Op.SLTU, rd=rd, rs=REG_ZERO, rt=rs)]
        if m == "li":
            rd = self._reg(ops[0], line)
            value = _parse_int(ops[1], line)
            uvalue = value & 0xFFFFFFFF
            if -0x8000 <= value <= 0x7FFF:
                return [Instruction(Op.ADDI, rt=rd, rs=REG_ZERO, imm=value)]
            if uvalue & 0xFFFF == 0 and 0 <= value <= 0xFFFFFFFF:
                return [Instruction(Op.LUI, rt=rd, imm=uvalue >> 16)]
            return [
                Instruction(Op.LUI, rt=rd, imm=uvalue >> 16),
                Instruction(Op.ORI, rt=rd, rs=rd, imm=uvalue & 0xFFFF),
            ]
        if m == "la":
            rd = self._reg(ops[0], line)
            addr = self._resolve(ops[1], line) & 0xFFFFFFFF
            return [
                Instruction(Op.LUI, rt=rd, imm=addr >> 16),
                Instruction(Op.ORI, rt=rd, rs=rd, imm=addr & 0xFFFF),
            ]
        if m == "b":
            return [self._branch(Op.BEQ, REG_ZERO, REG_ZERO, ops[0], stmt, 0)]
        if m == "call":
            return [self._jump(Op.JAL, ops[0], line)]
        if m in _BR_ZERO:
            rs = self._reg(ops[0], line)
            return [self._branch(_BR_ZERO[m], rs, REG_ZERO, ops[1], stmt, 0)]
        if m == "blez":  # rs <= 0  ==  !(0 < rs)  ==  bge zero, rs? use bge
            rs = self._reg(ops[0], line)
            return [self._branch(Op.BGE, REG_ZERO, rs, ops[1], stmt, 0)]
        if m == "bgtz":  # rs > 0  ==  blt zero, rs
            rs = self._reg(ops[0], line)
            return [self._branch(Op.BLT, REG_ZERO, rs, ops[1], stmt, 0)]
        if m in _BR_SWAP:
            rs = self._reg(ops[0], line)
            rt = self._reg(ops[1], line)
            return [self._branch(_BR_SWAP[m], rt, rs, ops[2], stmt, 0)]
        raise AssemblyError(f"unhandled pseudo {m!r}", stmt.line)

    def _branch(
        self,
        op: Op,
        rs: int,
        rt: int,
        target: str,
        stmt: _Stmt,
        slot: int,
    ) -> Instruction:
        target_addr = self._resolve(target, stmt.line)
        pc = stmt.addr + 4 * slot
        delta = target_addr - (pc + 4)
        if delta % 4:
            raise AssemblyError("branch target not word aligned", stmt.line)
        offset = delta >> 2
        if not -0x8000 <= offset <= 0x7FFF:
            raise AssemblyError("branch target out of range", stmt.line)
        return Instruction(op, rs=rs, rt=rt, imm=offset)

    def _jump(self, op: Op, target: str, line: int) -> Instruction:
        addr = self._resolve(target, line)
        if addr % 4:
            raise AssemblyError("jump target not word aligned", line)
        return Instruction(op, imm=(addr >> 2) & 0x03FFFFFF)

    def _encode_stmt(self, stmt: _Stmt) -> list[Instruction]:
        if stmt.mnemonic in PSEUDO_MNEMONICS:
            return self._expand_pseudo(stmt)
        op = MNEMONIC_TO_OP[stmt.mnemonic]
        fmt = spec(op).fmt
        ops, line = stmt.operands, stmt.line

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblyError(
                    f"{stmt.mnemonic} needs {count} operands, got {len(ops)}",
                    line,
                )

        if fmt == Fmt.R3:
            need(3)
            return [
                Instruction(
                    op,
                    rd=self._reg(ops[0], line),
                    rs=self._reg(ops[1], line),
                    rt=self._reg(ops[2], line),
                )
            ]
        if fmt == Fmt.SHIFT:
            need(3)
            return [
                Instruction(
                    op,
                    rd=self._reg(ops[0], line),
                    rt=self._reg(ops[1], line),
                    shamt=_parse_int(ops[2], line),
                )
            ]
        if fmt == Fmt.I2:
            need(3)
            return [
                Instruction(
                    op,
                    rt=self._reg(ops[0], line),
                    rs=self._reg(ops[1], line),
                    imm=_parse_int(ops[2], line),
                )
            ]
        if fmt == Fmt.LUI:
            need(2)
            return [
                Instruction(op, rt=self._reg(ops[0], line),
                            imm=_parse_int(ops[1], line))
            ]
        if fmt == Fmt.MEM:
            need(2)
            match = _MEM_RE.match(ops[1])
            if not match:
                raise AssemblyError(
                    f"expected offset(base), got {ops[1]!r}", line
                )
            return [
                Instruction(
                    op,
                    rt=self._reg(ops[0], line),
                    rs=self._reg(match.group(2), line),
                    imm=_parse_int(match.group(1), line),
                )
            ]
        if fmt == Fmt.BR:
            need(3)
            return [
                self._branch(
                    op,
                    self._reg(ops[0], line),
                    self._reg(ops[1], line),
                    ops[2],
                    stmt,
                    0,
                )
            ]
        if fmt == Fmt.J:
            need(1)
            return [self._jump(op, ops[0], line)]
        if fmt == Fmt.JR:
            need(1)
            return [Instruction(op, rs=self._reg(ops[0], line))]
        if fmt == Fmt.JALR:
            if len(ops) == 1:
                return [
                    Instruction(op, rd=REG_RA, rs=self._reg(ops[0], line))
                ]
            need(2)
            return [
                Instruction(
                    op,
                    rd=self._reg(ops[0], line),
                    rs=self._reg(ops[1], line),
                )
            ]
        if fmt == Fmt.NONE:
            need(0)
            return [Instruction(op)]
        raise AssemblyError(f"unhandled format {fmt}", line)

    def _emit_data(self) -> bytes:
        out = bytearray()
        addr = DATA_BASE
        for stmt, size in self.data_items:
            m, ops, line = stmt.mnemonic, stmt.operands, stmt.line
            if m == ".align":
                out.extend(b"\0" * size)
                addr += size
                continue
            if m in (".word", ".half"):
                width = 4 if m == ".word" else 2
                pad = (-addr) % width
                out.extend(b"\0" * pad)
                addr += pad
                for token in ops:
                    value = self._resolve(token, line) & ((1 << (8 * width)) - 1)
                    out.extend(value.to_bytes(width, "little"))
                    addr += width
                continue
            if m == ".byte":
                for token in ops:
                    out.append(self._resolve(token, line) & 0xFF)
                addr += len(ops)
                continue
            if m in (".ascii", ".asciiz"):
                data = _parse_string(ops[0], line)
                out.extend(data)
                if m == ".asciiz":
                    out.append(0)
                addr += size
                continue
            if m == ".space":
                out.extend(b"\0" * size)
                addr += size
                continue
            raise AssemblyError(f"unhandled directive {m!r}", line)
        return bytes(out)

    def assemble(self) -> Program:
        self.pass1()
        words = bytearray()
        for stmt in self.text_stmts:
            for instr in self._encode_stmt(stmt):
                try:
                    word = encode(instr)
                except ValueError as exc:
                    raise AssemblyError(str(exc), stmt.line) from exc
                words.extend(word.to_bytes(4, "little"))
        data = self._emit_data()
        entry = TEXT_BASE
        if self.entry_label is not None:
            if self.entry_label not in self.symbols:
                raise AssemblyError(f"undefined entry {self.entry_label!r}")
            entry = self.symbols[self.entry_label]
        elif "main" in self.symbols:
            entry = self.symbols["main"]
        return Program(
            text=Section("text", TEXT_BASE, bytes(words)),
            data=Section("data", DATA_BASE, data),
            entry=entry,
            symbols=dict(self.symbols),
        )


def assemble(source: str) -> Program:
    """Assemble SR32 source text into a loadable :class:`Program`."""
    return _Assembler(source).assemble()
