"""Binary encoder/decoder for SR32 instructions.

All instructions are 32-bit little-endian words.  See
:mod:`repro.isa.opcodes` for field layouts.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, op_for_fields, spec


class EncodeError(ValueError):
    """Raised when an instruction cannot be encoded."""


class DecodeError(ValueError):
    """Raised when a word is not a valid SR32 instruction."""


def _check_reg(value: int, field: str) -> int:
    if not 0 <= value < 32:
        raise EncodeError(f"{field} out of range: {value}")
    return value


def _imm16(value: int, zero_ext: bool) -> int:
    if zero_ext:
        if not 0 <= value <= 0xFFFF:
            raise EncodeError(f"unsigned imm16 out of range: {value}")
        return value
    if not -0x8000 <= value <= 0x7FFF:
        raise EncodeError(f"signed imm16 out of range: {value}")
    return value & 0xFFFF


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction to its 32-bit word."""
    sp = spec(instr.op)
    rs = _check_reg(instr.rs, "rs")
    rt = _check_reg(instr.rt, "rt")
    rd = _check_reg(instr.rd, "rd")
    fmt = sp.fmt
    if fmt in (Fmt.R3, Fmt.SHIFT, Fmt.JR, Fmt.JALR, Fmt.NONE):
        shamt = instr.shamt
        if not 0 <= shamt < 32:
            raise EncodeError(f"shamt out of range: {shamt}")
        assert sp.funct is not None
        return (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | sp.funct
    if fmt == Fmt.J:
        if not 0 <= instr.imm < (1 << 26):
            raise EncodeError(f"jump target out of range: {instr.imm}")
        return (sp.opcode << 26) | instr.imm
    # I-format variants
    imm = _imm16(instr.imm, sp.zero_ext_imm)
    return (sp.opcode << 26) | (rs << 21) | (rt << 16) | imm


def _sext16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


def decode(word: int) -> Instruction:
    """Decode a 32-bit word to an :class:`Instruction`.

    Raises :class:`DecodeError` for unknown opcodes.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise DecodeError(f"word out of range: {word:#x}")
    opcode = (word >> 26) & 0x3F
    funct = word & 0x3F
    op = op_for_fields(opcode, funct)
    if op is None:
        raise DecodeError(f"unknown instruction word {word:#010x}")
    sp = spec(op)
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    fmt = sp.fmt
    if fmt in (Fmt.R3, Fmt.JALR):
        return Instruction(op, rd=rd, rs=rs, rt=rt)
    if fmt == Fmt.SHIFT:
        return Instruction(op, rd=rd, rt=rt, shamt=shamt)
    if fmt == Fmt.JR:
        return Instruction(op, rs=rs)
    if fmt == Fmt.NONE:
        return Instruction(op)
    if fmt == Fmt.J:
        return Instruction(op, imm=word & 0x03FFFFFF)
    imm_raw = word & 0xFFFF
    imm = imm_raw if sp.zero_ext_imm else _sext16(imm_raw)
    if fmt == Fmt.LUI:
        return Instruction(op, rt=rt, imm=imm)
    return Instruction(op, rs=rs, rt=rt, imm=imm)
