"""Opcode table for the SR32 guest ISA.

SR32 uses 32-bit fixed-width instructions with three MIPS-style formats:

- **R-format** (``opcode == 0``): ``op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)``
- **I-format**: ``op(6) rs(5) rt(5) imm(16)`` (immediate is sign-extended
  except for the logical immediates ``andi``/``ori``/``xori``)
- **J-format**: ``op(6) target(26)`` (word address within the current 256 MiB
  segment)

Every mnemonic carries an :class:`InstrClass`, which is what the host cost
model and the SDT's control-flow classification key on.  The classes that
matter most to this reproduction are the control-transfer ones:

``BRANCH``
    conditional, PC-relative — linkable by the SDT.
``JUMP`` / ``CALL``
    unconditional direct — linkable.
``IJUMP`` / ``ICALL`` / ``RET``
    *indirect* — the subject of the paper.  ``ret`` is architecturally
    ``jr ra`` but is a distinct opcode so both the hardware return-address
    stack and the SDT can treat returns specially.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstrClass(enum.Enum):
    """Semantic/cost class of an instruction."""

    ALU = "alu"
    SHIFT = "shift"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"          # conditional direct branch
    JUMP = "jump"              # unconditional direct jump
    CALL = "call"              # direct call (jal)
    IJUMP = "ijump"            # indirect jump (jr)
    ICALL = "icall"            # indirect call (jalr)
    RET = "ret"                # return (jr ra, distinct opcode)
    SYSCALL = "syscall"
    HALT = "halt"


#: Instruction classes that transfer control.
CONTROL_CLASSES = frozenset(
    {
        InstrClass.BRANCH,
        InstrClass.JUMP,
        InstrClass.CALL,
        InstrClass.IJUMP,
        InstrClass.ICALL,
        InstrClass.RET,
        InstrClass.HALT,
    }
)

#: Instruction classes whose target is not encoded in the instruction.
INDIRECT_CLASSES = frozenset(
    {InstrClass.IJUMP, InstrClass.ICALL, InstrClass.RET}
)


class Fmt(enum.Enum):
    """Operand/encoding format of a mnemonic."""

    R3 = "r3"          # rd, rs, rt
    SHIFT = "shift"    # rd, rt, shamt
    I2 = "i2"          # rt, rs, imm
    LUI = "lui"        # rt, imm
    MEM = "mem"        # rt, imm(rs)
    BR = "br"          # rs, rt, offset
    J = "j"            # target
    JR = "jr"          # rs
    JALR = "jalr"      # rd, rs
    NONE = "none"      # no operands (ret, syscall, halt)


@dataclass(frozen=True)
class OpSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: Fmt
    opcode: int
    funct: int | None
    iclass: InstrClass
    #: immediate is zero-extended rather than sign-extended
    zero_ext_imm: bool = False


class Op(enum.Enum):
    """All SR32 mnemonics."""

    # R-format ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    # shifts by immediate
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    # I-format ALU
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLTIU = "sltiu"
    LUI = "lui"
    # memory
    LW = "lw"
    LH = "lh"
    LHU = "lhu"
    LB = "lb"
    LBU = "lbu"
    SW = "sw"
    SH = "sh"
    SB = "sb"
    # control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    RET = "ret"
    SYSCALL = "syscall"
    HALT = "halt"


_R = lambda m, f, c: OpSpec(m, Fmt.R3, 0, f, c)  # noqa: E731

OP_TABLE: dict[Op, OpSpec] = {
    Op.SLL: OpSpec("sll", Fmt.SHIFT, 0, 0, InstrClass.SHIFT),
    Op.SRL: OpSpec("srl", Fmt.SHIFT, 0, 2, InstrClass.SHIFT),
    Op.SRA: OpSpec("sra", Fmt.SHIFT, 0, 3, InstrClass.SHIFT),
    Op.SLLV: _R("sllv", 4, InstrClass.SHIFT),
    Op.SRLV: _R("srlv", 6, InstrClass.SHIFT),
    Op.SRAV: _R("srav", 7, InstrClass.SHIFT),
    Op.JR: OpSpec("jr", Fmt.JR, 0, 8, InstrClass.IJUMP),
    Op.JALR: OpSpec("jalr", Fmt.JALR, 0, 9, InstrClass.ICALL),
    Op.RET: OpSpec("ret", Fmt.NONE, 0, 10, InstrClass.RET),
    Op.SYSCALL: OpSpec("syscall", Fmt.NONE, 0, 12, InstrClass.SYSCALL),
    Op.HALT: OpSpec("halt", Fmt.NONE, 0, 13, InstrClass.HALT),
    Op.MUL: _R("mul", 24, InstrClass.MUL),
    Op.DIV: _R("div", 26, InstrClass.DIV),
    Op.REM: _R("rem", 27, InstrClass.DIV),
    Op.ADD: _R("add", 32, InstrClass.ALU),
    Op.SUB: _R("sub", 34, InstrClass.ALU),
    Op.AND: _R("and", 36, InstrClass.ALU),
    Op.OR: _R("or", 37, InstrClass.ALU),
    Op.XOR: _R("xor", 38, InstrClass.ALU),
    Op.NOR: _R("nor", 39, InstrClass.ALU),
    Op.SLT: _R("slt", 42, InstrClass.ALU),
    Op.SLTU: _R("sltu", 43, InstrClass.ALU),
    Op.J: OpSpec("j", Fmt.J, 2, None, InstrClass.JUMP),
    Op.JAL: OpSpec("jal", Fmt.J, 3, None, InstrClass.CALL),
    Op.BEQ: OpSpec("beq", Fmt.BR, 4, None, InstrClass.BRANCH),
    Op.BNE: OpSpec("bne", Fmt.BR, 5, None, InstrClass.BRANCH),
    Op.BLT: OpSpec("blt", Fmt.BR, 6, None, InstrClass.BRANCH),
    Op.BGE: OpSpec("bge", Fmt.BR, 7, None, InstrClass.BRANCH),
    Op.ADDI: OpSpec("addi", Fmt.I2, 8, None, InstrClass.ALU),
    Op.SLTI: OpSpec("slti", Fmt.I2, 10, None, InstrClass.ALU),
    Op.SLTIU: OpSpec("sltiu", Fmt.I2, 11, None, InstrClass.ALU),
    Op.ANDI: OpSpec("andi", Fmt.I2, 12, None, InstrClass.ALU, True),
    Op.ORI: OpSpec("ori", Fmt.I2, 13, None, InstrClass.ALU, True),
    Op.XORI: OpSpec("xori", Fmt.I2, 14, None, InstrClass.ALU, True),
    Op.LUI: OpSpec("lui", Fmt.LUI, 15, None, InstrClass.ALU, True),
    Op.BLTU: OpSpec("bltu", Fmt.BR, 16, None, InstrClass.BRANCH),
    Op.BGEU: OpSpec("bgeu", Fmt.BR, 17, None, InstrClass.BRANCH),
    Op.LB: OpSpec("lb", Fmt.MEM, 32, None, InstrClass.LOAD),
    Op.LH: OpSpec("lh", Fmt.MEM, 33, None, InstrClass.LOAD),
    Op.LW: OpSpec("lw", Fmt.MEM, 35, None, InstrClass.LOAD),
    Op.LBU: OpSpec("lbu", Fmt.MEM, 36, None, InstrClass.LOAD),
    Op.LHU: OpSpec("lhu", Fmt.MEM, 37, None, InstrClass.LOAD),
    Op.SB: OpSpec("sb", Fmt.MEM, 40, None, InstrClass.STORE),
    Op.SH: OpSpec("sh", Fmt.MEM, 41, None, InstrClass.STORE),
    Op.SW: OpSpec("sw", Fmt.MEM, 43, None, InstrClass.STORE),
}

MNEMONIC_TO_OP: dict[str, Op] = {spec.mnemonic: op for op, spec in OP_TABLE.items()}

#: (opcode, funct) -> Op for R-format, opcode -> Op otherwise.
_R_DECODE: dict[int, Op] = {
    spec.funct: op for op, spec in OP_TABLE.items() if spec.opcode == 0
}
_OPC_DECODE: dict[int, Op] = {
    spec.opcode: op for op, spec in OP_TABLE.items() if spec.opcode != 0
}


def op_for_fields(opcode: int, funct: int) -> Op | None:
    """Map raw (opcode, funct) fields to an :class:`Op`, or ``None``."""
    if opcode == 0:
        return _R_DECODE.get(funct)
    return _OPC_DECODE.get(opcode)


def spec(op: Op) -> OpSpec:
    """Return the :class:`OpSpec` for a mnemonic."""
    return OP_TABLE[op]
