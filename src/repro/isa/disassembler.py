"""Textual disassembly of SR32 instructions."""

from __future__ import annotations

from repro.isa.encoding import DecodeError, decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, spec
from repro.isa.registers import reg_name


def format_instruction(instr: Instruction, pc: int | None = None) -> str:
    """Render one instruction as assembly text.

    If ``pc`` is given, branch/jump targets are shown as absolute addresses.
    """
    sp = spec(instr.op)
    name = sp.mnemonic
    fmt = sp.fmt
    if fmt == Fmt.R3:
        return (
            f"{name} {reg_name(instr.rd)}, "
            f"{reg_name(instr.rs)}, {reg_name(instr.rt)}"
        )
    if fmt == Fmt.SHIFT:
        if instr.rd == 0 and instr.rt == 0 and instr.shamt == 0:
            return "nop"
        return f"{name} {reg_name(instr.rd)}, {reg_name(instr.rt)}, {instr.shamt}"
    if fmt == Fmt.I2:
        return (
            f"{name} {reg_name(instr.rt)}, "
            f"{reg_name(instr.rs)}, {instr.imm}"
        )
    if fmt == Fmt.LUI:
        return f"{name} {reg_name(instr.rt)}, {instr.imm:#x}"
    if fmt == Fmt.MEM:
        return f"{name} {reg_name(instr.rt)}, {instr.imm}({reg_name(instr.rs)})"
    if fmt == Fmt.BR:
        if pc is not None:
            target = f"{instr.branch_target(pc):#x}"
        else:
            target = f".{instr.imm * 4:+d}"
        return f"{name} {reg_name(instr.rs)}, {reg_name(instr.rt)}, {target}"
    if fmt == Fmt.J:
        if pc is not None:
            return f"{name} {instr.branch_target(pc):#x}"
        return f"{name} {instr.imm * 4:#x}"
    if fmt == Fmt.JR:
        return f"{name} {reg_name(instr.rs)}"
    if fmt == Fmt.JALR:
        return f"{name} {reg_name(instr.rd)}, {reg_name(instr.rs)}"
    return name


def disassemble_word(word: int, pc: int | None = None) -> str:
    """Disassemble one 32-bit word; unknown words render as ``.word``."""
    try:
        return format_instruction(decode(word), pc)
    except DecodeError:
        return f".word {word:#010x}"


def disassemble(
    raw: bytes, base: int = 0, symbols: dict[str, int] | None = None
) -> str:
    """Disassemble a byte buffer into a listing with addresses."""
    addr_to_label = {}
    if symbols:
        for label, addr in symbols.items():
            addr_to_label.setdefault(addr, label)
    lines = []
    for offset in range(0, len(raw) - len(raw) % 4, 4):
        pc = base + offset
        if pc in addr_to_label:
            lines.append(f"{addr_to_label[pc]}:")
        word = int.from_bytes(raw[offset : offset + 4], "little")
        lines.append(f"  {pc:#010x}:  {disassemble_word(word, pc)}")
    return "\n".join(lines)
