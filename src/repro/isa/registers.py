"""Register file specification for the SR32 guest ISA.

SR32 has 32 general-purpose 32-bit registers.  ``r0`` is hardwired to zero
(writes are discarded), following the MIPS convention.  The ABI aliases are:

========  ======  =====================================================
alias     number  role
========  ======  =====================================================
zero      0       hardwired zero
at        1       assembler temporary (used by pseudo-expansion)
v0, v1    2-3     return values / syscall service number
a0-a3     4-7     first four arguments
t0-t9     8-15,   caller-saved temporaries
          24-25
s0-s7     16-23   callee-saved
gp        28      global pointer (base of .data)
sp        29      stack pointer
fp        30      frame pointer
ra        31      return address
========  ======  =====================================================
"""

from __future__ import annotations

NUM_REGS = 32

REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31

_ALIAS_TO_NUM = {
    "zero": 0,
    "at": 1,
    "v0": 2,
    "v1": 3,
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    "t8": 24,
    "t9": 25,
    "k0": 26,
    "k1": 27,
    "gp": 28,
    "sp": 29,
    "fp": 30,
    "ra": 31,
}

_NUM_TO_ALIAS = {num: alias for alias, num in _ALIAS_TO_NUM.items()}

#: Registers a callee must preserve across a call (ABI contract).
CALLEE_SAVED = tuple(range(16, 24)) + (REG_GP, REG_SP, REG_FP, REG_RA)

#: Registers a caller cannot rely on surviving a call.
CALLER_SAVED = (REG_V0, REG_V1, REG_A0, REG_A1, REG_A2, REG_A3) + tuple(
    range(8, 16)
) + (24, 25)


def reg_number(name: str) -> int:
    """Parse a register name (``r4``, ``$a0``, ``sp`` ...) to its number.

    Raises :class:`ValueError` for anything that is not a valid register.
    """
    text = name.strip().lower()
    if text.startswith("$"):
        text = text[1:]
    if text.startswith("r") and text[1:].isdigit():
        num = int(text[1:])
        if 0 <= num < NUM_REGS:
            return num
        raise ValueError(f"register number out of range: {name!r}")
    if text in _ALIAS_TO_NUM:
        return _ALIAS_TO_NUM[text]
    raise ValueError(f"unknown register: {name!r}")


def reg_name(num: int) -> str:
    """Return the canonical ABI alias for a register number."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return _NUM_TO_ALIAS[num]
