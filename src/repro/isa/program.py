"""Loadable program image for the SR32 guest."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default memory layout of a guest process.
TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000
HEAP_ALIGN = 16


@dataclass(frozen=True, slots=True)
class Section:
    """One contiguous loadable section."""

    name: str
    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclass(slots=True)
class Program:
    """A fully linked guest program.

    Attributes:
        text: the executable section.
        data: the initialised data section (may be empty).
        entry: address of the first instruction to execute.
        symbols: label -> address map (both sections).
    """

    text: Section
    data: Section
    entry: int
    symbols: dict[str, int] = field(default_factory=dict)

    @property
    def heap_base(self) -> int:
        """First address past the data section, suitably aligned."""
        end = self.data.end if self.data.data else self.data.base
        return (end + HEAP_ALIGN - 1) & ~(HEAP_ALIGN - 1)

    def symbol(self, name: str) -> int:
        """Look up a label address; raises :class:`KeyError` if absent."""
        return self.symbols[name]

    def text_words(self) -> list[int]:
        """The text section as a list of 32-bit little-endian words."""
        raw = self.text.data
        return [
            int.from_bytes(raw[i : i + 4], "little")
            for i in range(0, len(raw), 4)
        ]
