"""SR32: the synthetic 32-bit RISC guest ISA used by the SDT reproduction.

The package provides the full toolchain for the guest architecture:

- :mod:`repro.isa.registers` — register file specification and ABI aliases,
- :mod:`repro.isa.opcodes` — the opcode table and instruction classes,
- :mod:`repro.isa.instruction` — the decoded-instruction data model,
- :mod:`repro.isa.encoding` — binary encoder/decoder (32-bit fixed width),
- :mod:`repro.isa.assembler` — two-pass assembler with labels and sections,
- :mod:`repro.isa.disassembler` — textual disassembly,
- :mod:`repro.isa.program` — the loadable program image.
"""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import DecodeError, EncodeError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Op
from repro.isa.program import Program, Section
from repro.isa.registers import (
    NUM_REGS,
    REG_FP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    reg_name,
    reg_number,
)

__all__ = [
    "AssemblyError",
    "DecodeError",
    "EncodeError",
    "InstrClass",
    "Instruction",
    "NUM_REGS",
    "Op",
    "Program",
    "REG_FP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "Section",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_word",
    "encode",
    "reg_name",
    "reg_number",
]
