"""``mcf``-analog: pointer-chasing over heap-allocated lists.

181.mcf (network simplex) is memory-bound pointer chasing with a low
indirect-branch rate; like gzip it anchors the low end of the overhead
figures, but through heap traffic rather than tight ALU loops.  This
program builds a bucketed graph of heap nodes with ``sbrk`` and relaxes
costs along arc lists repeatedly.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (60, 4), "small": (250, 5), "large": (600, 8)}

_TEMPLATE = r"""
%(rng)s

/* node layout: [next, cost, potential, arcs] — 16 bytes */
int heads[16];
int node_count = 0;

int new_node(int bucket, int cost) {
    int node = sbrk(16);
    store(node, heads[bucket]);
    store(node + 4, cost);
    store(node + 8, 0);
    store(node + 12, (cost * 7 + bucket) & 1023);
    heads[bucket] = node;
    node_count++;
    return node;
}

int build(int n) {
    register int i;
    for (i = 0; i < 16; i++) { heads[i] = 0; }
    for (i = 0; i < n; i++) {
        new_node(rng_next() & 15, rng_next() & 0xffff);
    }
    return node_count;
}

int relax_bucket(int bucket) {
    register int node = heads[bucket];
    register int changed = 0;
    while (node != 0) {
        register int cost = load(node + 4);
        register int pot = load(node + 8);
        register int candidate = (cost >>> 1) + (pot >>> 2) + load(node + 12);
        if (candidate < pot || pot == 0) {
            store(node + 8, candidate);
            changed++;
        }
        node = load(node);
    }
    return changed;
}

int sweep() {
    register int bucket;
    register int total = 0;
    for (bucket = 0; bucket < 16; bucket++) {
        total = total + relax_bucket(bucket);
    }
    return total;
}

int main() {
    build(%(nodes)d);
    register int pass;
    int total = 0;
    for (pass = 0; pass < %(passes)d; pass++) {
        total = total + sweep();
    }
    register int bucket;
    int check = 0;
    for (bucket = 0; bucket < 16; bucket++) {
        register int node = heads[bucket];
        while (node != 0) {
            check = (check * 31 + load(node + 8)) & 0xffffff;
            node = load(node);
        }
    }
    print_int(total); print_char(' ');
    print_int(check); print_char('\n');
    return 0;
}
"""


@register("mcf_like")
def build(scale: str) -> Workload:
    nodes, passes = _SCALE[scale]
    return Workload(
        name="mcf_like",
        spec_analog="181.mcf",
        description="heap-allocated bucketed graph with repeated "
        "relaxation sweeps",
        ib_profile="pointer-chasing, low IB rate (returns only)",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "nodes": nodes, "passes": passes},
    )
