"""SPEC-CPU2000-inspired benchmark suite (see DESIGN.md substitution map).

Importing this package registers every workload; use
:func:`repro.workloads.get_workload` / :func:`repro.workloads.suite`.
"""

from repro.workloads.base import (
    SCALES,
    Workload,
    get_workload,
    suite,
    workload_names,
)
from repro.workloads.coherence import (
    COHERENCE_WORKLOADS,
    coherence_suite,
    get_coherence_workload,
)

# importing the modules registers each workload
from repro.workloads import (  # noqa: F401  (imported for side effects)
    bzip2_like,
    crafty_like,
    eon_like,
    gap_like,
    gcc_like,
    gzip_like,
    mcf_like,
    parser_like,
    perl_like,
    twolf_like,
    vortex_like,
    vpr_like,
)

__all__ = [
    "COHERENCE_WORKLOADS",
    "SCALES",
    "Workload",
    "coherence_suite",
    "get_coherence_workload",
    "get_workload",
    "suite",
    "workload_names",
]
