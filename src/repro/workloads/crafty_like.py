"""``crafty``-analog: recursive game-tree search.

186.crafty (chess) is dominated by deep recursive search: dense
call/return chains whose return addresses form deep stacks — exactly the
pattern hardware RAS and SDT return mechanisms are built for.  This
program runs a negamax search with alpha-beta pruning over a synthetic
game whose move values come from a hashed position key.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (4, 3), "small": (5, 4), "large": (6, 5)}

_TEMPLATE = r"""
%(rng)s

int nodes = 0;

int eval_position(int key) {
    register int h = key;
    h = h ^ (h >>> 11);
    h = (h * 2654435761) & 0x7fffffff;
    h = h ^ (h >>> 7);
    return (h & 255) - 128;
}

int move_value(int key, int move) {
    return eval_position(key * 31 + move * 7 + 1);
}

int negamax(int key, int depth, int alpha, int beta) {
    nodes++;
    if (depth == 0) {
        return eval_position(key);
    }
    register int best = -100000;
    register int move;
    for (move = 0; move < %(branch)d; move++) {
        register int child = key * %(branch)d + move + 1;
        int score = -negamax(child, depth - 1, -beta, -alpha);
        score = score + move_value(key, move);
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int main() {
    int total = 0;
    register int game;
    for (game = 0; game < 3; game++) {
        int root = game * 1299721 + 17;
        total = total + negamax(root, %(depth)d, -100000, 100000);
    }
    print_int(total); print_char(' ');
    print_int(nodes); print_char('\n');
    return 0;
}
"""


@register("crafty_like")
def build(scale: str) -> Workload:
    depth, branch = _SCALE[scale]
    return Workload(
        name="crafty_like",
        spec_analog="186.crafty",
        description="negamax alpha-beta search over a synthetic game tree",
        ib_profile="deep recursive call/return chains (return-dominated)",
        source=_TEMPLATE % {
            "rng": RNG_SNIPPET,
            "depth": depth,
            "branch": branch,
        },
    )
