"""``bzip2``-analog: sorting through a comparison function pointer.

256.bzip2's block sort is comparison-driven; modelled here as quicksort
taking its comparator as a function pointer (a hot, usually monomorphic
indirect-call site inside the partition loop, plus recursion), followed by
a move-to-front pass with a small switch.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": 24, "small": 80, "large": 320}

_TEMPLATE = r"""
%(rng)s

int data[%(size)d];
int mtf[16];

int cmp_asc(int a, int b)  { if (a < b) return -1; if (a > b) return 1; return 0; }
int cmp_desc(int a, int b) { if (a > b) return -1; if (a < b) return 1; return 0; }
int cmp_low(int a, int b)  { return cmp_asc(a & 255, b & 255); }

int qsort_range(int lo, int hi, int cmp) {
    if (lo >= hi) { return 0; }
    register int pivot = data[(lo + hi) / 2];
    register int i = lo;
    register int j = hi;
    while (i <= j) {
        while (cmp(data[i], pivot) < 0) { i++; }
        while (cmp(data[j], pivot) > 0) { j--; }
        if (i <= j) {
            register int t = data[i];
            data[i] = data[j];
            data[j] = t;
            i++;
            j--;
        }
    }
    qsort_range(lo, j, cmp);
    qsort_range(i, hi, cmp);
    return 1;
}

int fill(int n) {
    register int i;
    for (i = 0; i < n; i++) {
        data[i] = rng_next() & 0xffff;
    }
    return n;
}

int move_to_front(int n) {
    register int i;
    for (i = 0; i < 16; i++) { mtf[i] = i; }
    register int check = 0;
    for (i = 0; i < n; i++) {
        register int symbol = data[i] & 15;
        register int j = 0;
        while (mtf[j] != symbol) { j++; }
        register int k;
        for (k = j; k > 0; k--) { mtf[k] = mtf[k - 1]; }
        mtf[0] = symbol;
        switch (j & 7) {
        case 0: check = check + 1; break;
        case 1: check = check + j; break;
        case 2: check = check ^ j; break;
        case 3: check = check + (j << 2); break;
        case 4: check = check - j; break;
        case 5: check = check + (j * 3); break;
        case 6: check = check ^ (j << 1); break;
        default: check = check + 7; break;
        }
        check = check & 0xffffff;
    }
    return check;
}

int verify_sorted(int n, int cmp) {
    register int i;
    for (i = 1; i < n; i++) {
        if (cmp(data[i - 1], data[i]) > 0) { return 0; }
    }
    return 1;
}

int main() {
    int n = fill(%(size)d);
    qsort_range(0, n - 1, &cmp_asc);
    int ok1 = verify_sorted(n, &cmp_asc);
    int c1 = move_to_front(n);
    qsort_range(0, n - 1, &cmp_desc);
    int ok2 = verify_sorted(n, &cmp_desc);
    qsort_range(0, n - 1, &cmp_low);
    int c2 = move_to_front(n / 2);
    print_int(ok1 + ok2); print_char(' ');
    print_int(c1); print_char(' ');
    print_int(c2); print_char('\n');
    return 0;
}
"""


@register("bzip2_like")
def build(scale: str) -> Workload:
    size = _SCALE[scale]
    return Workload(
        name="bzip2_like",
        spec_analog="256.bzip2",
        description="function-pointer quicksort + move-to-front with switch",
        ib_profile="hot monomorphic indirect-call site (comparator) + deep "
        "recursion",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "size": size},
    )
