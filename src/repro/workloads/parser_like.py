"""``parser``-analog: recursive-descent parsing of synthetic expressions.

197.parser mixes recursion (returns), token dispatch (switches) and
data-dependent branching.  This program generates random arithmetic
expression strings into a token buffer and evaluates them with a
recursive-descent parser whose token dispatch is a switch.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": 20, "small": 80, "large": 300}

_TEMPLATE = r"""
%(rng)s

/* token kinds: 0..9 literal digits, 10 '+', 11 '-', 12 '*', 13 '(',
   14 ')', 15 end */
int tokens[512];
int ntokens = 0;
int pos = 0;

int emit_token(int kind) {
    tokens[ntokens] = kind;
    ntokens++;
    return ntokens;
}

/* generate a random expression with bounded depth */
int gen_expr(int depth) {
    register int choice = rng_next() %% 10;
    if (depth <= 0 || choice < 4 || ntokens > 480) {
        emit_token(rng_next() %% 10);
        return 1;
    }
    if (choice < 6) {
        emit_token(13);
        gen_expr(depth - 1);
        emit_token(14);
        return 1;
    }
    gen_expr(depth - 1);
    if (choice == 6) { emit_token(10); }
    if (choice == 7) { emit_token(11); }
    if (choice >= 8) { emit_token(12); }
    gen_expr(depth - 1);
    return 1;
}

int peek() { return tokens[pos]; }
int advance() { register int t = tokens[pos]; pos++; return t; }

int parse_expr();

int parse_primary() {
    register int t = advance();
    switch (t) {
    case 0: case 1: case 2: case 3: case 4:
    case 5: case 6: case 7: case 8: case 9:
        return t;
    case 13: {
        int v = parse_expr();
        advance(); /* ')' */
        return v;
    }
    default:
        return 0;
    }
}

int parse_term() {
    int v = parse_primary();
    while (peek() == 12) {
        advance();
        v = (v * parse_primary()) & 0xffff;
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    while (peek() == 10 || peek() == 11) {
        register int op = advance();
        register int rhs = parse_term();
        if (op == 10) { v = (v + rhs) & 0xffff; }
        else { v = (v - rhs) & 0xffff; }
    }
    return v;
}

int main() {
    register int round;
    int check = 0;
    for (round = 0; round < %(rounds)d; round++) {
        ntokens = 0;
        pos = 0;
        gen_expr(6);
        emit_token(15);
        register int value = parse_expr();
        check = (check * 31 + value) & 0xffffff;
    }
    print_int(check); print_char('\n');
    return 0;
}
"""


@register("parser_like")
def build(scale: str) -> Workload:
    rounds = _SCALE[scale]
    return Workload(
        name="parser_like",
        spec_analog="197.parser",
        description="random expression generation + recursive-descent "
        "evaluation",
        ib_profile="mixed: recursion returns + switch token dispatch",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "rounds": rounds},
    )
