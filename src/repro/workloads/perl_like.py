"""``perlbmk``-analog: opcode dispatch through a function-pointer table.

253.perlbmk spends its time in an interpreter whose op dispatch is an
indirect *call* through per-op function pointers, plus very deep
call/return traffic.  This program interprets a random op stream by
calling through a 12-entry handler table — one megamorphic indirect call
site — making it the stress test for indirect-call handling and the
benchmark where return mechanisms matter most.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": 400, "small": 1200, "large": 5000}

_TEMPLATE = r"""
%(rng)s

int acc = 1;
int mem[32];

int op_add(int v)  { acc = acc + v; return acc; }
int op_sub(int v)  { acc = acc - v; return acc; }
int op_mul(int v)  { acc = acc * (v | 1); return acc; }
int op_xor(int v)  { acc = acc ^ v; return acc; }
int op_shl(int v)  { acc = acc << (v & 7); return acc; }
int op_shr(int v)  { acc = acc >>> (v & 7); return acc; }
int op_sto(int v)  { mem[v & 31] = acc; return acc; }
int op_lda(int v)  { acc = acc + mem[v & 31]; return acc; }
int op_neg(int v)  { acc = -acc + v; return acc; }
int op_mod(int v)  { acc = acc %% ((v & 1023) + 2); return acc; }
int op_mix(int v)  { acc = (acc << 3) ^ (acc >>> 2) ^ v; return acc; }
int op_clamp(int v){ acc = acc & 0xffffff; return acc + (v & 1); }

int handlers[] = { &op_add, &op_sub, &op_mul, &op_xor,
                   &op_shl, &op_shr, &op_sto, &op_lda,
                   &op_neg, &op_mod, &op_mix, &op_clamp };

int run(int steps) {
    register int i;
    register int result = 0;
    for (i = 0; i < steps; i++) {
        register int insn = rng_next();
        register int op = insn %% 12;
        int handler = handlers[op];
        result = handler(insn & 0xffff);
        acc = acc & 0xfffffff;
    }
    return result;
}

int main() {
    int r = run(%(steps)d);
    register int i;
    int check = 0;
    for (i = 0; i < 32; i++) {
        check = (check * 33 + mem[i]) & 0xffffff;
    }
    print_int(r & 0xffffff); print_char(' ');
    print_int(check); print_char('\n');
    return 0;
}
"""


@register("perl_like")
def build(scale: str) -> Workload:
    steps = _SCALE[scale]
    return Workload(
        name="perl_like",
        spec_analog="253.perlbmk",
        description="interpreter dispatching ops through a 12-entry "
        "function-pointer table",
        ib_profile="indirect-call heavy (one megamorphic site) + dense "
        "call/return traffic",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "steps": steps},
    )
