"""Workload model and registry.

Each workload is a MiniC program designed to mimic the *indirect-branch
profile* of one SPEC CPU2000 integer benchmark — the property the paper's
results are driven by.  Real SPEC inputs are unavailable and irrelevant at
simulation scale (repro band 2/5), so each program synthesises its own
deterministic input with an embedded xorshift RNG and prints a checksum so
every run is verifiable against the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang import compile_to_program

#: Valid workload scales; `tiny` keeps unit tests fast, `small` is the
#: benchmark default, `large` stresses IB-target working sets.
SCALES = ("tiny", "small", "large")


@dataclass(frozen=True)
class Workload:
    """One benchmark program.

    ``language`` selects the compile path: ``"minic"`` (the benchmark
    suite) or ``"asm"`` (hand-written SR32, used by the coherence
    scenarios whose code layout must be controlled to the byte).
    """

    name: str
    spec_analog: str
    description: str
    ib_profile: str
    source: str
    language: str = "minic"

    def compile(self) -> Program:
        if self.language == "asm":
            return _assemble_cached(self.source)
        return _compile_cached(self.source)


@lru_cache(maxsize=128)
def _compile_cached(source: str) -> Program:
    return compile_to_program(source)


@lru_cache(maxsize=128)
def _assemble_cached(source: str) -> Program:
    return assemble(source)


_REGISTRY: dict[str, Callable[[str], Workload]] = {}


def register(name: str):
    """Decorator registering a ``build(scale) -> Workload`` factory."""

    def wrap(builder: Callable[[str], Workload]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate workload {name!r}")
        _REGISTRY[name] = builder
        return builder

    return wrap


def workload_names() -> list[str]:
    return sorted(_REGISTRY)


def get_workload(name: str, scale: str = "small") -> Workload:
    """Build a workload by name at the given scale."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from None
    return builder(scale)


def suite(scale: str = "small") -> list[Workload]:
    """The full benchmark suite at one scale."""
    return [get_workload(name, scale) for name in workload_names()]


#: MiniC xorshift32 PRNG shared by workload sources (deterministic inputs).
RNG_SNIPPET = r"""
int rng_state = 2463534242;

int rng_next() {
    register int x = rng_state;
    x = x ^ (x << 13);
    x = x ^ (x >>> 17);
    x = x ^ (x << 5);
    rng_state = x;
    return x & 0x7fffffff;
}
"""
