"""``gap``-analog: permutation-group interpreter.

254.gap is itself a language interpreter for computational group theory:
operation dispatch through handler tables plus heavy small-object
manipulation.  This program composes and inverses permutations under a
4-way handler table (indirect calls), walks orbits (loops + calls), and
uses recursion for element order computation — a mixed IB profile between
``perl_like`` (pure dispatch) and ``crafty_like`` (pure recursion).
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (8, 20), "small": (12, 50), "large": (16, 200)}

_TEMPLATE = r"""
%(rng)s

int DEG = %(degree)d;
int perm_a[%(degree)d];
int perm_b[%(degree)d];
int result[%(degree)d];
int scratch[%(degree)d];
int checksum = 0;

int op_compose(int unused) {
    register int i;
    for (i = 0; i < DEG; i++) { result[i] = perm_a[perm_b[i]]; }
    return 1;
}

int op_inverse(int unused) {
    register int i;
    for (i = 0; i < DEG; i++) { result[perm_a[i]] = i; }
    return 2;
}

int op_conjugate(int unused) {
    register int i;
    for (i = 0; i < DEG; i++) { scratch[perm_b[i]] = perm_b[perm_a[i]]; }
    for (i = 0; i < DEG; i++) { result[i] = scratch[i]; }
    return 3;
}

int op_power(int unused) {
    register int i;
    for (i = 0; i < DEG; i++) { result[i] = perm_a[perm_a[i]]; }
    return 4;
}

int handlers[] = { &op_compose, &op_inverse, &op_conjugate, &op_power };

int random_perm(int target) {
    register int i;
    for (i = 0; i < DEG; i++) { store(target + 4 * i, i); }
    for (i = DEG - 1; i > 0; i--) {
        register int j = rng_next() %% (i + 1);
        register int t = load(target + 4 * i);
        store(target + 4 * i, load(target + 4 * j));
        store(target + 4 * j, t);
    }
    return target;
}

/* order of the cycle containing `point` under perm_a (recursive walk) */
int cycle_length(int point, int start, int depth) {
    if (depth > DEG) { return depth; }
    if (perm_a[point] == start) { return depth + 1; }
    return cycle_length(perm_a[point], start, depth + 1);
}

int main() {
    register int round;
    for (round = 0; round < %(rounds)d; round++) {
        random_perm(&perm_a);
        random_perm(&perm_b);
        int op = rng_next() & 3;
        int handler = handlers[op];
        handler(0);
        register int i;
        for (i = 0; i < DEG; i++) {
            checksum = (checksum * 31 + result[i]) & 0xffffff;
        }
        checksum = (checksum + cycle_length(0, 0, 0)) & 0xffffff;
    }
    print_int(checksum); print_char('\n');
    return 0;
}
"""


@register("gap_like")
def build(scale: str) -> Workload:
    degree, rounds = _SCALE[scale]
    return Workload(
        name="gap_like",
        spec_analog="254.gap",
        description="permutation-group engine with handler-table dispatch "
        "and recursive cycle walks",
        ib_profile="mixed: indirect calls (4-way handler table) + "
        "recursion returns",
        source=_TEMPLATE % {
            "rng": RNG_SNIPPET,
            "degree": degree,
            "rounds": rounds,
        },
    )
