"""``eon``-analog: ray-object intersection through virtual dispatch.

252.eon is C++: its hot loops dispatch intersection tests through vtables.
Here a single hot indirect-call site cycles over three shape
"intersection" functions — the low-fan-out polymorphic-call case where a
per-site IBTC of just a few entries already captures the working set.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (40, 100), "small": (100, 1000), "large": (200, 4000)}

_TEMPLATE = r"""
%(rng)s

/* shape layout: [kind, p0, p1, p2] in parallel arrays */
int kind[%(nshapes)d];
int par0[%(nshapes)d];
int par1[%(nshapes)d];
int par2[%(nshapes)d];

int hit_sphere(int i, int ox, int oy) {
    register int dx = ox - par0[i];
    register int dy = oy - par1[i];
    register int r = par2[i] & 63;
    if (dx * dx + dy * dy <= r * r) { return 1; }
    return 0;
}

int hit_plane(int i, int ox, int oy) {
    register int d = par0[i] * ox + par1[i] * oy - par2[i];
    if (d >= 0) { return 1; }
    return 0;
}

int hit_box(int i, int ox, int oy) {
    if (ox >= par0[i] && ox < par0[i] + (par2[i] & 63)
        && oy >= par1[i] && oy < par1[i] + (par2[i] & 63)) {
        return 1;
    }
    return 0;
}

int intersect[] = { &hit_sphere, &hit_plane, &hit_box };

int build_scene(int n) {
    register int i;
    for (i = 0; i < n; i++) {
        kind[i] = rng_next() %% 3;
        par0[i] = rng_next() & 255;
        par1[i] = rng_next() & 255;
        par2[i] = rng_next() & 255;
    }
    return n;
}

int trace(int n, int rays) {
    register int r;
    register int hits = 0;
    for (r = 0; r < rays; r++) {
        register int ox = rng_next() & 255;
        register int oy = rng_next() & 255;
        register int i;
        for (i = 0; i < n; i++) {
            int test = intersect[kind[i]];
            hits = hits + test(i, ox, oy);
        }
    }
    return hits;
}

int main() {
    int n = build_scene(%(nshapes)d);
    int hits = trace(n, %(rays)d / n + 4);
    print_int(hits); print_char('\n');
    return 0;
}
"""


@register("eon_like")
def build(scale: str) -> Workload:
    nshapes, rays = _SCALE[scale]
    return Workload(
        name="eon_like",
        spec_analog="252.eon",
        description="2-D ray/shape intersection via a 3-way dispatch table",
        ib_profile="hot indirect-call site with 3 targets (low fan-out "
        "virtual dispatch)",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "nshapes": nshapes, "rays": rays},
    )
