"""``twolf``-analog: simulated-annealing placement.

300.twolf's hot loop proposes random cell swaps, evaluates a cost delta
through small helper functions and accepts/rejects — dense data-dependent
conditional branches plus steady call/return traffic with *monomorphic*
return sites (each helper returns to one hot caller), the case where even
small per-site mechanisms do well.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (16, 60), "small": (64, 140), "large": (64, 600)}

_TEMPLATE = r"""
%(rng)s

int cellx[%(ncells)d];
int celly[%(ncells)d];
int nets[%(ncells)d];
int temperature = 1000;

int setup(int n) {
    register int i;
    for (i = 0; i < n; i++) {
        cellx[i] = rng_next() & 255;
        celly[i] = rng_next() & 255;
        nets[i] = rng_next() %% n;
    }
    return n;
}

int absval(int x) { if (x < 0) return -x; return x; }

int wire_cost(int a, int b) {
    return absval(cellx[a] - cellx[b]) + absval(celly[a] - celly[b]);
}

int cell_cost(int c, int n) {
    register int peer = nets[c];
    register int next = (c + 1) %% n;
    return wire_cost(c, peer) + wire_cost(c, next);
}

int try_swap(int a, int b, int n) {
    register int before = cell_cost(a, n) + cell_cost(b, n);
    register int tx = cellx[a]; cellx[a] = cellx[b]; cellx[b] = tx;
    register int ty = celly[a]; celly[a] = celly[b]; celly[b] = ty;
    register int after = cell_cost(a, n) + cell_cost(b, n);
    register int delta = after - before;
    if (delta < 0) { return 1; }
    if ((rng_next() & 1023) < temperature) { return 1; }
    /* reject: swap back */
    tx = cellx[a]; cellx[a] = cellx[b]; cellx[b] = tx;
    ty = celly[a]; celly[a] = celly[b]; celly[b] = ty;
    return 0;
}

int main() {
    int n = setup(%(ncells)d);
    register int step;
    int accepted = 0;
    for (step = 0; step < %(steps)d; step++) {
        register int a = rng_next() %% n;
        register int b = rng_next() %% n;
        if (a != b) {
            accepted = accepted + try_swap(a, b, n);
        }
        if ((step & 255) == 255 && temperature > 10) {
            temperature = temperature * 9 / 10;
        }
    }
    register int i;
    int check = 0;
    for (i = 0; i < n; i++) {
        check = (check * 31 + cellx[i] * 257 + celly[i]) & 0xffffff;
    }
    print_int(accepted); print_char(' ');
    print_int(check); print_char('\n');
    return 0;
}
"""


@register("twolf_like")
def build(scale: str) -> Workload:
    ncells, steps = _SCALE[scale]
    return Workload(
        name="twolf_like",
        spec_analog="300.twolf",
        description="simulated-annealing cell placement with swap "
        "accept/reject",
        ib_profile="call/return traffic with monomorphic return sites + "
        "data-dependent branches",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "ncells": ncells, "steps": steps},
    )
