"""Synthetic microbenchmarks isolating one indirect-branch property.

Unlike the SPEC-analog suite these are not registered in the workload
registry; experiment E12 builds them directly to sweep a single parameter
(site fan-out) with everything else held constant.
"""

from __future__ import annotations

from repro.workloads.base import Workload


def dispatch_microbench(
    fanout: int,
    iterations: int = 2000,
    skewed: bool = False,
) -> Workload:
    """One hot indirect-call site with exactly ``fanout`` dynamic targets.

    ``skewed=False`` cycles targets round-robin (worst case for host BTBs
    and inline prediction); ``skewed=True`` sends ~7/8 of dispatches to
    target 0 (the regime inline prediction and MRU sieve chains exploit).
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    functions = "".join(
        f"int f{i}(int x) {{ return x + {i + 1}; }}\n" for i in range(fanout)
    )
    table = "int tab[] = { " + ", ".join(
        f"&f{i}" for i in range(fanout)
    ) + " };\n"
    if skewed:
        select = f"int which = (i & 7) ? 0 : ((i >> 3) % {fanout});"
    else:
        select = f"int which = i % {fanout};"
    source = (functions + table + """
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < %(iters)d; i++) {
        %(select)s
        int f = tab[which];
        acc += f(i);
        acc &= 0xffffff;
    }
    print_int(acc);
    return 0;
}
""") % {"iters": iterations, "select": select}
    pattern = "skewed" if skewed else "uniform"
    return Workload(
        name=f"micro_dispatch_{fanout}_{pattern}",
        spec_analog="(synthetic)",
        description=f"single dispatch site, fan-out {fanout}, "
        f"{pattern} target distribution",
        ib_profile=f"1 icall site x {fanout} targets",
        source=source,
    )
