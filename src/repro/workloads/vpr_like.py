"""``vpr``-analog: maze routing over a grid with direction dispatch.

175.vpr (place & route) mixes array-heavy wavefront expansion with
moderate switch dispatch on direction codes — the "middle of the pack"
benchmark in the paper's figures: neither IB-bound like perlbmk/gcc nor
IB-free like gzip.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (6, 2), "small": (8, 6), "large": (10, 12)}

_TEMPLATE = r"""
%(rng)s

int grid[%(cells)d];
int frontier[%(cells)d];
int nfront = 0;

int idx(int x, int y) { return y * %(dim)d + x; }

int step_cost(int dir, int x, int y) {
    switch (dir) {
    case 0: return 1 + (grid[idx(x, y)] & 3);
    case 1: return 2;
    case 2: return 1 + ((x + y) & 1);
    case 3: return 3;
    case 4: return 1;
    case 5: return 2 + (grid[idx(x, y)] & 1);
    case 6: return 1 + (y & 3);
    default: return 4;
    }
}

int expand(int x, int y, int budget) {
    register int dir;
    register int reached = 0;
    for (dir = 0; dir < 8; dir++) {
        register int nx = x + (dir & 1) - ((dir >> 1) & 1);
        register int ny = y + ((dir >> 2) & 1) - ((dir >> 1) & 1);
        if (nx < 0 || ny < 0 || nx >= %(dim)d || ny >= %(dim)d) {
            continue;
        }
        register int cost = step_cost(dir, nx, ny);
        register int cell = idx(nx, ny);
        if (grid[cell] == 0 && cost <= budget) {
            grid[cell] = cost;
            frontier[nfront] = cell;
            nfront++;
            reached++;
        }
    }
    return reached;
}

int route(int sx, int sy, int budget) {
    register int head = 0;
    nfront = 0;
    grid[idx(sx, sy)] = 1;
    frontier[nfront] = idx(sx, sy);
    nfront++;
    register int total = 0;
    while (head < nfront && nfront < %(cells)d - 8) {
        register int cell = frontier[head];
        head++;
        total = total + expand(cell %% %(dim)d, cell / %(dim)d, budget);
    }
    return total;
}

int main() {
    register int net;
    int routed = 0;
    for (net = 0; net < %(nets)d; net++) {
        register int i;
        for (i = 0; i < %(cells)d; i++) { grid[i] = 0; }
        routed = routed + route(rng_next() %% %(dim)d,
                                rng_next() %% %(dim)d,
                                (rng_next() & 3) + 1);
    }
    register int i;
    int check = 0;
    for (i = 0; i < %(cells)d; i++) {
        check = (check * 17 + grid[i]) & 0xffffff;
    }
    print_int(routed); print_char(' ');
    print_int(check); print_char('\n');
    return 0;
}
"""


@register("vpr_like")
def build(scale: str) -> Workload:
    dim, nets = _SCALE[scale]
    return Workload(
        name="vpr_like",
        spec_analog="175.vpr",
        description="wavefront maze routing with switch-dispatched "
        "direction costs",
        ib_profile="mixed: moderate switch rate + calls within array loops",
        source=_TEMPLATE % {
            "rng": RNG_SNIPPET,
            "dim": dim,
            "cells": dim * dim,
            "nets": nets,
        },
    )
