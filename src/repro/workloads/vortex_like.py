"""``vortex``-analog: object database with virtual method dispatch.

255.vortex is an object-oriented database whose hot paths dispatch through
per-type method tables.  This program keeps a heap of typed records and
drives insert/update/query/validate transactions through a 4-type x
4-method vtable — several indirect-call sites of moderate polymorphism,
plus hash-bucket walking.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": (32, 200), "small": (96, 600), "large": (160, 2500)}

_TEMPLATE = r"""
%(rng)s

/* record layout: [type, key, value, spare] — 16 bytes in the heap      */
int records[%(nrec)d];
int nrecords = 0;
int audit = 0;

/* ---- type 0: plain ---- */
int plain_insert(int r)  { store(r + 8, load(r + 4) * 3); return 1; }
int plain_update(int r)  { store(r + 8, load(r + 8) + 1); return 1; }
int plain_query(int r)   { return load(r + 8); }
int plain_check(int r)   { return load(r + 8) & 0xffff; }

/* ---- type 1: counted ---- */
int cnt_insert(int r)  { store(r + 8, 1); return 1; }
int cnt_update(int r)  { store(r + 8, load(r + 8) * 2 + 1); return 1; }
int cnt_query(int r)   { return load(r + 8) ^ load(r + 4); }
int cnt_check(int r)   { return (load(r + 8) + 7) & 0xffff; }

/* ---- type 2: hashed ---- */
int hsh_insert(int r)  { store(r + 8, (load(r + 4) * 2654435761) & 0x7fffffff); return 1; }
int hsh_update(int r)  { store(r + 8, load(r + 8) >>> 1); return 1; }
int hsh_query(int r)   { return load(r + 8) & 1023; }
int hsh_check(int r)   { return load(r + 8) %% 8191; }

/* ---- type 3: linked ---- */
int lnk_insert(int r)  { store(r + 8, load(r + 4) | 1); return 1; }
int lnk_update(int r)  { store(r + 8, load(r + 8) + load(r + 4)); return 1; }
int lnk_query(int r)   { return load(r + 8) - load(r + 4); }
int lnk_check(int r)   { return (load(r + 8) ^ 0xaaaa) & 0xffff; }

int vtable[] = {
    &plain_insert, &plain_update, &plain_query, &plain_check,
    &cnt_insert,   &cnt_update,   &cnt_query,   &cnt_check,
    &hsh_insert,   &hsh_update,   &hsh_query,   &hsh_check,
    &lnk_insert,   &lnk_update,   &lnk_query,   &lnk_check
};

int dispatch(int rec, int method) {
    register int type = load(rec);
    int fn = vtable[type * 4 + method];
    return fn(rec);
}

int new_record(int key) {
    int rec = sbrk(16);
    store(rec, key & 3);
    store(rec + 4, key);
    store(rec + 8, 0);
    records[nrecords] = rec;
    nrecords++;
    dispatch(rec, 0);
    return rec;
}

int transaction(int op) {
    register int index = rng_next() %% nrecords;
    register int rec = records[index];
    if (op == 0) { return dispatch(rec, 1); }
    if (op == 1) { audit = (audit + dispatch(rec, 2)) & 0xffffff; return 1; }
    audit = (audit ^ dispatch(rec, 3)) & 0xffffff;
    return 2;
}

int main() {
    register int i;
    for (i = 0; i < %(nrec)d; i++) {
        new_record(rng_next());
    }
    for (i = 0; i < %(ntxn)d; i++) {
        transaction(rng_next() %% 3);
    }
    print_int(audit); print_char(' ');
    print_int(nrecords); print_char('\n');
    return 0;
}
"""


@register("vortex_like")
def build(scale: str) -> Workload:
    nrec, ntxn = _SCALE[scale]
    return Workload(
        name="vortex_like",
        spec_analog="255.vortex",
        description="typed-record database driven through a 4x4 vtable",
        ib_profile="indirect calls of moderate polymorphism (virtual "
        "dispatch) + returns",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "nrec": nrec, "ntxn": ntxn},
    )
