"""Coherence scenario workloads: guests that write their own code.

Every workload in the benchmark registry executes static text, so these
three scenarios live outside it (E1–E14 and the CLI iterate the registry;
``coherence="none"`` runs would silently execute stale fragments on these
programs — by design, that is the failure mode E15 measures the cost of
avoiding).  They are hand-written SR32 assembly because the code *layout*
is the point: what shares a page with what determines how the ``flush`` /
``page`` / ``targeted`` invalidation policies separate.

All three rely on two ISA facts (see ``repro.isa.assembler``):

* J-format jumps encode an **absolute** word address, so a jump word
  copied byte-for-byte to a new location still transfers to its original
  target — that is how ``smc_loop`` patches a jump by copying template
  words.
* Conditional branches encode a **relative** displacement, so a
  self-contained code region whose only internal control is branches
  (plus a ``ret``) relocates freely — that is how ``dyn_loader`` "maps"
  a library by copying it into a scratch region.

Data directives are illegal in ``.text``, so patchable/JIT regions are
``nop`` sleds: real instructions that are simply never executed until
the guest overwrites them.

Visibility rule (docs/robustness.md): a store to code becomes visible at
the next control transfer.  Every scenario stores, then transfers
control (``jalr``), and only then executes the written bytes — never
patching ahead of itself inside a straight-line run.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.machine.memory import PAGE_SHIFT
from repro.workloads.base import Workload

#: Scenario names, in suite order.
COHERENCE_WORKLOADS = ("smc_loop", "dyn_loader", "mini_jit")

_ITERS = {"tiny": 8, "small": 64, "large": 256}

#: One page of nops (4 KiB / 4 bytes per instruction) — inserted between
#: the driver loop and the written region so they land on distinct pages.
_PAGE_SLED = "\n".join(["    nop"] * 1024)

_EPILOGUE = """\
    mv   a0, s1
    li   v0, 1
    syscall                 # print checksum
    li   v0, 10
    li   a0, 0
    syscall                 # exit 0
"""


def _page(program: Program, label: str) -> int:
    return program.symbol(label) >> PAGE_SHIFT


def _check_layout(program: Program, same: list[tuple[str, str]],
                  distinct: list[tuple[str, str]]) -> None:
    """Assert the page layout the scenario's cost separation depends on."""
    for a, b in same:
        if _page(program, a) != _page(program, b):
            raise AssertionError(
                f"coherence scenario layout: {a} and {b} must share a page"
            )
    for a, b in distinct:
        if _page(program, a) == _page(program, b):
            raise AssertionError(
                f"coherence scenario layout: {a} and {b} must be on "
                f"distinct pages"
            )


def smc_loop(scale: str = "small") -> Workload:
    """Self-modifying loop: re-patches the jump it then calls.

    Each iteration copies a template jump word (``j path_a`` or
    ``j path_b``, alternating) over ``patch_site`` and indirect-calls it.
    ``helper`` sits on the *same page* as ``patch_site`` but is never
    written: ``targeted`` keeps its fragment alive across every patch,
    ``page`` kills it each time, ``flush`` kills everything — the
    three-way cost separation E15 measures.
    """
    iters = _ITERS[scale]
    source = f"""\
    .text
    .entry main
main:
    li   s0, {iters}
    li   s1, 0              # checksum
    la   s2, patch_site
    la   t0, tpl_a
    lw   s3, 0(t0)          # template word: j path_a (absolute target)
    la   t0, tpl_b
    lw   s4, 0(t0)          # template word: j path_b
    la   s6, helper
loop:
    andi t0, s0, 1
    beqz t0, even
    sw   s3, 0(s2)          # patch: j path_a
    b    fire
even:
    sw   s4, 0(s2)          # patch: j path_b
fire:
    jalr s2                 # indirect call into the patched site
    add  s1, s1, v0
    jalr s6                 # same-page neighbour, never written
    add  s1, s1, v0
    addi s0, s0, -1
    bnez s0, loop
{_EPILOGUE}
    # unreachable template words the patch loop copies from
tpl_a:
    j    path_a
tpl_b:
    j    path_b
{_PAGE_SLED}
patch_site:
    j    path_a             # overwritten every iteration
path_a:
    li   v0, 1
    ret
path_b:
    li   v0, 2
    ret
helper:
    li   v0, 3
    ret
"""
    workload = Workload(
        name="smc_loop",
        spec_analog="none (coherence scenario)",
        description=(
            "self-modifying loop alternately patching a jump between two "
            "targets, with an unwritten same-page helper"
        ),
        ib_profile="two icall sites; one hits freshly patched code",
        source=source,
        language="asm",
    )
    _check_layout(
        workload.compile(),
        same=[("patch_site", "helper"), ("patch_site", "path_a")],
        distinct=[("loop", "patch_site"), ("tpl_a", "patch_site")],
    )
    return workload


def dyn_loader(scale: str = "small") -> Workload:
    """Load/unload scenario: alternately copies two "libraries" into one
    region and indirect-calls the region.

    The templates are self-contained (internal control is PC-relative
    branches plus ``ret``), so the word-copy relocates them correctly.
    Re-loading overwrites the previous library's translated fragments —
    the dynamically-loaded-code flavour of the coherence problem.
    """
    iters = _ITERS[scale]
    source = f"""\
    .text
    .entry main
main:
    li   s0, {iters}
    li   s1, 0              # checksum
    la   s5, lib_region
loop:
    andi t0, s0, 1
    beqz t0, pick_b
    la   s2, lib_a
    la   s3, lib_a_end
    b    load
pick_b:
    la   s2, lib_b
    la   s3, lib_b_end
load:
    mv   t3, s5
copy:
    lw   t4, 0(s2)          # word-copy the library image
    sw   t4, 0(t3)
    addi s2, s2, 4
    addi t3, t3, 4
    bne  s2, s3, copy
    jalr s5                 # indirect call into the loaded library
    add  s1, s1, v0
    addi s0, s0, -1
    bnez s0, loop
{_EPILOGUE}
    # library images: self-contained, PC-relative control only
lib_a:
    li   v0, 0
    li   t5, 5
lib_a_loop:
    add  v0, v0, t5
    addi t5, t5, -1
    bnez t5, lib_a_loop
    ret
lib_a_end:
lib_b:
    li   v0, 7
    li   t5, 4
lib_b_loop:
    add  v0, v0, t5
    addi t5, t5, -1
    bnez t5, lib_b_loop
    ret
lib_b_end:
{_PAGE_SLED}
lib_region:
{chr(10).join(["    nop"] * 16)}
"""
    workload = Workload(
        name="dyn_loader",
        spec_analog="none (coherence scenario)",
        description=(
            "alternately copies two relocatable library images into one "
            "region and indirect-calls it (load/unload cycle)"
        ),
        ib_profile="one polymorphic icall site into reloaded code",
        source=source,
        language="asm",
    )
    _check_layout(
        workload.compile(),
        same=[],
        distinct=[("loop", "lib_region"), ("lib_a", "lib_region")],
    )
    return workload


def mini_jit(scale: str = "small") -> Workload:
    """Guest-hosted mini-JIT: emits a fresh two-instruction function each
    iteration and indirect-jumps to it.

    The emitter ORs the iteration counter into the immediate field of an
    ``addi v0, zero, 0`` template word, appends a copied ``ret`` word,
    and calls the region — every call runs code that did not exist one
    store ago, the worst case for any invalidation policy.
    """
    iters = _ITERS[scale]
    source = f"""\
    .text
    .entry main
main:
    li   s0, {iters}
    li   s1, 0              # checksum
    la   s5, jit_region
    la   t0, jit_tpl
    lw   s6, 0(t0)          # template word: addi v0, zero, 0
    la   t0, ret_tpl
    lw   s7, 0(t0)          # template word: ret
loop:
    andi t0, s0, 0x7ff
    or   t1, s6, t0         # splice k into the addi immediate field
    sw   t1, 0(s5)          # emit: addi v0, zero, k
    sw   s7, 4(s5)          # emit: ret
    jalr s5                 # call the freshly emitted function
    add  s1, s1, v0
    addi s0, s0, -1
    bnez s0, loop
{_EPILOGUE}
    # unreachable template words the emitter copies from
jit_tpl:
    addi v0, zero, 0
ret_tpl:
    ret
{_PAGE_SLED}
jit_region:
{chr(10).join(["    nop"] * 8)}
"""
    workload = Workload(
        name="mini_jit",
        spec_analog="none (coherence scenario)",
        description=(
            "guest-hosted mini-JIT emitting a fresh two-instruction "
            "function per iteration and calling it"
        ),
        ib_profile="one icall site whose target is always just-written",
        source=source,
        language="asm",
    )
    _check_layout(
        workload.compile(),
        same=[],
        distinct=[("loop", "jit_region"), ("jit_tpl", "jit_region")],
    )
    return workload


_BUILDERS = {
    "smc_loop": smc_loop,
    "dyn_loader": dyn_loader,
    "mini_jit": mini_jit,
}


def get_coherence_workload(name: str, scale: str = "small") -> Workload:
    """Build one coherence scenario by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown coherence scenario {name!r}; "
            f"available: {list(COHERENCE_WORKLOADS)}"
        ) from None
    return builder(scale)


def coherence_suite(scale: str = "small") -> list[Workload]:
    """All three scenarios at one scale."""
    return [get_coherence_workload(name, scale)
            for name in COHERENCE_WORKLOADS]


__all__ = [
    "COHERENCE_WORKLOADS",
    "coherence_suite",
    "dyn_loader",
    "get_coherence_workload",
    "mini_jit",
    "smc_loop",
]
