"""``gzip``-analog: tight compression loops, very few indirect branches.

In the paper, 164.gzip is at the low-IB-rate end of SPEC: overhead under
any mechanism is small because IB dispatches are rare.  This program
run-length-encodes and hash-matches a synthetic buffer; almost all dynamic
instructions are ALU/loads in loops, with only function returns as IBs.
"""

from __future__ import annotations

from repro.workloads.base import RNG_SNIPPET, Workload, register

_SCALE = {"tiny": 400, "small": 1000, "large": 4000}

_TEMPLATE = r"""
%(rng)s

int buffer[%(size)d];
int out_count = 0;
int checksum = 0;

int fill_buffer(int n) {
    register int i;
    register int run = 0;
    register int value = 0;
    for (i = 0; i < n; i++) {
        if (run == 0) {
            value = rng_next() & 15;
            run = (rng_next() & 7) + 1;
        }
        buffer[i] = value;
        run--;
    }
    return n;
}

int emit(int value, int count) {
    checksum = checksum * 31 + value;
    checksum = checksum * 31 + count;
    checksum = checksum & 0xffffff;
    out_count++;
    return out_count;
}

int rle_encode(int n) {
    register int i = 0;
    while (i < n) {
        register int value = buffer[i];
        register int j = i + 1;
        while (j < n && buffer[j] == value) {
            j++;
        }
        emit(value, j - i);
        i = j;
    }
    return out_count;
}

int hash_matches(int n) {
    register int i;
    register int hits = 0;
    int heads[64];
    for (i = 0; i < 64; i++) { heads[i] = -1; }
    for (i = 0; i + 2 < n; i++) {
        register int h = (buffer[i] * 33 + buffer[i+1] * 7 + buffer[i+2]) & 63;
        if (heads[h] >= 0) {
            register int k = heads[h];
            if (buffer[k] == buffer[i] && buffer[k+1] == buffer[i+1]) {
                hits++;
            }
        }
        heads[h] = i;
    }
    return hits;
}

int main() {
    int n = fill_buffer(%(size)d);
    int blocks = rle_encode(n);
    int hits = hash_matches(n);
    print_int(checksum); print_char(' ');
    print_int(blocks); print_char(' ');
    print_int(hits); print_char('\n');
    return 0;
}
"""


@register("gzip_like")
def build(scale: str) -> Workload:
    size = _SCALE[scale]
    return Workload(
        name="gzip_like",
        spec_analog="164.gzip",
        description="RLE + hash-match compression over a synthetic buffer",
        ib_profile="loop-heavy, IBs almost exclusively returns (low IB rate)",
        source=_TEMPLATE % {"rng": RNG_SNIPPET, "size": size},
    )
