"""Host architecture profiles.

An :class:`ArchProfile` bundles every host-dependent cost the SDT and the
native baseline charge.  The preset values are *relative* costs chosen to
match the qualitative properties the paper attributes to each machine — a
deep-pipeline Pentium 4 with a brutal indirect-branch mispredict penalty, a
shallower AMD K8, and an UltraSPARC-III whose register windows make a full
context switch into the translator disproportionately expensive.  Absolute
cycle fidelity is out of scope (repro band 2/5); the cross-profile *ratios*
are the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.isa.opcodes import InstrClass


def _default_class_cycles() -> dict[InstrClass, int]:
    return {
        InstrClass.ALU: 1,
        InstrClass.SHIFT: 1,
        InstrClass.MUL: 3,
        InstrClass.DIV: 20,
        InstrClass.LOAD: 2,
        InstrClass.STORE: 1,
        InstrClass.BRANCH: 1,
        InstrClass.JUMP: 1,
        InstrClass.CALL: 1,
        InstrClass.IJUMP: 1,
        InstrClass.ICALL: 1,
        InstrClass.RET: 1,
        InstrClass.SYSCALL: 100,
        InstrClass.HALT: 0,
    }


@dataclass(frozen=True)
class ArchProfile:
    """Every host-dependent cost parameter, in cycles unless noted."""

    name: str
    #: base cycles per retired instruction, by class
    class_cycles: dict[InstrClass, int] = field(
        default_factory=_default_class_cycles
    )
    #: pipeline refill cost of any mispredicted branch
    mispredict_penalty: int = 12
    #: entries in the (direct-mapped) branch target buffer
    btb_entries: int = 512
    #: hardware return-address stack depth
    ras_entries: int = 16
    #: entries in the bimodal conditional predictor
    bimodal_entries: int = 4096
    #: save or restore of the full register state (one direction)
    context_half_switch: int = 40
    #: translator's hash-map probe (hashing + chasing + compare)
    map_lookup: int = 30
    #: translating one guest instruction into the fragment cache.
    #: NOTE: scaled ~100x below the real cost so that, at simulation scale
    #: (~10^5 retired instructions vs the paper's ~10^11), translation is
    #: amortised to the same "negligible" level the paper reports; see
    #: DESIGN.md "Key design decisions".
    translate_per_instr: int = 3
    #: fixed per-fragment translation overhead (allocation, linking setup),
    #: scaled as above
    translate_fragment: int = 10
    #: inlined IBTC probe: hash/mask + load tag + compare (before the jump)
    ibtc_probe: int = 6
    #: extra cycles when an IBTC probe must spill/restore scratch registers
    ibtc_spill: int = 2
    #: jumping to (and back from) a shared out-of-line IBTC lookup stub
    ibtc_stub_jump: int = 2
    #: computing the sieve hash and dispatching into the bucket
    sieve_dispatch: int = 4
    #: one sieve stage: compare target against a known address + branch
    sieve_stage: int = 2
    #: maintaining the SDT shadow return stack (push at call, pop at return)
    shadow_push: int = 3
    shadow_pop: int = 4
    #: fast returns: translating the return address at the call site
    fast_return_fixup: int = 2
    #: return cache: hash + unconditional jump through the table
    retcache_probe: int = 3
    #: return cache: landing-pad verification compare in the prologue
    retcache_check: int = 1
    #: patching a fragment-cache exit stub when linking fragments
    link_patch: int = 25

    def instr_cycles(self, iclass: InstrClass) -> int:
        return self.class_cycles[iclass]

    def fingerprint(self) -> tuple:
        """Canonical, hashable identity covering every cost parameter.

        Two profiles with equal fingerprints charge identical costs, even
        when :meth:`derive` reuses a preset name — cache keys must use
        this, never just ``name``.
        """
        items: list[tuple[str, object]] = []
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                value = tuple(
                    sorted((key.name, cycles) for key, cycles in value.items())
                )
            items.append((spec.name, value))
        return tuple(items)

    def derive(self, name: str, **overrides) -> "ArchProfile":
        """A copy of this profile with some fields replaced."""
        return replace(self, name=name, **overrides)


#: Idealised single-issue machine: no mispredict penalty asymmetry; used by
#: unit tests because the arithmetic is easy to check by hand.
SIMPLE = ArchProfile(
    name="simple",
    mispredict_penalty=5,
    context_half_switch=20,
    map_lookup=20,
    translate_per_instr=5,
    translate_fragment=10,
)

#: Pent-4-like: very deep pipeline, savage mispredict penalty, big BTB.
X86_P4 = ArchProfile(
    name="x86_p4",
    mispredict_penalty=30,
    btb_entries=2048,
    ras_entries=16,
    context_half_switch=45,
    map_lookup=35,
    ibtc_probe=6,
    sieve_dispatch=4,
    sieve_stage=2,
)

#: K8-like: shallower pipeline, moderate penalty.
X86_K8 = ArchProfile(
    name="x86_k8",
    mispredict_penalty=11,
    btb_entries=2048,
    ras_entries=12,
    context_half_switch=40,
    map_lookup=30,
    ibtc_probe=5,
    sieve_dispatch=4,
    sieve_stage=2,
)

#: UltraSPARC-III-like: in-order, small mispredict penalty, *no* hardware
#: return-address stack to speak of (tiny), and register windows that make
#: the full context switch into the translator very expensive (window
#: spill/fill traps).
SPARC_US3 = ArchProfile(
    name="sparc_us3",
    mispredict_penalty=8,
    btb_entries=512,
    ras_entries=4,
    context_half_switch=110,
    map_lookup=40,
    translate_per_instr=4,
    translate_fragment=12,
    ibtc_probe=8,
    sieve_dispatch=6,
    sieve_stage=3,
)

PROFILES: dict[str, ArchProfile] = {
    profile.name: profile
    for profile in (SIMPLE, X86_P4, X86_K8, SPARC_US3)
}


def get_profile(name: str) -> ArchProfile:
    """Look up a preset profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
