"""Cycle accounting shared by native and SDT runs.

:class:`HostModel` owns the predictors and a categorised cycle accumulator.
The native baseline drives it through :class:`NativeCostObserver`; the SDT
drives it directly from its dispatch paths.  Both charge *exactly* the same
costs for application instructions, so `sdt_cycles / native_cycles` isolates
SDT overhead — the paper's normalisation.
"""

from __future__ import annotations

import enum
from collections import Counter

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.host.predictors import (
    BimodalPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
)
from repro.host.profile import ArchProfile


class Category(enum.Enum):
    """Where cycles went (the paper's overhead decomposition)."""

    APP = "app"                      # the application's own instructions
    COND_MISPREDICT = "cond_mispredict"
    IND_MISPREDICT = "ind_mispredict"
    TRANSLATE = "translate"          # building fragments
    CONTEXT_SWITCH = "context_switch"
    MAP_LOOKUP = "map_lookup"        # translator hash-map probe
    IBTC = "ibtc"                    # inlined IBTC probe code
    SIEVE = "sieve"                  # sieve dispatch + stages
    SHADOW_STACK = "shadow_stack"    # SDT shadow return stack maintenance
    FAST_RETURN = "fast_return"      # call-site return-address fixup
    RETCACHE = "retcache"            # return-cache probe + verification
    LINK = "link"                    # fragment link patching
    STATIC = "static"                # static-targets guards + preseeding


#: Categories counted as SDT overhead (everything except app work and the
#: mispredictions the native run would also have paid).
OVERHEAD_CATEGORIES = frozenset(Category) - {
    Category.APP,
    Category.COND_MISPREDICT,
    Category.IND_MISPREDICT,
}


class HostModel:
    """Predictors plus a categorised cycle accumulator."""

    def __init__(self, profile: ArchProfile):
        self.profile = profile
        self.bimodal = BimodalPredictor(profile.bimodal_entries)
        self.btb = BranchTargetBuffer(profile.btb_entries)
        self.ras = ReturnAddressStack(profile.ras_entries)
        self.cycles: Counter = Counter()
        self._class_cycles = dict(profile.class_cycles)

    # -- raw charging -------------------------------------------------------

    def charge(self, category: Category, cycles: int) -> None:
        self.cycles[category] += cycles

    def charge_instr(self, iclass: InstrClass) -> None:
        """Base cost of one retired application instruction."""
        self.cycles[Category.APP] += self._class_cycles[iclass]

    def charge_block(self, cycles: int) -> None:
        """Bulk APP charge for a whole block of retired instructions.

        ``cycles`` must be the precomputed per-class sum for the block
        (see :class:`repro.machine.engine.Superblock`), so charging a
        block once is cycle-identical to charging each instruction.
        """
        self.cycles[Category.APP] += cycles

    def block_cycles(self, counts: dict[InstrClass, int]) -> int:
        """Total APP cycles for an instruction-class count vector."""
        class_cycles = self._class_cycles
        return sum(class_cycles[ic] * n for ic, n in counts.items())

    # -- host-level branch events -------------------------------------------
    #
    # ``site`` is the address of the *host* branch instruction: the guest PC
    # for native runs, the fragment-cache address for translated code.  The
    # optional ``category`` attributes the penalty (e.g. a mispredicted IBTC
    # dispatch jump is IBTC overhead, not app cost).

    def cond_branch(
        self,
        site: int,
        taken: bool,
        category: Category = Category.COND_MISPREDICT,
    ) -> bool:
        """A conditional direct branch executed at ``site``."""
        if self.bimodal.access(site, taken):
            self.cycles[category] += self.profile.mispredict_penalty
            return True
        return False

    def indirect_jump(
        self,
        site: int,
        target: int,
        category: Category = Category.IND_MISPREDICT,
    ) -> bool:
        """An indirect jump/call at ``site`` landing on ``target``."""
        if self.btb.access(site, target):
            self.cycles[category] += self.profile.mispredict_penalty
            return True
        return False

    def host_call(self, return_addr: int) -> None:
        """A host ``call``: pushes the hardware RAS."""
        self.ras.push(return_addr)

    def host_return(
        self,
        target: int,
        category: Category = Category.IND_MISPREDICT,
    ) -> bool:
        """A host ``ret``: pops and checks the hardware RAS."""
        if self.ras.pop(target):
            self.cycles[category] += self.profile.mispredict_penalty
            return True
        return False

    # -- results -------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    @property
    def overhead_cycles(self) -> int:
        return sum(
            cycles
            for category, cycles in self.cycles.items()
            if category in OVERHEAD_CATEGORIES
        )

    def breakdown(self) -> dict[str, int]:
        """Cycle totals by category name (stable keys for reporting)."""
        return {category.value: self.cycles[category] for category in Category}


class NativeCostObserver:
    """Interpreter observer charging native-execution costs.

    Attach to :class:`repro.machine.interpreter.Interpreter` to obtain the
    denominator of every overhead figure in the paper.
    """

    def __init__(self, model: HostModel):
        self.model = model

    def __call__(self, pc: int, instr: Instruction, next_pc: int) -> None:
        model = self.model
        iclass = instr.iclass
        model.charge_instr(iclass)
        if iclass is InstrClass.BRANCH:
            model.cond_branch(pc, taken=next_pc != pc + 4)
        elif iclass is InstrClass.CALL:
            model.host_call(pc + 4)
        elif iclass is InstrClass.ICALL:
            model.host_call(pc + 4)
            model.indirect_jump(pc, next_pc)
        elif iclass is InstrClass.IJUMP:
            model.indirect_jump(pc, next_pc)
        elif iclass is InstrClass.RET:
            model.host_return(next_pc)
