"""Host microarchitecture cost model.

The paper's results are driven by a handful of host-microarchitecture
parameters: the penalty of a mispredicted indirect jump, the effectiveness
of the hardware return-address stack, the price of a full context switch
into the translator, and the per-probe cost of software lookup code.  This
package makes those parameters explicit:

- :mod:`repro.host.profile` — :class:`ArchProfile` presets (``x86_p4``,
  ``x86_k8``, ``sparc_us3``, ``simple``),
- :mod:`repro.host.predictors` — bimodal conditional predictor, branch
  target buffer, return-address stack,
- :mod:`repro.host.costs` — the :class:`HostModel` cycle accumulator shared
  by native and SDT runs.
"""

from repro.host.costs import Category, HostModel, NativeCostObserver
from repro.host.predictors import BimodalPredictor, BranchTargetBuffer, ReturnAddressStack
from repro.host.profile import (
    ArchProfile,
    PROFILES,
    SIMPLE,
    SPARC_US3,
    X86_K8,
    X86_P4,
    get_profile,
)

__all__ = [
    "ArchProfile",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "Category",
    "HostModel",
    "NativeCostObserver",
    "PROFILES",
    "ReturnAddressStack",
    "SIMPLE",
    "SPARC_US3",
    "X86_K8",
    "X86_P4",
    "get_profile",
]
