"""Host branch-prediction structures.

These are deliberately simple, classical designs — the paper's argument
does not depend on predictor sophistication, only on the *kind* of host
branch each SDT mechanism executes:

- a conditional direct branch (sieve stage) trains a :class:`BimodalPredictor`,
- an indirect jump (IBTC hit, translator dispatch) trains a
  :class:`BranchTargetBuffer`, whose accuracy collapses for megamorphic sites,
- a host ``call``/``ret`` pair (fast returns) keeps the
  :class:`ReturnAddressStack` usable, which generic IB handling forfeits.
"""

from __future__ import annotations


class BimodalPredictor:
    """Per-PC 2-bit saturating counter predictor for conditional branches."""

    __slots__ = ("_mask", "_table", "hits", "misses")

    def __init__(self, entries: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self._mask = entries - 1
        self._table = bytearray([1] * entries)
        self.hits = 0
        self.misses = 0

    def access(self, pc: int, taken: bool) -> bool:
        """Predict, update, and return True on a *misprediction*."""
        index = (pc >> 2) & self._mask
        counter = self._table[index]
        predicted_taken = counter >= 2
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        if predicted_taken == taken:
            self.hits += 1
            return False
        self.misses += 1
        return True


class BranchTargetBuffer:
    """Direct-mapped, tagged BTB for indirect jumps/calls.

    Predicts "same target as last time" per site — the behaviour the paper
    assumes when it argues that an IBTC hit still pays a hardware
    misprediction whenever an indirect site is polymorphic.
    """

    __slots__ = ("_mask", "_tags", "_targets", "hits", "misses")

    def __init__(self, entries: int):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self._targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def access(self, pc: int, target: int) -> bool:
        """Predict the target of the indirect branch at ``pc``.

        Updates the entry and returns True on a *misprediction* (wrong
        target or cold/conflicting entry).
        """
        index = (pc >> 2) & self._mask
        mispredicted = self._tags[index] != pc or self._targets[index] != target
        self._tags[index] = pc
        self._targets[index] = target
        if mispredicted:
            self.misses += 1
        else:
            self.hits += 1
        return mispredicted


class ReturnAddressStack:
    """Fixed-depth hardware return-address stack (circular, as real RAS).

    Overflow overwrites the oldest entry; underflow mispredicts.
    """

    __slots__ = ("_entries", "_stack", "_top", "_depth", "hits", "misses")

    def __init__(self, entries: int):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self._entries = entries
        self._stack = [0] * entries
        self._top = 0
        self._depth = 0
        self.hits = 0
        self.misses = 0

    def push(self, return_addr: int) -> None:
        self._stack[self._top] = return_addr
        self._top = (self._top + 1) % self._entries
        if self._depth < self._entries:
            self._depth += 1

    def pop(self, actual_target: int) -> bool:
        """Pop a prediction and return True on a *misprediction*."""
        if self._depth == 0:
            self.misses += 1
            return True
        self._top = (self._top - 1) % self._entries
        self._depth -= 1
        if self._stack[self._top] == actual_target:
            self.hits += 1
            return False
        self.misses += 1
        return True

    def flush(self) -> None:
        """Clear the stack (e.g. on context switch into the translator)."""
        self._depth = 0
        self._top = 0
