"""SDT configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.faults.plan import FaultPlan, default_fault_plan, parse_fault_plan
from repro.host.profile import ArchProfile, SIMPLE
from repro.machine.engine import ENGINES, default_engine
from repro.sdt.cache import DEFAULT_CAPACITY
from repro.sdt.translator import DEFAULT_MAX_FRAGMENT_INSTRS
from repro.trace.spec import TraceSpec, default_trace_spec, parse_trace_spec

GENERIC_MECHANISMS = ("reentry", "ibtc", "sieve")
RETURN_SCHEMES = ("same", "fast", "shadow", "retcache")

#: Code-cache coherence policies (see repro.sdt.coherence):
#: ``none``  — no write detection; guest code is assumed immutable
#:             (every pre-coherence workload; zero store-path cost),
#: ``flush`` — any store to a translated page drops the whole cache,
#: ``page``  — invalidate the fragments overlapping the written page,
#: ``targeted`` — invalidate only fragments whose instruction byte
#:             range intersects the written bytes.
COHERENCE_POLICIES = ("none", "flush", "page", "targeted")

#: Fields excluded from :meth:`SDTConfig.fingerprint`.  Only fields that
#: provably cannot change any *architectural* result may appear here:
#: ``engine`` selects *how* the simulation executes (oracle dispatch vs
#: threaded superblocks), never *what* it computes, so a cache entry
#: produced by one engine must be served to the other
#: (tests/test_engine_differential.py proves the byte-identity;
#: tests/test_sdt_config.py pins the exemption).  ``faults`` likewise
#: never changes registers/memory/output — but it *does* change cycle
#: counts, so the evaluation layer refuses to cache faulted measurements
#: at all rather than key them here (see
#: :meth:`repro.eval.cells.Cell.cacheable`).  ``trace`` is pure
#: observation — it changes neither architectural results *nor* cycle
#: counts (tests/test_trace_invariants.py pins the byte-identity), so a
#: traced run may be served from, and stored into, every cache.
FINGERPRINT_EXEMPT = frozenset({"engine", "faults", "trace"})


@dataclass(frozen=True)
class SDTConfig:
    """Everything that defines one SDT configuration in the paper's space.

    Attributes:
        profile: host architecture cost profile.
        ib: generic indirect-branch mechanism for ``jr``/``jalr``
            (``"reentry"``, ``"ibtc"`` or ``"sieve"``).
        ibtc_entries / ibtc_shared: IBTC geometry.
        sieve_buckets / sieve_policy: sieve geometry and stub insertion
            order (``"prepend"`` or ``"append"``).
        returns: return scheme — ``"same"`` routes returns through the
            generic mechanism; ``"fast"``, ``"shadow"``, ``"retcache"``
            select the dedicated schemes.
        shadow_depth: shadow-stack depth limit (0 = unbounded).
        retcache_entries: return-cache geometry.
        linking: patch direct-branch fragment exits (Strata's default);
            disabling it is the E2 ablation where *every* fragment exit
            re-enters the translator.
        static_targets: run the whole-program target-set analysis
            (:mod:`repro.analysis.targets`) at VM construction and use it
            at translation time — singleton-target IB sites are
            devirtualized into guarded direct branches and bounded sites
            preseed IBTC/sieve entries (see
            :mod:`repro.sdt.static_targets`).  Changes cycle counts, so
            it is fingerprint-relevant; architectural results are
            byte-identical either way (tests pin this).
        fragment_cache_bytes: fragment-cache capacity (whole-cache flush
            when exceeded).
        max_fragment_instrs: fragment length limit.
        coherence: code-cache coherence policy for guest writes to
            translated code (:data:`COHERENCE_POLICIES`).  ``none``
            (the default) performs no write detection — correct for
            static code and free on the store path; ``flush``/``page``/
            ``targeted`` install the write watch and invalidate at
            whole-cache / page / byte-range granularity
            (:mod:`repro.sdt.coherence`).  The policy changes which
            fragments survive a write — and under ``none`` potentially
            the architectural results of self-modifying guests — so it
            is fingerprint-relevant and appears in :attr:`label`.
        engine: simulation execution engine — ``"threaded"`` (closure
            superblocks, the default), ``"oracle"`` (per-instruction
            reference dispatch) or ``"tier2"`` (threaded plus
            profile-guided region compilation to generated Python,
            :mod:`repro.machine.tier2`).  Results — output, retired
            count, cycle totals, fault timing — are identical across all
            three; only simulator wall-clock speed differs, so this
            field is exempt from :meth:`fingerprint` and from
            :attr:`label` (tier-2 promotion state is profile data, never
            architecture; see docs/performance.md).  The default can be
            overridden with the ``REPRO_ENGINE`` environment variable.
        faults: optional deterministic fault-injection plan
            (:class:`repro.faults.plan.FaultPlan`, a spec string, or
            ``None``).  Injected faults never change architectural
            results — only cycle counts — so the field is
            fingerprint-exempt like ``engine``; faulted measurements are
            additionally excluded from result caching entirely.  The
            default comes from the ``REPRO_FAULTS`` environment variable.
        trace: optional structured-event tracing spec
            (:class:`repro.trace.spec.TraceSpec`, a spec string, or
            ``None`` = tracing off).  Tracing is pure observation — it
            changes neither results nor cycle counts — so the field is
            fingerprint-exempt like ``engine`` and absent from
            :attr:`label`.  The default comes from the ``REPRO_TRACE``
            environment variable.  See docs/observability.md.
    """

    profile: ArchProfile = field(default_factory=lambda: SIMPLE)
    ib: str = "ibtc"
    ibtc_entries: int = 4096
    ibtc_shared: bool = True
    ibtc_inline: bool = True
    ibtc_hash: str = "fold"
    inline_predict: bool = False
    sieve_buckets: int = 512
    sieve_policy: str = "prepend"
    returns: str = "same"
    shadow_depth: int = 0
    retcache_entries: int = 64
    linking: bool = True
    static_targets: bool = False
    trace_jumps: bool = False
    fragment_cache_bytes: int = DEFAULT_CAPACITY
    max_fragment_instrs: int = DEFAULT_MAX_FRAGMENT_INSTRS
    coherence: str = "none"
    engine: str = field(default_factory=default_engine)
    faults: FaultPlan | None = field(default_factory=default_fault_plan)
    trace: TraceSpec | None = field(default_factory=default_trace_spec)

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {ENGINES}"
            )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", parse_fault_plan(self.faults))
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan, spec string or None, "
                f"got {self.faults!r}"
            )
        if isinstance(self.trace, str):
            object.__setattr__(self, "trace", parse_trace_spec(self.trace))
        if self.trace is not None and not isinstance(self.trace, TraceSpec):
            raise ValueError(
                f"trace must be a TraceSpec, spec string or None, "
                f"got {self.trace!r}"
            )
        if self.fragment_cache_bytes <= 0:
            raise ValueError("fragment_cache_bytes must be positive")
        if self.ib not in GENERIC_MECHANISMS:
            raise ValueError(
                f"unknown ib mechanism {self.ib!r}; "
                f"expected one of {GENERIC_MECHANISMS}"
            )
        if self.returns not in RETURN_SCHEMES:
            raise ValueError(
                f"unknown return scheme {self.returns!r}; "
                f"expected one of {RETURN_SCHEMES}"
            )
        if self.ibtc_hash not in ("fold", "shift"):
            raise ValueError(f"unknown ibtc hash {self.ibtc_hash!r}")
        if self.sieve_policy not in ("prepend", "append"):
            raise ValueError(f"unknown sieve policy {self.sieve_policy!r}")
        if self.coherence not in COHERENCE_POLICIES:
            raise ValueError(
                f"unknown coherence policy {self.coherence!r}; "
                f"expected one of {COHERENCE_POLICIES}"
            )

    @property
    def label(self) -> str:
        """Compact human-readable identifier for reports."""
        if self.ib == "ibtc":
            scope = "shared" if self.ibtc_shared else "persite"
            generic = f"ibtc({scope},{self.ibtc_entries})"
            if not self.ibtc_inline:
                generic += "+outline"
            if self.ibtc_hash != "fold":
                generic += f"+hash={self.ibtc_hash}"
        elif self.ib == "sieve":
            generic = f"sieve({self.sieve_buckets})"
        else:
            generic = "reentry"
        if self.inline_predict:
            generic += "+predict"
        parts = [generic]
        if self.returns != "same":
            parts.append(f"ret={self.returns}")
        if not self.linking:
            parts.append("nolink")
        if self.static_targets:
            parts.append("static")
        if self.trace_jumps:
            parts.append("trace")
        if self.coherence != "none":
            parts.append(f"coh={self.coherence}")
        return "+".join(parts)

    def fingerprint(self) -> tuple:
        """Canonical, hashable identity covering *every* declared field.

        This is the one true cache key for a configuration: it is built by
        introspecting the dataclass fields, so a newly added field can
        never be silently omitted (the failure mode of a hand-enumerated
        key, which aliases configs that differ only in the new field).
        The sole exception is :data:`FINGERPRINT_EXEMPT` — fields that
        cannot change any result, which therefore must *not* split the
        caches (a warm ``oracle`` cache serves ``threaded`` runs).
        """
        items: list[tuple[str, object]] = []
        for spec in fields(self):
            if spec.name in FINGERPRINT_EXEMPT:
                continue
            items.append((spec.name, _canonical(getattr(self, spec.name))))
        return tuple(items)

    def with_profile(self, profile: ArchProfile) -> "SDTConfig":
        """The same configuration under a different host profile."""
        return replace(self, profile=profile)


def _canonical(value: object) -> object:
    """Reduce a config field value to a hashable canonical form."""
    if isinstance(value, ArchProfile):
        return value.fingerprint()
    if isinstance(value, dict):
        return tuple(sorted((key, _canonical(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        canon = [_canonical(item) for item in value]
        if isinstance(value, (set, frozenset)):
            canon = sorted(canon)
        return tuple(canon)
    return value
