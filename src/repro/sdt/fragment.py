"""Fragments: translated basic blocks in the fragment cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass

#: Fragment-cache addresses live in their own region so host predictors key
#: on translated-code addresses, never on guest addresses.
FRAGMENT_CACHE_BASE = 0xF000_0000

#: Return landing pads (fast-return scheme) live above the fragment cache.
RETURN_PAD_BASE = 0xFE00_0000


class ExitKind(enum.Enum):
    """How a fragment transfers control when it falls off the end."""

    COND = "cond"      # conditional branch: taken + fallthrough successors
    JUMP = "jump"      # unconditional direct jump
    CALL = "call"      # direct call (direct successor + return address)
    IJUMP = "ijump"    # indirect jump — dispatch through an IB mechanism
    ICALL = "icall"    # indirect call
    RET = "ret"        # return
    HALT = "halt"      # program end
    FALL = "fall"      # fragment-length limit hit: plain fallthrough


_EXIT_FOR_CLASS = {
    InstrClass.BRANCH: ExitKind.COND,
    InstrClass.JUMP: ExitKind.JUMP,
    InstrClass.CALL: ExitKind.CALL,
    InstrClass.IJUMP: ExitKind.IJUMP,
    InstrClass.ICALL: ExitKind.ICALL,
    InstrClass.RET: ExitKind.RET,
    InstrClass.HALT: ExitKind.HALT,
}


def exit_kind_for(iclass: InstrClass) -> ExitKind:
    """Exit kind implied by a terminating instruction class."""
    return _EXIT_FOR_CLASS[iclass]


@dataclass(slots=True)
class Fragment:
    """One translated basic block.

    Attributes:
        guest_pc: guest address of the first instruction.
        fc_addr: address of the translated copy in the fragment cache.
        instrs: ``(guest_pc, instruction)`` pairs, terminator included
            (except for ``FALL`` fragments, which have no terminator).
        exit_kind: how control leaves the fragment.
        links: direct-exit link slots (``"T"``/``"F"``/``"J"``) patched to
            successor fragments once those are translated.
        valid: cleared when the fragment cache is flushed.
        plan: compiled :class:`repro.machine.engine.Superblock` (closure
            list + block cost vector), built once at translation when the
            threaded engine is active; ``None`` under the oracle engine.
        demoted: permanently pinned to the oracle execution engine after
            a plan-coherence failure (the graceful-degradation path; see
            docs/robustness.md).  Never set without fault injection.
        region: tier-2 promotion state (engine ``tier2`` only): ``None``
            until the fragment is probed for promotion, a compiled
            :class:`repro.machine.tier2.SDTRegion` headed by this
            fragment once promoted, or ``False`` when the fragment is
            permanently region-ineligible.  Profile state, not
            architecture — results are identical with or without it.
    """

    guest_pc: int
    fc_addr: int
    instrs: list[tuple[int, Instruction]]
    exit_kind: ExitKind
    links: dict[str, "Fragment"] = field(default_factory=dict)
    valid: bool = True
    executions: int = 0
    plan: object | None = None
    demoted: bool = False
    region: object | None = None

    @property
    def size_bytes(self) -> int:
        """Estimated fragment-cache footprint (body + exit stubs)."""
        stub = 16 if self.exit_kind is ExitKind.COND else 8
        return 4 * len(self.instrs) + stub

    @property
    def exit_site(self) -> int:
        """Fragment-cache address of the terminating host branch.

        This is the address host predictors see for the fragment's final
        control transfer.
        """
        return self.fc_addr + 4 * max(len(self.instrs) - 1, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Fragment(guest={self.guest_pc:#x}, fc={self.fc_addr:#x}, "
            f"n={len(self.instrs)}, exit={self.exit_kind.value})"
        )
