"""The software dynamic translator.

The SDT executes a guest program from a *fragment cache*: basic blocks are
copied out of the guest text on first execution, direct branches between
fragments are linked in place, and indirect branches are resolved through a
configurable :mod:`repro.sdt.ib` mechanism — the subject of the paper.

Public entry point: :class:`repro.sdt.vm.SDTVM` configured by
:class:`repro.sdt.config.SDTConfig`.
"""

from repro.sdt.cache import FragmentCache
from repro.sdt.config import SDTConfig
from repro.sdt.fragment import ExitKind, Fragment
from repro.sdt.stats import SDTStats
from repro.sdt.translator import Translator
from repro.sdt.vm import SDTRunResult, SDTVM

__all__ = [
    "ExitKind",
    "Fragment",
    "FragmentCache",
    "SDTConfig",
    "SDTRunResult",
    "SDTStats",
    "SDTVM",
    "Translator",
]
