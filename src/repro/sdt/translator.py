"""Fragment builder: discovers and translates guest basic blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.host.costs import Category, HostModel
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.machine.errors import MemoryFault
from repro.machine.memory import PAGE_SHIFT, PAGE_SIZE
from repro.sdt.cache import FragmentCache
from repro.sdt.fragment import ExitKind, Fragment, exit_kind_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.inject import FaultInjector

DEFAULT_MAX_FRAGMENT_INSTRS = 128

#: Compiles a fragment body into an execution plan (threaded engine).
PlanFactory = Callable[[list[tuple[int, Instruction]]], object]


class Translator:
    """Builds fragments from guest text on demand.

    Translation is charged to the host model (``translate_fragment`` fixed
    cost plus ``translate_per_instr`` per guest instruction) so the
    cold-start component of SDT overhead is part of every measurement, as
    in the paper.
    """

    def __init__(
        self,
        program: Program,
        cache: FragmentCache,
        model: HostModel,
        max_fragment_instrs: int = DEFAULT_MAX_FRAGMENT_INSTRS,
        trace_jumps: bool = False,
        plan_factory: PlanFactory | None = None,
        mem=None,
    ):
        if max_fragment_instrs < 1:
            raise ValueError("max_fragment_instrs must be >= 1")
        self.program = program
        self.cache = cache
        self.model = model
        #: When set (threaded engine), every translated fragment gets a
        #: compiled execution plan attached at translation time.  Plan
        #: compilation is the simulator's own speed trick, not modelled
        #: SDT work, so it is *not* charged to the host model.
        self.plan_factory = plan_factory
        self.max_fragment_instrs = max_fragment_instrs
        #: NET-style trace formation: keep translating through
        #: unconditional direct jumps (``j``), building superblocks.
        #: The elided jump still executes (so retired counts match the
        #: interpreter) but its successor is inlined instead of linked.
        self.trace_jumps = trace_jumps
        #: when set, translations consult the injector for mid-fragment
        #: failures and plan perturbations (see repro.faults)
        self.fault_injector: "FaultInjector | None" = None
        #: optional observability sink (repro.trace.session.TraceSession);
        #: the owning VM wires it after construction
        self.trace = None
        #: hooks invoked with each freshly inserted fragment (after the
        #: cache insert and the TRANSLATE charge), in registration order;
        #: the static-targets runtime preseeds IB lookup state here and
        #: the coherence manager registers translated pages.  Hooks must
        #: not translate (they only link already-cached fragments).
        self._post_translate: list[Callable[[Fragment], None]] = []
        self._text = program.text.data
        self._text_base = program.text.base
        #: when set, instruction fetches read live guest memory instead
        #: of the program image's static text bytes, so translation sees
        #: guest writes to code (coherence policies != "none" wire this)
        self._mem = mem
        self._decoded: dict[int, Instruction] = {}

    def add_post_translate(self, hook: Callable[[Fragment], None]) -> None:
        """Register a callback run after each fragment is translated."""
        self._post_translate.append(hook)

    def invalidate_decoded(self, addr: int, length: int) -> None:
        """Drop cached decodes overlapping ``[addr, addr + length)``.

        Called by the coherence manager on every guest write to a
        translated page, so a later (re)translation decodes the new
        bytes rather than serving a stale cached instruction.
        """
        decoded = self._decoded
        if not decoded or length <= 0:
            return
        first = addr & ~3
        last = (addr + length - 1) & ~3
        for pc in range(first, last + 4, 4):
            decoded.pop(pc, None)

    def invalidate_decoded_page(self, page_index: int) -> None:
        """Drop every cached decode on one guest page.

        Called by the coherence manager when it stops *watching* a page
        (whole-cache flush, or a selective invalidation that emptied the
        page): once unwatched, further guest stores to the page are
        invisible, so any decode kept beyond that point could silently
        go stale.  The invariant is that a cached decode only outlives a
        write watch on its page.
        """
        decoded = self._decoded
        if not decoded:
            return
        lo = page_index << PAGE_SHIFT
        hi = lo + PAGE_SIZE
        stale = [pc for pc in decoded if lo <= pc < hi]
        for pc in stale:
            del decoded[pc]

    def _in_text(self, pc: int) -> bool:
        offset = pc - self._text_base
        return pc % 4 == 0 and 0 <= offset < len(self._text)

    def _fetch(self, pc: int) -> Instruction:
        instr = self._decoded.get(pc)
        if instr is None:
            offset = pc - self._text_base
            if pc % 4 or not 0 <= offset < len(self._text):
                raise MemoryFault(pc, "translate-fetch")
            if self._mem is not None:
                word = self._mem.load_word(pc)
            else:
                word = int.from_bytes(
                    self._text[offset : offset + 4], "little"
                )
            instr = decode(word)
            self._decoded[pc] = instr
        return instr

    def get_or_translate(self, guest_pc: int) -> Fragment:
        """Return the fragment for ``guest_pc``, translating on a miss.

        Injected translation failures are retried with bounded attempts
        (each aborted attempt's decode work is still charged); after
        :data:`repro.faults.inject.MAX_TRANSLATE_ATTEMPTS` consecutive
        failures the final attempt runs with injection suppressed, so
        forward progress is guaranteed at any fault rate.
        """
        fragment = self.cache.lookup(guest_pc)
        if fragment is not None:
            return fragment
        if self.fault_injector is None:
            return self.translate(guest_pc)

        from repro.faults.inject import (
            InjectedTranslationFault,
            MAX_TRANSLATE_ATTEMPTS,
        )

        for _attempt in range(MAX_TRANSLATE_ATTEMPTS - 1):
            try:
                return self.translate(guest_pc)
            except InjectedTranslationFault:
                self.cache.stats.faults["translate_retry"] += 1
        return self.translate(guest_pc, inject=False)

    def translate(self, guest_pc: int, inject: bool = True) -> Fragment:
        """Translate one basic block starting at ``guest_pc``."""
        trace = self.trace
        if trace is not None:
            trace.emit("translate.start", pc=guest_pc)
        instrs: list[tuple[int, Instruction]] = []
        pc = guest_pc
        exit_kind = ExitKind.FALL
        visited_jump_targets: set[int] = set()
        for _ in range(self.max_fragment_instrs):
            instr = self._fetch(pc)
            instrs.append((pc, instr))
            if instr.is_control:
                exit_kind = exit_kind_for(instr.iclass)
                if (
                    self.trace_jumps
                    and exit_kind is ExitKind.JUMP
                    and len(instrs) < self.max_fragment_instrs
                ):
                    target = instr.branch_target(pc)
                    fresh = (
                        target not in visited_jump_targets
                        and target != guest_pc
                        and self.cache.lookup(target) is None
                        and self._in_text(target)
                    )
                    if fresh:
                        # inline the jump's successor into this trace
                        visited_jump_targets.add(target)
                        pc = target
                        exit_kind = ExitKind.FALL
                        continue
                break
            pc += 4

        injector = self.fault_injector if inject else None
        profile = self.model.profile
        if injector is not None and injector.should_fail_translation():
            # mid-fragment abort: the decode work above is real and gets
            # charged, but nothing was reserved or inserted, so the
            # retrying caller sees a clean cache
            from repro.faults.inject import InjectedTranslationFault

            self.model.charge(
                Category.TRANSLATE,
                profile.translate_fragment
                + profile.translate_per_instr * len(instrs),
            )
            if trace is not None:
                trace.emit("translate.abort", pc=guest_pc,
                           instrs=len(instrs))
            raise InjectedTranslationFault(
                f"injected translation failure at {guest_pc:#x} "
                f"after {len(instrs)} instrs"
            )

        fragment = Fragment(
            guest_pc=guest_pc,
            fc_addr=0,
            instrs=instrs,
            exit_kind=exit_kind,
        )
        if self.plan_factory is not None:
            fragment.plan = self.plan_factory(instrs)
        if injector is not None:
            # always consumes the same number of draws whether or not a
            # plan exists, keeping fault streams engine-invariant
            kind = injector.plan_perturbation()
            if kind is not None and fragment.plan is not None:
                from repro.faults.inject import apply_plan_perturbation

                apply_plan_perturbation(fragment.plan, kind)
        fragment.fc_addr = self.cache.reserve(fragment.size_bytes)
        self.cache.insert(fragment)

        self.model.charge(
            Category.TRANSLATE,
            profile.translate_fragment
            + profile.translate_per_instr * len(instrs),
        )
        stats = self.cache.stats
        stats.fragments_translated += 1
        stats.instrs_translated += len(instrs)
        if trace is not None:
            trace.emit("translate.end", pc=guest_pc, instrs=len(instrs),
                       fc_addr=fragment.fc_addr,
                       exit=fragment.exit_kind.name.lower())
        for hook in self._post_translate:
            hook(fragment)
        return fragment
