"""The SDT virtual machine: fragment-cache execution main loop.

Execution alternates between *translated code* (fragments, executed here
with real guest semantics via :func:`repro.machine.executor.execute`) and
the *translator* (entered on fragment-cache misses and unhandled indirect
branches).  All cycle costs — application work, dispatch code, context
switches, translation, host branch mispredictions — are charged to the
bound :class:`repro.host.costs.HostModel` as they occur.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.host.costs import Category, HostModel
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass
from repro.isa.program import Program
from repro.isa.registers import REG_RA
from repro.machine.engine import Superblock
from repro.machine.errors import FuelExhausted
from repro.machine.executor import execute
from repro.machine.interpreter import DEFAULT_FUEL
from repro.machine.loader import load_program
from repro.sdt.cache import FragmentCache
from repro.sdt.config import SDTConfig
from repro.sdt.fragment import ExitKind, Fragment
from repro.sdt.ib.factory import build_mechanisms
from repro.sdt.stats import SDTStats
from repro.sdt.translator import Translator

#: Synthetic host address of the translator's jump back into the fragment
#: cache — a single, maximally polymorphic indirect jump site.
TRANSLATOR_DISPATCH_SITE = 0xFFFF_0000


@dataclass(slots=True)
class SDTRunResult:
    """Outcome of one program run under the SDT."""

    output: str
    exit_code: int
    retired: int
    iclass_counts: Counter
    total_cycles: int
    cycles: dict[str, int]
    stats: SDTStats
    config_label: str

    @property
    def app_cycles(self) -> int:
        return self.cycles[Category.APP.value]

    def overhead_vs(self, native_cycles: int) -> float:
        """Slowdown relative to a native run (the paper's metric)."""
        if native_cycles <= 0:
            raise ValueError("native_cycles must be positive")
        return self.total_cycles / native_cycles


class SDTVM:
    """Software dynamic translator for SR32 programs."""

    def __init__(
        self,
        program: Program,
        config: SDTConfig | None = None,
        inputs: list[int] | None = None,
    ):
        self.config = config if config is not None else SDTConfig()
        self.program = program
        self.model = HostModel(self.config.profile)
        self.stats = SDTStats()
        # observability (repro.trace): one session per VM, or None when
        # tracing is off — every emit site guards on that None, so the
        # disabled cost is a single attribute test on already-cold paths.
        self.trace = None
        if self.config.trace is not None:
            from repro.trace.session import TraceSession

            self.trace = TraceSession(self.model, self.config.trace)
        self.cache = FragmentCache(
            capacity=self.config.fragment_cache_bytes, stats=self.stats
        )
        self.cache.trace = self.trace
        self.cpu, self.mem, self.syscalls = load_program(program, inputs)
        # tier2 layers region compilation on top of the threaded tier, so
        # every threaded structure (plans, block accounting) stays active
        self._threaded = self.config.engine in ("threaded", "tier2")
        self._coherent = self.config.coherence != "none"
        self.translator = Translator(
            program,
            self.cache,
            self.model,
            max_fragment_instrs=self.config.max_fragment_instrs,
            trace_jumps=self.config.trace_jumps,
            plan_factory=self._compile_plan if self._threaded else None,
            # under a coherence policy the translator must fetch live
            # guest memory, so retranslation after an invalidation sees
            # the written bytes instead of the static program image
            mem=self.mem if self._coherent else None,
        )
        self.translator.trace = self.trace
        self.generic_ib, self.return_mech = build_mechanisms(self.config)
        self.generic_ib.bind(self)
        self.return_mech.bind(self)
        # static target-set analysis (see repro.sdt.static_targets).
        # Installed after the mechanisms bind (preseeding needs them) and
        # before the invariant checker (whose post-flush walk must see
        # this runtime's cleared devirt pins).
        self.static_rt = None
        if self.config.static_targets:
            from repro.sdt.static_targets import StaticTargetsRuntime

            self.static_rt = StaticTargetsRuntime(self)
            self.static_rt.install()
        # code-cache coherence (see repro.sdt.coherence): installed after
        # the mechanisms and the static runtime (selective invalidations
        # scrub them in that order) and before the invariant checker.
        self.coherence = None
        if self._coherent:
            from repro.sdt.coherence import CoherenceManager

            self.coherence = CoherenceManager(self)
            self.coherence.install()
        # tier-2 region engine (see repro.machine.tier2): installed after
        # the coherence manager (selective invalidations must discard
        # regions before the invariant checker walks tier-2 state) and
        # before the checker (its flush hook must see regions dropped).
        self._tier2 = None
        if self.config.engine == "tier2":
            from repro.machine.tier2 import Tier2Runtime

            self._tier2 = Tier2Runtime(self)
        # fault injection + coherence watchdog (see repro.faults).  The
        # checker's flush hook registers *after* the mechanisms' so it
        # observes their post-invalidation state.
        self.fault_injector = None
        self.invariant_checker = None
        if self.config.faults is not None and self.config.faults.active:
            from repro.faults.inject import FaultInjector
            from repro.faults.invariants import InvariantChecker

            self.fault_injector = FaultInjector(self.config.faults, self.stats)
            self.fault_injector.trace = self.trace
            self.cache.fault_injector = self.fault_injector
            self.translator.fault_injector = self.fault_injector
            self.invariant_checker = InvariantChecker(self)
            self.invariant_checker.install()
        self._chaos = self.fault_injector is not None
        self.retired = 0
        self.iclass_counts: Counter = Counter()
        self._fuel = DEFAULT_FUEL

    def _compile_plan(self, instrs: list[tuple[int, Instruction]]) -> Superblock:
        """Compile a fragment body into a threaded execution plan."""
        return Superblock(
            instrs, self.cpu, self.mem, self.syscalls,
            class_cycles=self.config.profile.class_cycles,
            trace=self.trace,
        )

    # -- translator interactions --------------------------------------------

    def reenter_translator(self, guest_target: int) -> Fragment:
        """Full slow path: context switch, map probe, translate-if-missing.

        Every unoptimised IB dispatch, every cold fragment exit, and every
        mechanism miss funnels through here — this is the cost the paper's
        mechanisms exist to avoid.
        """
        model = self.model
        profile = model.profile
        trace = self.trace
        if trace is not None:
            trace.emit("reentry.enter", target=guest_target)
        self.stats.translator_reentries += 1
        model.charge(Category.CONTEXT_SWITCH, 2 * profile.context_half_switch)
        model.charge(Category.MAP_LOOKUP, profile.map_lookup)
        # the translator's own execution trashes the hardware RAS
        model.ras.flush()
        fragment = self.translator.get_or_translate(guest_target)
        # dispatch back into the fragment cache: one polymorphic host
        # indirect jump shared by every slow path
        model.indirect_jump(
            TRANSLATOR_DISPATCH_SITE,
            fragment.fc_addr,
            category=Category.CONTEXT_SWITCH,
        )
        if trace is not None:
            trace.emit("reentry.exit", target=guest_target,
                       fc_addr=fragment.fc_addr)
        return fragment

    def _direct_successor(
        self, fragment: Fragment, key: str, guest_target: int
    ) -> Fragment:
        """Follow (or establish) a linked direct exit."""
        linked = fragment.links.get(key)
        if linked is not None and linked.valid:
            return linked
        successor = self.reenter_translator(guest_target)
        if self.config.linking and fragment.valid:
            fragment.links[key] = successor
            self.model.charge(Category.LINK, self.model.profile.link_patch)
            self.stats.links_patched += 1
            if self.trace is not None:
                self.trace.emit("fragment.link", from_pc=fragment.guest_pc,
                                key=key, to_pc=guest_target)
        return successor

    # -- execution -----------------------------------------------------------

    def execute_fragment(self, fragment: Fragment) -> Fragment | None:
        """Execute one fragment; returns the successor or ``None`` on exit.

        Fuel semantics match the interpreter instruction-for-instruction:
        when the budget would be exceeded *inside* this fragment,
        :class:`FuelExhausted` is raised after retiring exactly the
        budgeted prefix, so ``self.retired == fuel`` at the raise.
        """
        fragment.executions += 1
        if self._threaded and not fragment.demoted:
            plan = fragment.plan
            if plan is None:
                # fragment built without a plan factory (defensive)
                plan = fragment.plan = self._compile_plan(fragment.instrs)
            elif self._chaos and not plan.coherent_with(
                fragment.guest_pc, fragment.instrs
            ):
                # graceful degradation: a plan that no longer describes
                # its fragment is never executed — the fragment is
                # permanently demoted to the oracle engine instead.
                # Oracle and threaded bodies charge identical cycles, so
                # demotion is invisible to every measurement.
                self._demote(fragment)
                return self._run_oracle(fragment)
            budget = self._fuel - self.retired
            if not plan.has_syscall and plan.n <= budget:
                tier2 = self._tier2
                if tier2 is not None:
                    region = fragment.region
                    if region is None and \
                            fragment.executions >= tier2.threshold:
                        region = tier2.try_promote(fragment)
                    if region:
                        # entry gate: the head block fits the budget and
                        # (under chaos) its plan is coherent — both were
                        # just checked above; every further block is
                        # guarded inside the region.
                        return tier2.execute(fragment, region, budget)
                return self._run_fast(fragment, plan)
            return self._run_slow(fragment, plan, budget)
        return self._run_oracle(fragment)

    def _demote(self, fragment: Fragment) -> None:
        """Pin a fragment to the oracle engine after plan incoherence."""
        fragment.plan = None
        fragment.demoted = True
        self.stats.fragments_demoted += 1
        self.stats.faults["demotion"] += 1
        if self.trace is not None:
            self.trace.emit("plan.demote", pc=fragment.guest_pc)

    def _run_oracle(self, fragment: Fragment) -> Fragment | None:
        """Reference per-instruction fragment body (the semantics oracle)."""
        cpu = self.cpu
        mem = self.mem
        syscalls = self.syscalls
        model = self.model
        counts = self.iclass_counts
        budget = self._fuel - self.retired

        guest_pc = fragment.guest_pc
        next_pc = guest_pc
        instr = None
        executed = 0
        try:
            for guest_pc, instr in fragment.instrs:
                if executed >= budget:
                    raise FuelExhausted(self._fuel)
                cpu.pc = guest_pc
                next_pc = execute(instr, cpu, mem, syscalls)
                executed += 1
                iclass = instr.iclass
                counts[iclass] += 1
                model.charge_instr(iclass)
                if iclass is InstrClass.SYSCALL and syscalls.exited:
                    return None
        finally:
            self.retired += executed
        assert instr is not None
        return self._dispatch_exit(fragment, next_pc, guest_pc, instr.rd)

    def _run_fast(
        self, fragment: Fragment, plan: Superblock
    ) -> Fragment | None:
        """Threaded block body: flat closure list, block-level accounting.

        Only entered for syscall-free plans that fit the remaining fuel,
        so no per-instruction exit or fuel checks are needed.
        """
        k = 0
        next_pc = plan.entry_pc
        try:
            for fn in plan.fns:
                next_pc = fn()
                k += 1
        except BaseException:
            self._flush_partial(plan, k)
            raise
        self.retired += plan.n
        counts = self.iclass_counts
        for iclass, count in plan.class_counts.items():
            counts[iclass] += count
        self.model.charge_block(plan.app_cycles)
        return self._dispatch_exit(
            fragment, next_pc, plan.term_pc, plan.term_rd
        )

    def _run_slow(
        self, fragment: Fragment, plan: Superblock, budget: int
    ) -> Fragment | None:
        """Threaded per-instruction body: syscall exits and fuel strides.

        Used when the plan contains a ``SYSCALL`` (the program may exit
        mid-fragment) or when fuel runs out inside the block.
        """
        syscalls = self.syscalls
        counts = self.iclass_counts
        model = self.model
        iclasses = plan.iclasses
        k = 0
        next_pc = plan.entry_pc
        try:
            for fn in plan.fns:
                if k >= budget:
                    raise FuelExhausted(self._fuel)
                next_pc = fn()
                iclass = iclasses[k]
                k += 1
                counts[iclass] += 1
                model.charge_instr(iclass)
                if iclass is InstrClass.SYSCALL and syscalls.exited:
                    return None
        except FuelExhausted:
            if k:  # cpu.pc parity with the oracle body: last executed pc
                self.cpu.pc = plan.pcs[k - 1]
            raise
        except BaseException:
            self.cpu.pc = plan.pcs[min(k, plan.n - 1)]
            raise
        finally:
            self.retired += k
        return self._dispatch_exit(
            fragment, next_pc, plan.term_pc, plan.term_rd
        )

    def _flush_partial(self, plan: Superblock, k: int) -> None:
        """Account a fast-path block's first ``k`` instructions on a fault."""
        counts = self.iclass_counts
        model = self.model
        for iclass in plan.iclasses[:k]:
            counts[iclass] += 1
            model.charge_instr(iclass)
        self.retired += k
        # leave cpu.pc on the faulting instruction, like the oracle body
        self.cpu.pc = plan.pcs[min(k, plan.n - 1)]

    def _dispatch_exit(
        self, fragment: Fragment, next_pc: int, last_pc: int, term_rd: int
    ) -> Fragment | None:
        """Shared fragment-exit handling: predictor events + successor."""
        exit_kind = fragment.exit_kind
        if exit_kind is ExitKind.HALT:
            return None
        if exit_kind is ExitKind.FALL:
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.COND:
            taken = next_pc != last_pc + 4
            self.model.cond_branch(fragment.exit_site, taken)
            key = "T" if taken else "F"
            return self._direct_successor(fragment, key, next_pc)
        if exit_kind is ExitKind.JUMP:
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.CALL:
            self.return_mech.on_call(self.cpu, REG_RA, last_pc + 4)
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.ICALL:
            self.stats.ib_dispatches["icall"] += 1
            self.return_mech.on_call(self.cpu, term_rd, last_pc + 4)
            return self._dispatch_ib(
                "icall", fragment, last_pc, next_pc,
                self.generic_ib.dispatch,
            )
        if exit_kind is ExitKind.IJUMP:
            self.stats.ib_dispatches["ijump"] += 1
            return self._dispatch_ib(
                "ijump", fragment, last_pc, next_pc,
                self.generic_ib.dispatch,
            )
        if exit_kind is ExitKind.RET:
            self.stats.ib_dispatches["ret"] += 1
            return self._dispatch_ib(
                "ret", fragment, last_pc, next_pc,
                self.return_mech.dispatch_ret,
            )
        raise AssertionError(f"unhandled exit kind {exit_kind}")

    def _dispatch_ib(
        self, ib: str, fragment: Fragment, ib_pc: int, target: int,
        dispatch_fn,
    ) -> Fragment:
        """One dynamic IB dispatch: static fast path, then the mechanism.

        When the static-targets runtime is bound, devirtualized sites may
        resolve here with a guarded direct branch; every other dispatch
        (and every guard mismatch) goes through ``dispatch_fn``
        unchanged.  Trace brackets wrap both paths identically.
        """
        trace = self.trace
        if trace is not None:
            trace.emit("dispatch.start", ib=ib, site=ib_pc, target=target)
        successor = None
        if self.static_rt is not None:
            successor = self.static_rt.dispatch(fragment, ib, ib_pc, target)
        if successor is None:
            successor = dispatch_fn(fragment, ib_pc, target)
        if trace is not None:
            trace.emit("dispatch.end", ib=ib, site=ib_pc)
        return successor

    def run(self, fuel: int = DEFAULT_FUEL) -> SDTRunResult:
        """Run to completion (or until exactly ``fuel`` retired instrs)."""
        self._fuel = fuel
        try:
            fragment: Fragment | None = self.reenter_translator(self.cpu.pc)
            while fragment is not None:
                fragment = self.execute_fragment(fragment)
        finally:
            # close the attribution ledger even on faulted runs so partial
            # traces still sum exactly to the cycles actually spent
            if self.trace is not None:
                self.trace.finish()
        return SDTRunResult(
            output=self.syscalls.output,
            exit_code=self.syscalls.exit_code or 0,
            retired=self.retired,
            iclass_counts=self.iclass_counts,
            total_cycles=self.model.total_cycles,
            cycles=self.model.breakdown(),
            stats=self.stats,
            config_label=self.config.label,
        )


def run_sdt(
    program: Program,
    config: SDTConfig | None = None,
    inputs: list[int] | None = None,
    fuel: int = DEFAULT_FUEL,
) -> SDTRunResult:
    """Convenience wrapper: build an SDT VM and run the program."""
    return SDTVM(program, config=config, inputs=inputs).run(fuel)
