"""The SDT virtual machine: fragment-cache execution main loop.

Execution alternates between *translated code* (fragments, executed here
with real guest semantics via :func:`repro.machine.executor.execute`) and
the *translator* (entered on fragment-cache misses and unhandled indirect
branches).  All cycle costs — application work, dispatch code, context
switches, translation, host branch mispredictions — are charged to the
bound :class:`repro.host.costs.HostModel` as they occur.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.host.costs import Category, HostModel
from repro.isa.opcodes import InstrClass
from repro.isa.program import Program
from repro.isa.registers import REG_RA
from repro.machine.errors import FuelExhausted
from repro.machine.executor import execute
from repro.machine.interpreter import DEFAULT_FUEL
from repro.machine.loader import load_program
from repro.sdt.cache import FragmentCache
from repro.sdt.config import SDTConfig
from repro.sdt.fragment import ExitKind, Fragment
from repro.sdt.ib.factory import build_mechanisms
from repro.sdt.stats import SDTStats
from repro.sdt.translator import Translator

#: Synthetic host address of the translator's jump back into the fragment
#: cache — a single, maximally polymorphic indirect jump site.
TRANSLATOR_DISPATCH_SITE = 0xFFFF_0000


@dataclass(slots=True)
class SDTRunResult:
    """Outcome of one program run under the SDT."""

    output: str
    exit_code: int
    retired: int
    iclass_counts: Counter
    total_cycles: int
    cycles: dict[str, int]
    stats: SDTStats
    config_label: str

    @property
    def app_cycles(self) -> int:
        return self.cycles[Category.APP.value]

    def overhead_vs(self, native_cycles: int) -> float:
        """Slowdown relative to a native run (the paper's metric)."""
        if native_cycles <= 0:
            raise ValueError("native_cycles must be positive")
        return self.total_cycles / native_cycles


class SDTVM:
    """Software dynamic translator for SR32 programs."""

    def __init__(
        self,
        program: Program,
        config: SDTConfig | None = None,
        inputs: list[int] | None = None,
    ):
        self.config = config if config is not None else SDTConfig()
        self.program = program
        self.model = HostModel(self.config.profile)
        self.stats = SDTStats()
        self.cache = FragmentCache(
            capacity=self.config.fragment_cache_bytes, stats=self.stats
        )
        self.cpu, self.mem, self.syscalls = load_program(program, inputs)
        self.translator = Translator(
            program,
            self.cache,
            self.model,
            max_fragment_instrs=self.config.max_fragment_instrs,
            trace_jumps=self.config.trace_jumps,
        )
        self.generic_ib, self.return_mech = build_mechanisms(self.config)
        self.generic_ib.bind(self)
        self.return_mech.bind(self)
        self.retired = 0
        self.iclass_counts: Counter = Counter()

    # -- translator interactions --------------------------------------------

    def reenter_translator(self, guest_target: int) -> Fragment:
        """Full slow path: context switch, map probe, translate-if-missing.

        Every unoptimised IB dispatch, every cold fragment exit, and every
        mechanism miss funnels through here — this is the cost the paper's
        mechanisms exist to avoid.
        """
        model = self.model
        profile = model.profile
        self.stats.translator_reentries += 1
        model.charge(Category.CONTEXT_SWITCH, 2 * profile.context_half_switch)
        model.charge(Category.MAP_LOOKUP, profile.map_lookup)
        # the translator's own execution trashes the hardware RAS
        model.ras.flush()
        fragment = self.translator.get_or_translate(guest_target)
        # dispatch back into the fragment cache: one polymorphic host
        # indirect jump shared by every slow path
        model.indirect_jump(
            TRANSLATOR_DISPATCH_SITE,
            fragment.fc_addr,
            category=Category.CONTEXT_SWITCH,
        )
        return fragment

    def _direct_successor(
        self, fragment: Fragment, key: str, guest_target: int
    ) -> Fragment:
        """Follow (or establish) a linked direct exit."""
        linked = fragment.links.get(key)
        if linked is not None and linked.valid:
            return linked
        successor = self.reenter_translator(guest_target)
        if self.config.linking and fragment.valid:
            fragment.links[key] = successor
            self.model.charge(Category.LINK, self.model.profile.link_patch)
            self.stats.links_patched += 1
        return successor

    # -- execution -----------------------------------------------------------

    def execute_fragment(self, fragment: Fragment) -> Fragment | None:
        """Execute one fragment; returns the successor or ``None`` on exit."""
        cpu = self.cpu
        mem = self.mem
        syscalls = self.syscalls
        model = self.model
        counts = self.iclass_counts
        fragment.executions += 1

        guest_pc = fragment.guest_pc
        next_pc = guest_pc
        instr = None
        executed = 0
        for guest_pc, instr in fragment.instrs:
            cpu.pc = guest_pc
            next_pc = execute(instr, cpu, mem, syscalls)
            executed += 1
            iclass = instr.iclass
            counts[iclass] += 1
            model.charge_instr(iclass)
            if iclass is InstrClass.SYSCALL and syscalls.exited:
                self.retired += executed
                return None
        self.retired += executed

        exit_kind = fragment.exit_kind
        if exit_kind is ExitKind.HALT:
            return None
        if exit_kind is ExitKind.FALL:
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.COND:
            taken = next_pc != guest_pc + 4
            model.cond_branch(fragment.exit_site, taken)
            key = "T" if taken else "F"
            return self._direct_successor(fragment, key, next_pc)
        if exit_kind is ExitKind.JUMP:
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.CALL:
            self.return_mech.on_call(cpu, REG_RA, guest_pc + 4)
            return self._direct_successor(fragment, "J", next_pc)
        if exit_kind is ExitKind.ICALL:
            assert instr is not None
            self.stats.ib_dispatches["icall"] += 1
            self.return_mech.on_call(cpu, instr.rd, guest_pc + 4)
            return self.generic_ib.dispatch(fragment, guest_pc, next_pc)
        if exit_kind is ExitKind.IJUMP:
            self.stats.ib_dispatches["ijump"] += 1
            return self.generic_ib.dispatch(fragment, guest_pc, next_pc)
        if exit_kind is ExitKind.RET:
            self.stats.ib_dispatches["ret"] += 1
            return self.return_mech.dispatch_ret(fragment, guest_pc, next_pc)
        raise AssertionError(f"unhandled exit kind {exit_kind}")

    def run(self, fuel: int = DEFAULT_FUEL) -> SDTRunResult:
        """Run to completion (or until ``fuel`` retired instructions)."""
        fragment: Fragment | None = self.reenter_translator(self.cpu.pc)
        while fragment is not None:
            if self.retired >= fuel:
                raise FuelExhausted(fuel)
            fragment = self.execute_fragment(fragment)
        return SDTRunResult(
            output=self.syscalls.output,
            exit_code=self.syscalls.exit_code or 0,
            retired=self.retired,
            iclass_counts=self.iclass_counts,
            total_cycles=self.model.total_cycles,
            cycles=self.model.breakdown(),
            stats=self.stats,
            config_label=self.config.label,
        )


def run_sdt(
    program: Program,
    config: SDTConfig | None = None,
    inputs: list[int] | None = None,
    fuel: int = DEFAULT_FUEL,
) -> SDTRunResult:
    """Convenience wrapper: build an SDT VM and run the program."""
    return SDTVM(program, config=config, inputs=inputs).run(fuel)
