"""SDT runtime statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(slots=True)
class SDTStats:
    """Counters maintained by the SDT VM and its IB mechanisms."""

    fragments_translated: int = 0
    instrs_translated: int = 0
    cache_flushes: int = 0
    links_patched: int = 0
    translator_reentries: int = 0
    #: fragments permanently demoted to the oracle engine after a plan
    #: coherence failure (graceful degradation; see docs/robustness.md)
    fragments_demoted: int = 0
    #: dynamic indirect dispatches by class name ("ijump"/"icall"/"ret")
    ib_dispatches: Counter = field(default_factory=Counter)
    #: mechanism hit/miss counters, keyed "<mechanism>.<event>"
    mechanism: Counter = field(default_factory=Counter)
    #: injected-fault and invariant-checker events, keyed by site
    #: (empty unless a fault plan is active)
    faults: Counter = field(default_factory=Counter)
    #: static-targets runtime events (empty unless
    #: ``SDTConfig.static_targets``): "devirt_hit"/"devirt_fill"/
    #: "devirt_mismatch", "preseed" per-mechanism insertions, and the
    #: precision tallies "predicted"/"unpredicted"/"escaped"
    static: Counter = field(default_factory=Counter)
    #: code-cache coherence events (empty unless ``SDTConfig.coherence``
    #: != "none"): "code_writes" (stores hitting translated pages),
    #: "flushes" (whole-cache drops under the flush policy),
    #: "fragments_invalidated" (selective page/targeted evictions) and
    #: "noop_writes" (targeted writes intersecting no fragment)
    coherence: Counter = field(default_factory=Counter)
    #: tier-2 region engine events (empty unless ``engine=tier2``):
    #: "promote", "deopt.link"/"deopt.fuel"/"deopt.plan" (guard-failure
    #: exits back to the threaded tier), "discard.invalidate"/
    #: "discard.flush" (regions dropped by coherence events) and
    #: "compile_error" (region codegen failures — always 0 in CI)
    tier2: Counter = field(default_factory=Counter)

    def hit_rate(self, mechanism: str) -> float:
        """Hit rate for a mechanism (0.0 if it never dispatched)."""
        hits = self.mechanism[f"{mechanism}.hit"]
        misses = self.mechanism[f"{mechanism}.miss"]
        total = hits + misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "fragments_translated": self.fragments_translated,
            "instrs_translated": self.instrs_translated,
            "cache_flushes": self.cache_flushes,
            "links_patched": self.links_patched,
            "translator_reentries": self.translator_reentries,
            "fragments_demoted": self.fragments_demoted,
            "ib_dispatches": dict(self.ib_dispatches),
            "mechanism": dict(self.mechanism),
            "faults": dict(self.faults),
            "static": dict(self.static),
            "coherence": dict(self.coherence),
            "tier2": dict(self.tier2),
        }

    def static_precision(self) -> float:
        """Fraction of IB dispatches whose dynamic target the static
        analysis predicted (0.0 when static targets were off or nothing
        dispatched)."""
        predicted = self.static["predicted"]
        total = predicted + self.static["unpredicted"] + self.static["escaped"]
        return predicted / total if total else 0.0
