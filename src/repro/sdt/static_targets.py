"""Translator-time use of the whole-program target-set analysis.

When ``SDTConfig.static_targets`` is on, the VM runs
:func:`repro.analysis.targets.analyze_targets` once at construction and
binds a :class:`StaticTargetsRuntime` that spends the analysis in three
ways:

**Devirtualization.**  A site whose verdict proves a *single* target
(``exact`` or ``bounded`` with ``may_escape=False``) is rewritten into a
guarded direct branch: the dispatch path charges one inlined
compare-immediate (2 cycles, the same literal the inline-prediction guard
charges) plus a conditional direct branch, and on a match transfers
straight to the target fragment — no table probe, no host indirect jump.
The guard makes the rewrite *correct even if the analysis were wrong*:
a mismatching dynamic target falls through to the generic mechanism
unchanged (and is counted under ``stats.static["devirt_mismatch"]``,
which the soundness tests pin to zero).

**Preseeding.**  Bounded sites with at most
:data:`repro.analysis.targets.MAX_PRESEED` statically known targets warm
the IBTC/sieve at translation time: whenever both the site's fragment and
a hinted target's fragment exist in the cache, the pair is inserted via
``IBMechanism.preseed`` — so the site's first dynamic dispatch hits
instead of paying a translator re-entry.  Preseeding never translates
eagerly (a hint whose target is never executed costs nothing but a
pending-map entry); it only links fragments the run has already built.

**Precision metering.**  Every dynamic IB dispatch is scored against the
static verdict — ``predicted`` (target in the static set),
``unpredicted`` (site unknown / metering not applicable), or ``escaped``
(target *outside* a claimed bound: a soundness violation, pinned to zero
by the cross-validator) — making static-vs-dynamic precision an exported
metric on every run.

Flush coherence: a fragment-cache flush invalidates every devirtualized
edge (the fragment pointers are dropped; the next dispatch re-enters the
translator once and re-pins), and the runtime's pointer store is walked
by the PR 4 invariant checker via :meth:`live_fragment_refs`.  All
decisions are emitted as ``static.*`` trace events inside the standard
dispatch/translate brackets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.targets import analyze_targets
from repro.host.costs import Category
from repro.sdt.fragment import Fragment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdt.vm import SDTVM

#: Cycles for the devirt guard's inlined compare-immediate (the same
#: literal the inline-prediction wrapper charges for its guard).
GUARD_COMPARE_CYCLES = 2

#: Cycles to write one preseeded IBTC slot / sieve stub at translation
#: time (hash + one table store, charged per accepted insertion).
PRESEED_INSERT_CYCLES = 4

#: Exit kinds whose dispatches carry real guest addresses and may be
#: devirtualized / preseeded.  ``ret`` joins only when the return scheme
#: routes returns through the generic mechanism (``returns == "same"``);
#: dedicated return schemes may dispatch pad addresses and have their own
#: fast paths.
_GENERIC_KINDS = frozenset({"ijump", "icall"})


class StaticTargetsRuntime:
    """Per-VM driver for devirtualization, preseeding and precision."""

    def __init__(self, vm: "SDTVM"):
        self.vm = vm
        self.report = analyze_targets(vm.program)
        kinds = set(_GENERIC_KINDS)
        if vm.config.returns == "same":
            kinds.add("ret")
        self._kinds = frozenset(kinds)

        #: ib site pc -> proven single target (guarded direct branches)
        self.devirt_targets: dict[int, int] = {
            pc: target
            for pc, target in self.report.devirt_candidates().items()
            if self.report.verdicts[pc].kind in kinds
        }
        #: ib site pc -> static bound (for the precision meter)
        self._bounds: dict[int, frozenset[int]] = {
            pc: v.targets
            for pc, v in self.report.verdicts.items()
            if v.verdict != "unknown" and v.kind in kinds
        }
        #: ib site pc -> preseed hints (bounded sites only)
        self._hints: dict[int, tuple[int, ...]] = {
            pc: hints
            for pc, hints in self.report.preseed_map().items()
            if self.report.verdicts[pc].kind in kinds
        }
        #: hint target pc -> ib sites waiting for its fragment
        self._wanted: dict[int, set[int]] = {}
        #: ib sites whose fragment exists (preseed as targets arrive)
        self._armed: set[int] = set()
        #: devirtualized edges pinned to fragments (flush drops these)
        self._devirt_frags: dict[int, Fragment] = {}

    def install(self) -> None:
        """Hook the translator and the flush path.

        Must run *before* the invariant checker installs, so the
        checker's post-flush walk observes this runtime's cleared state.
        """
        self.vm.translator.add_post_translate(self._on_translate)
        self.vm.cache.on_flush(self._on_flush)

    # -- translation-time preseeding ----------------------------------------

    def _on_translate(self, fragment: Fragment) -> None:
        """Warm IB state as fragments appear (never translates itself)."""
        cache = self.vm.cache
        # 1. IB sites inside the new fragment: arm them, link any hinted
        #    targets that are already translated, queue the rest
        for pc, _instr in fragment.instrs:
            hints = self._hints.get(pc)
            if hints is None or pc in self._armed:
                continue
            self._armed.add(pc)
            for target in hints:
                cached = cache.lookup(target)
                if cached is not None:
                    self._preseed(pc, target, cached)
                else:
                    self._wanted.setdefault(target, set()).add(pc)
        # 2. armed sites waiting for exactly this fragment's entry
        waiting = self._wanted.pop(fragment.guest_pc, None)
        if waiting:
            for ib_pc in sorted(waiting):
                self._preseed(ib_pc, fragment.guest_pc, fragment)

    def _preseed(self, ib_pc: int, target: int, fragment: Fragment) -> None:
        vm = self.vm
        if not fragment.valid:
            return
        if ib_pc in self.devirt_targets:
            # singleton sites take the guarded-direct-branch path; their
            # first dispatch pins the edge, no table entry needed
            return
        if vm.generic_ib.preseed(ib_pc, target, fragment):
            vm.model.charge(Category.STATIC, PRESEED_INSERT_CYCLES)
            vm.stats.static["preseed"] += 1
            if vm.trace is not None:
                vm.trace.emit("static.preseed", site=ib_pc, target=target)

    # -- dispatch-time devirtualization + precision --------------------------

    def dispatch(
        self, fragment: Fragment, ib: str, ib_pc: int, guest_target: int
    ) -> Fragment | None:
        """Static fast path for one IB dispatch.

        Returns the successor fragment when the site is devirtualized and
        the guard matches; ``None`` sends the dispatch down the generic
        mechanism unchanged.  Also scores the dispatch for the precision
        meter.
        """
        vm = self.vm
        stats = vm.stats.static
        if ib in self._kinds:
            bound = self._bounds.get(ib_pc)
            if bound is None:
                stats["unpredicted"] += 1
            elif guest_target in bound:
                stats["predicted"] += 1
            else:
                # dynamic target outside a claimed static bound: a
                # soundness violation (the cross-validator pins this at 0)
                stats["escaped"] += 1
        else:
            stats["unpredicted"] += 1

        target = self.devirt_targets.get(ib_pc)
        if target is None or ib not in self._kinds:
            return None
        model = vm.model
        model.charge(Category.STATIC, GUARD_COMPARE_CYCLES)
        matched = guest_target == target
        model.cond_branch(fragment.exit_site, matched,
                          category=Category.STATIC)
        trace = vm.trace
        if not matched:
            # defense in depth: the guard, not the analysis, is the
            # correctness boundary — fall through to the generic path
            stats["devirt_mismatch"] += 1
            if trace is not None:
                trace.emit("static.devirt_mismatch", site=ib_pc,
                           target=guest_target, expected=target)
            return None
        pinned = self._devirt_frags.get(ib_pc)
        if pinned is not None and pinned.valid:
            # the rewritten site ends in a *direct* branch: no table
            # probe, no host indirect jump, nothing for the BTB to miss
            stats["devirt_hit"] += 1
            if trace is not None:
                trace.emit("static.devirt", site=ib_pc, target=target)
            return pinned
        # cold edge (first dispatch, or a flush dropped the pin): one
        # translator round trip, then patch the direct branch in place
        successor = vm.reenter_translator(target)
        self._devirt_frags[ib_pc] = successor
        model.charge(Category.STATIC, model.profile.link_patch)
        stats["devirt_fill"] += 1
        if trace is not None:
            trace.emit("static.devirt_fill", site=ib_pc, target=target)
        return successor

    # -- flush coherence ------------------------------------------------------

    def _on_flush(self) -> None:
        """A cache flush demotes every devirtualized edge to cold.

        Pending preseed hints (``_wanted``) and armed sites are cleared
        too: a flush can land *inside* ``translate()`` (capacity
        eviction or an injected flush storm) between the reservation and
        the post-translate drain, and any hint surviving that window
        would be drained against freed fragments.
        """
        if self._devirt_frags:
            self.vm.stats.static["devirt_flushed"] += len(self._devirt_frags)
            self._devirt_frags.clear()
        self._armed.clear()
        self._wanted.clear()

    def on_invalidate(self, dead: list[Fragment]) -> None:
        """Selective (page/targeted) invalidation scrub.

        Unlike :meth:`_on_flush` only *some* fragments died, so the
        devirt pins are scrubbed by validity and only the IB sites that
        lived inside dead fragments are disarmed (their retranslation
        re-arms and re-queues them).  Queued wants from disarmed sites
        are dropped so the drain never preseeds on behalf of a site
        whose fragment is gone.
        """
        stale = [
            pc for pc, frag in self._devirt_frags.items() if not frag.valid
        ]
        if stale:
            self.vm.stats.static["devirt_flushed"] += len(stale)
            for pc in stale:
                del self._devirt_frags[pc]
        dead_pcs = {pc for frag in dead for pc, _instr in frag.instrs}
        dead_sites = self._armed & dead_pcs
        if not dead_sites:
            return
        self._armed -= dead_sites
        for target in list(self._wanted):
            waiting = self._wanted[target]
            waiting -= dead_sites
            if not waiting:
                del self._wanted[target]

    def live_fragment_refs(self) -> list[Fragment]:
        """Pinned devirt edges, for the invariant checker's walk."""
        return list(self._devirt_frags.values())


__all__ = [
    "GUARD_COMPARE_CYCLES",
    "PRESEED_INSERT_CYCLES",
    "StaticTargetsRuntime",
]
