"""Fragment-cache introspection.

Downstream users debugging a mechanism want to see what the translator
actually built: fragment boundaries, exit kinds, link state, execution
counts and disassembly.  These helpers render that state; the CLI exposes
them as ``repro-sdt fragments``.
"""

from __future__ import annotations

from repro.isa.disassembler import format_instruction
from repro.sdt.fragment import Fragment
from repro.sdt.vm import SDTVM


def format_fragment(fragment: Fragment, disassemble: bool = True) -> str:
    """Render one fragment as a textual listing."""
    links = ", ".join(
        f"{key}->{linked.guest_pc:#x}"
        for key, linked in sorted(fragment.links.items())
    ) or "unlinked"
    header = (
        f"fragment @ fc {fragment.fc_addr:#010x}  "
        f"guest {fragment.guest_pc:#010x}  "
        f"exit={fragment.exit_kind.value}  "
        f"execs={fragment.executions}  links: {links}"
    )
    if not disassemble:
        return header
    lines = [header]
    for guest_pc, instr in fragment.instrs:
        lines.append(f"    {guest_pc:#010x}:  {format_instruction(instr, guest_pc)}")
    return "\n".join(lines)


def dump_fragment_cache(
    vm: SDTVM,
    disassemble: bool = False,
    min_executions: int = 0,
    limit: int | None = None,
) -> str:
    """Render the VM's fragment cache, hottest fragments first."""
    fragments = sorted(
        vm.cache.fragments(),
        key=lambda fragment: -fragment.executions,
    )
    fragments = [
        fragment
        for fragment in fragments
        if fragment.executions >= min_executions
    ]
    if limit is not None:
        fragments = fragments[:limit]
    total = len(vm.cache.fragments())
    lines = [
        f"fragment cache: {total} fragments, "
        f"{vm.cache.bytes_used} bytes, "
        f"{vm.stats.cache_flushes} flushes"
    ]
    lines.extend(
        format_fragment(fragment, disassemble=disassemble)
        for fragment in fragments
    )
    return "\n".join(lines)


def hottest_fragments(vm: SDTVM, count: int = 10) -> list[Fragment]:
    """The ``count`` most-executed fragments."""
    return sorted(
        vm.cache.fragments(),
        key=lambda fragment: -fragment.executions,
    )[:count]
