"""The fragment cache.

Follows Strata's policy: fragments are bump-allocated; when the cache fills
up, the *entire* cache is flushed (all fragments, all links, all IB-mechanism
state holding fragment pointers).  Whole-cache flush is what makes stale
translated-address transparency violations (fast returns) interesting, and
it is also what the paper's systems actually did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sdt.fragment import FRAGMENT_CACHE_BASE, Fragment
from repro.sdt.stats import SDTStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.inject import FaultInjector

DEFAULT_CAPACITY = 8 * 1024 * 1024  # bytes; effectively unbounded for tests


class FragmentTooLarge(ValueError):
    """A single fragment cannot fit in the cache even when it is empty.

    Raised instead of flushing: flushing cannot help, and retrying the
    reservation after a flush would loop forever.  The fix is a larger
    ``fragment_cache_bytes`` or a smaller ``max_fragment_instrs``
    (:class:`repro.sdt.config.SDTConfig` validates the pair up front).
    """

    def __init__(self, size_bytes: int, capacity: int):
        self.size_bytes = size_bytes
        self.capacity = capacity
        super().__init__(
            f"fragment of {size_bytes} bytes can never fit in a "
            f"{capacity}-byte fragment cache (even empty); raise "
            f"fragment_cache_bytes or lower max_fragment_instrs"
        )


class FlushHookError(RuntimeError):
    """One or more flush hooks raised.

    Every registered hook still runs (a failing IB-mechanism hook must
    not leave *other* mechanisms holding stale fragment pointers); the
    individual exceptions are collected in :attr:`errors`.
    """

    def __init__(self, errors: list[BaseException]):
        self.errors = errors
        summary = "; ".join(f"{type(e).__name__}: {e}" for e in errors)
        super().__init__(
            f"{len(errors)} flush hook(s) raised after running all "
            f"hooks: {summary}"
        )


class FragmentCache:
    """Guest-PC-indexed store of translated fragments."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, stats: SDTStats | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else SDTStats()
        self._fragments: dict[int, Fragment] = {}
        self._alloc = 0
        self._flush_hooks: list[Callable[[], None]] = []
        #: when set, :meth:`reserve` consults the injector for forced
        #: flush storms (see repro.faults)
        self.fault_injector: "FaultInjector | None" = None
        #: optional observability sink (repro.trace.session.TraceSession);
        #: the owning VM wires it after construction
        self.trace = None

    def __len__(self) -> int:
        return len(self._fragments)

    def __contains__(self, guest_pc: int) -> bool:
        return guest_pc in self._fragments

    @property
    def bytes_used(self) -> int:
        return self._alloc

    def on_flush(self, hook: Callable[[], None]) -> None:
        """Register a callback run whenever the cache is flushed.

        IB mechanisms register here because their tables cache fragment
        pointers that a flush invalidates.  Hooks run in registration
        order; the invariant checker (when active) registers last so it
        observes every mechanism's post-flush state.
        """
        self._flush_hooks.append(hook)

    def lookup(self, guest_pc: int) -> Fragment | None:
        return self._fragments.get(guest_pc)

    def fragments(self) -> list[Fragment]:
        """All live fragments (introspection/debugging)."""
        return list(self._fragments.values())

    def reserve(self, size_bytes: int) -> int:
        """Allocate space for a fragment, flushing if necessary.

        Returns the fragment-cache address of the allocation.  Raises
        :class:`FragmentTooLarge` when the fragment could not fit even in
        an empty cache (flushing would loop forever).
        """
        if size_bytes > self.capacity:
            raise FragmentTooLarge(size_bytes, self.capacity)
        injector = self.fault_injector
        if injector is not None and injector.should_force_flush():
            self.flush()
        if self._alloc + size_bytes > self.capacity:
            self.flush()
        addr = FRAGMENT_CACHE_BASE + self._alloc
        self._alloc += size_bytes
        return addr

    def insert(self, fragment: Fragment) -> None:
        self._fragments[fragment.guest_pc] = fragment

    def invalidate(self, fragments: list[Fragment]) -> int:
        """Selectively evict fragments (code-cache coherence).

        Unlike :meth:`flush` this does *not* run the flush hooks — the
        caller (:class:`repro.sdt.coherence.CoherenceManager`) scrubs the
        derived IB state itself, because only it knows which fragments
        died.  Bump allocation means the evicted bytes are not reclaimed;
        the holes persist until the next whole-cache flush, exactly like
        a patched-out fragment in a real bump-allocated code cache.

        Returns the number of fragments actually evicted.
        """
        evicted = 0
        for fragment in fragments:
            if not fragment.valid:
                continue
            fragment.valid = False
            fragment.links.clear()
            fragment.plan = None
            registered = self._fragments.get(fragment.guest_pc)
            if registered is fragment:
                del self._fragments[fragment.guest_pc]
            evicted += 1
        if evicted:
            self.stats.coherence["fragments_invalidated"] += evicted
            if self.trace is not None:
                self.trace.emit("coherence.invalidate", fragments=evicted)
        return evicted

    def flush(self) -> None:
        """Drop every fragment and notify mechanisms.

        All hooks run even if some raise; their exceptions are aggregated
        into one :class:`FlushHookError` raised afterwards, so a broken
        hook can neither mask later hooks nor be silently swallowed.
        """
        if self.trace is not None:
            self.trace.emit("cache.flush", fragments=len(self._fragments),
                            bytes=self._alloc)
        for fragment in self._fragments.values():
            fragment.valid = False
            fragment.links.clear()
        self._fragments.clear()
        self._alloc = 0
        self.stats.cache_flushes += 1
        errors: list[BaseException] = []
        for hook in self._flush_hooks:
            try:
                hook()
            except Exception as exc:  # noqa: BLE001 - aggregated below
                errors.append(exc)
        if errors:
            raise FlushHookError(errors)
