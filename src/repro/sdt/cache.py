"""The fragment cache.

Follows Strata's policy: fragments are bump-allocated; when the cache fills
up, the *entire* cache is flushed (all fragments, all links, all IB-mechanism
state holding fragment pointers).  Whole-cache flush is what makes stale
translated-address transparency violations (fast returns) interesting, and
it is also what the paper's systems actually did.
"""

from __future__ import annotations

from typing import Callable

from repro.sdt.fragment import FRAGMENT_CACHE_BASE, Fragment
from repro.sdt.stats import SDTStats

DEFAULT_CAPACITY = 8 * 1024 * 1024  # bytes; effectively unbounded for tests


class FragmentCache:
    """Guest-PC-indexed store of translated fragments."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, stats: SDTStats | None = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = stats if stats is not None else SDTStats()
        self._fragments: dict[int, Fragment] = {}
        self._alloc = 0
        self._flush_hooks: list[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self._fragments)

    def __contains__(self, guest_pc: int) -> bool:
        return guest_pc in self._fragments

    @property
    def bytes_used(self) -> int:
        return self._alloc

    def on_flush(self, hook: Callable[[], None]) -> None:
        """Register a callback run whenever the cache is flushed.

        IB mechanisms register here because their tables cache fragment
        pointers that a flush invalidates.
        """
        self._flush_hooks.append(hook)

    def lookup(self, guest_pc: int) -> Fragment | None:
        return self._fragments.get(guest_pc)

    def fragments(self) -> list[Fragment]:
        """All live fragments (introspection/debugging)."""
        return list(self._fragments.values())

    def reserve(self, size_bytes: int) -> int:
        """Allocate space for a fragment, flushing if necessary.

        Returns the fragment-cache address of the allocation.
        """
        if size_bytes > self.capacity:
            raise ValueError(
                f"fragment of {size_bytes} bytes exceeds cache capacity "
                f"{self.capacity}"
            )
        if self._alloc + size_bytes > self.capacity:
            self.flush()
        addr = FRAGMENT_CACHE_BASE + self._alloc
        self._alloc += size_bytes
        return addr

    def insert(self, fragment: Fragment) -> None:
        self._fragments[fragment.guest_pc] = fragment

    def flush(self) -> None:
        """Drop every fragment and notify mechanisms."""
        for fragment in self._fragments.values():
            fragment.valid = False
            fragment.links.clear()
        self._fragments.clear()
        self._alloc = 0
        self.stats.cache_flushes += 1
        for hook in self._flush_hooks:
            hook()
