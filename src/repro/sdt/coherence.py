"""Code-cache coherence: guest writes to translated code.

Every pre-coherence workload executes static code, so the fragment cache
and the IB-mechanism tables could safely assume guest text never changes.
Self-modifying code, dynamically loaded/unloaded code and guest-hosted
JITs break that assumption: a store into a translated region leaves the
cached fragments (and every derived structure pointing at them — IBTC
slots, sieve stubs, fast-return pad bindings, devirtualized edges,
superblock plans) describing bytes that no longer exist.

:class:`CoherenceManager` is the SDT-side consumer of the
:class:`repro.machine.memory.Memory` write watch.  Translated guest
pages are tracked at page granularity: each freshly translated fragment
registers the pages its instructions occupy (via the translator's
post-translate hook) and those pages are watched.  A store into a
watched page fires :meth:`_on_write`, which applies the configured
``SDTConfig.coherence`` policy:

``flush``
    drop the whole fragment cache (Strata's only option — every flush
    hook runs, exactly as on a capacity flush),
``page``
    selectively invalidate the fragments overlapping the written page,
``targeted``
    selectively invalidate only the fragments whose instruction byte
    range intersects the written bytes (a store into a translated page
    that hits no fragment costs one registry probe and nothing else).

Selective invalidation bypasses the flush hooks — only this manager
knows *which* fragments died — so it scrubs the derived structures
itself: the generic and return mechanisms (``scrub_invalid``), the
static-targets runtime (``on_invalidate``), surviving fragments' link
stubs, and the translator's decode cache.  When the invariant checker is
active (chaos runs) its coherence site walks the whole VM afterwards, so
a missed scrub is a CI failure, not a silent wrong-code execution.

Visibility rule (shared with the interpreter, see docs/robustness.md):
a store to code becomes architecturally visible at the next control
transfer, never mid-fragment — both engines reach invalidated state only
through a fresh lookup/translation, which sees the new bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.machine.memory import PAGE_SHIFT
from repro.sdt.fragment import Fragment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdt.vm import SDTVM


class CoherenceManager:
    """Write-detection + invalidation driver bound to one VM."""

    def __init__(self, vm: "SDTVM"):
        self.vm = vm
        self.policy = vm.config.coherence
        if self.policy == "none":  # pragma: no cover - VM never wires this
            raise ValueError("CoherenceManager requires coherence != 'none'")
        #: page index -> fragments with instructions on that page, keyed
        #: by id() (Fragment is deliberately unhashable)
        self._page_frags: dict[int, dict[int, Fragment]] = {}

    def install(self) -> None:
        """Hook the memory write watch, the translator and the flush path.

        Must run after the IB mechanisms bind and after the
        static-targets runtime installs (registration order is scrub
        order is checker-visibility order), and before the invariant
        checker installs.
        """
        vm = self.vm
        vm.mem.set_write_watch(self._on_write)
        vm.translator.add_post_translate(self._on_translate)
        vm.cache.on_flush(self._on_flush)

    # -- page tracking -------------------------------------------------------

    def _on_translate(self, fragment: Fragment) -> None:
        """Register (and watch) the pages a new fragment's code occupies."""
        mem = self.vm.mem
        page_frags = self._page_frags
        for pc, _instr in fragment.instrs:
            index = pc >> PAGE_SHIFT
            frags = page_frags.get(index)
            if frags is None:
                frags = page_frags[index] = {}
                mem.watch_page(index)
            frags[id(fragment)] = fragment

    def _on_flush(self) -> None:
        """Whole-cache flush: every registration is dead, stop watching.

        Unwatching makes further stores to these pages invisible, so the
        translator's decodes for them must die with the watch — keeping
        them would serve stale instructions to the next retranslation
        (the remaining stores of a guest copy loop land after the first
        one already triggered the flush).
        """
        mem = self.vm.mem
        translator = self.vm.translator
        for index in self._page_frags:
            mem.unwatch_page(index)
            translator.invalidate_decoded_page(index)
        self._page_frags.clear()

    # -- the write hook ------------------------------------------------------

    def _on_write(self, addr: int, length: int) -> None:
        """A guest store landed in a translated page: apply the policy."""
        vm = self.vm
        stats = vm.stats.coherence
        stats["code_writes"] += 1
        if vm.trace is not None:
            vm.trace.emit("coherence.write", addr=addr, length=length,
                          policy=self.policy)
        # dropped unconditionally: a later (re)translation must decode
        # the new bytes whatever the invalidation granularity
        vm.translator.invalidate_decoded(addr, length)

        if self.policy == "flush":
            stats["flushes"] += 1
            vm.cache.flush()
            return

        first_page = addr >> PAGE_SHIFT
        last_page = (addr + length - 1) >> PAGE_SHIFT
        candidates: dict[int, Fragment] = {}
        for index in range(first_page, last_page + 1):
            frags = self._page_frags.get(index)
            if frags:
                candidates.update(frags)

        if self.policy == "targeted":
            end = addr + length
            dead = [
                frag for frag in candidates.values()
                if any(pc < end and pc + 4 > addr for pc, _i in frag.instrs)
            ]
        else:  # page
            dead = list(candidates.values())

        if not dead:
            stats["noop_writes"] += 1
            return
        self._invalidate(dead)

    # -- selective invalidation ----------------------------------------------

    def _invalidate(self, dead: list[Fragment]) -> None:
        """Evict ``dead`` and scrub every structure that could point at
        them, in the same order flush hooks would have run."""
        vm = self.vm
        vm.cache.invalidate(dead)

        # unregister the dead fragments (a fragment may be registered on
        # pages other than the written one) and stop watching pages left
        # with no translated code
        dead_ids = {id(frag) for frag in dead}
        empty = []
        for index, frags in self._page_frags.items():
            for frag_id in dead_ids & frags.keys():
                del frags[frag_id]
            if not frags:
                empty.append(index)
        for index in empty:
            del self._page_frags[index]
            vm.mem.unwatch_page(index)
            # a decode may only outlive a watch on its page (see
            # Translator.invalidate_decoded_page)
            vm.translator.invalidate_decoded_page(index)

        # derived structures, in flush-hook order: mechanisms, then the
        # static-targets runtime, then surviving links, then tier-2
        # regions, checker last
        vm.generic_ib.scrub_invalid()
        vm.return_mech.scrub_invalid()
        if vm.static_rt is not None:
            vm.static_rt.on_invalidate(dead)
        for fragment in vm.cache.fragments():
            links = fragment.links
            if links:
                stale = [
                    key for key, linked in links.items() if not linked.valid
                ]
                for key in stale:
                    del links[key]
        tier2 = vm._tier2
        if tier2 is not None:
            tier2.on_invalidate(dead)
        checker = vm.invariant_checker
        if checker is not None:
            checker.on_invalidate()
