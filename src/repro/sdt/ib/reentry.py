"""Baseline mechanism: full translator re-entry on every indirect branch.

This is the unoptimised Strata configuration the paper starts from: the
translated indirect branch trampolines into the SDT — saving the entire
application context — the translator probes its translation map, restores
the context, and jumps back into the fragment cache.  Per the paper this
costs hundreds of cycles per dynamic IB and dominates SDT overhead.
"""

from __future__ import annotations

from repro.sdt.fragment import Fragment
from repro.sdt.ib.base import IBMechanism


class TranslatorReentry(IBMechanism):
    """Re-enter the translator for every dispatch (no caching at all)."""

    name = "reentry"

    def dispatch(
        self, fragment: Fragment, ib_pc: int, guest_target: int
    ) -> Fragment:
        assert self.vm is not None
        self._miss()  # by definition every dispatch is a slow path
        return self.vm.reenter_translator(guest_target)
