"""Return-handling mechanisms.

Returns are the most frequent indirect-branch class in the paper's SPEC
measurements, and the only one with exploitable structure (call/return
pairing).  Four schemes:

``ReturnsAsIB``
    no special handling: returns dispatch through the generic IB mechanism
    (IBTC, sieve, or translator re-entry).

``FastReturns``
    the call site writes the address of a *return landing pad* — a
    fragment-cache-resident stub bound to the guest return address —
    instead of the guest return address.  The return then executes as a
    native host ``ret``: zero lookup cost and a usable hardware RAS.  The
    price is address transparency: the application-visible return address
    is not the guest address.

``ShadowReturnStack``
    the SDT keeps its own stack of guest return addresses, pushed at call
    sites.  A return whose dynamic target matches the top of the stack
    jumps (host-indirectly) to the cached fragment; a mismatch falls back
    to the generic mechanism.  Transparent, but the hit path still ends in
    a BTB-predicted indirect jump.

``ReturnCache``
    an *untagged* hash table of fragments indexed by return address.  The
    return jumps through the table unconditionally; the landing fragment's
    prologue verifies it is the right one and escapes to the translator if
    not.  (An extension drawn from the Strata lineage's later work, kept
    here as an ablation point.)
"""

from __future__ import annotations

from repro.host.costs import Category
from repro.machine.cpu import CPUState
from repro.sdt.fragment import RETURN_PAD_BASE, Fragment
from repro.sdt.ib.base import IBMechanism, ReturnMechanism

_PAD_STRIDE = 16


class ReturnsAsIB(ReturnMechanism):
    """Delegate returns to the generic IB mechanism (paper's default)."""

    name = "ret-as-ib"

    def __init__(self, generic: IBMechanism):
        super().__init__()
        self.generic = generic

    def dispatch_ret(
        self, fragment: Fragment, ib_pc: int, target_value: int
    ) -> Fragment:
        return self.generic.dispatch(fragment, ib_pc, target_value)


class FastReturns(ReturnMechanism):
    """Translate return addresses at the call site (transparency trade)."""

    name = "fast-return"

    def __init__(self, fallback: IBMechanism):
        super().__init__()
        self.fallback = fallback
        self._pad_for_guest: dict[int, int] = {}
        self._guest_for_pad: dict[int, int] = {}
        self._pad_fragment: dict[int, Fragment] = {}

    def _pad(self, guest_ret_pc: int) -> int:
        pad = self._pad_for_guest.get(guest_ret_pc)
        if pad is None:
            pad = RETURN_PAD_BASE + len(self._pad_for_guest) * _PAD_STRIDE
            self._pad_for_guest[guest_ret_pc] = pad
            self._guest_for_pad[pad] = guest_ret_pc
        return pad

    def on_call(
        self, cpu: CPUState, ret_reg: int, guest_ret_pc: int
    ) -> None:
        assert self.vm is not None
        vm = self.vm
        pad = self._pad(guest_ret_pc)
        cpu.write(ret_reg, pad)
        vm.model.charge(
            Category.FAST_RETURN, vm.model.profile.fast_return_fixup
        )
        # the translated call is a real host call: the RAS learns the pad
        vm.model.host_call(pad)

    def dispatch_ret(
        self, fragment: Fragment, ib_pc: int, target_value: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        trace = vm.trace
        guest_pc = self._guest_for_pad.get(target_value)
        if guest_pc is None:
            # the return register held a raw guest address (no paired call
            # was translated, e.g. a hand-rolled tail trampoline): fall
            # back to the generic mechanism, fully transparently.
            self._miss()
            if trace is not None:
                trace.emit("fastret.fallback", site=ib_pc,
                           target=target_value)
            return self.fallback.dispatch(fragment, ib_pc, target_value)

        # a genuine fast return: host `ret`, predicted by the hardware RAS
        vm.model.host_return(target_value)
        target_fragment = self._pad_fragment.get(target_value)
        if target_fragment is not None and target_fragment.valid:
            self._hit()
            if trace is not None:
                trace.emit("fastret.hit", site=ib_pc, target=guest_pc)
            return target_fragment
        # cold pad: first return through it patches the pad to jump
        # straight to the translated continuation
        self._miss()
        if trace is not None:
            trace.emit("fastret.cold", site=ib_pc, target=guest_pc)
        target_fragment = vm.reenter_translator(guest_pc)
        self._pad_fragment[target_value] = target_fragment
        vm.model.charge(Category.LINK, vm.model.profile.link_patch)
        return target_fragment

    def on_flush(self) -> None:
        # pads survive a flush (they are stable addresses); their patched
        # fragment bindings do not
        self._pad_fragment.clear()

    def scrub_invalid(self) -> None:
        # pads and their guest bindings survive (stable addresses); only
        # bindings to dead fragments are dropped
        stale = [
            pad for pad, frag in self._pad_fragment.items()
            if not frag.valid
        ]
        for pad in stale:
            del self._pad_fragment[pad]

    def live_fragment_refs(self):
        return list(self._pad_fragment.values())


class ShadowReturnStack(ReturnMechanism):
    """SDT-maintained return-address stack with generic fallback."""

    name = "shadow-stack"

    def __init__(self, fallback: IBMechanism, depth: int = 0):
        super().__init__()
        if depth < 0:
            raise ValueError("depth must be >= 0 (0 = unbounded)")
        self.fallback = fallback
        self.depth = depth
        self._stack: list[int] = []

    def on_call(
        self, cpu: CPUState, ret_reg: int, guest_ret_pc: int
    ) -> None:
        assert self.vm is not None
        vm = self.vm
        vm.model.charge(Category.SHADOW_STACK, vm.model.profile.shadow_push)
        self._stack.append(guest_ret_pc)
        if self.depth and len(self._stack) > self.depth:
            del self._stack[0]

    def dispatch_ret(
        self, fragment: Fragment, ib_pc: int, target_value: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        vm.model.charge(Category.SHADOW_STACK, vm.model.profile.shadow_pop)
        trace = vm.trace
        if self._stack and self._stack[-1] == target_value:
            self._stack.pop()
            target_fragment = vm.cache.lookup(target_value)
            if target_fragment is not None:
                self._hit()
                if trace is not None:
                    trace.emit("shadow.hit", site=ib_pc,
                               target=target_value,
                               depth=len(self._stack) + 1)
                # hit path ends in an indirect jump through the stored
                # fragment address — BTB-predicted, unlike a host ret
                vm.model.indirect_jump(
                    fragment.exit_site, target_fragment.fc_addr
                )
                return target_fragment
            # matched, but the continuation was never translated (or was
            # flushed): translator fills it in
            vm.stats.mechanism[f"{self.name}.cold"] += 1
            if trace is not None:
                trace.emit("shadow.cold", site=ib_pc, target=target_value)
            return vm.reenter_translator(target_value)
        # mismatch (longjmp-style or stack overflow trim): generic path
        if self._stack:
            self._stack.pop()
        self._miss()
        if trace is not None:
            trace.emit("shadow.miss", site=ib_pc, target=target_value)
        return self.fallback.dispatch(fragment, ib_pc, target_value)


class ReturnCache(ReturnMechanism):
    """Untagged hash of fragments, verified by the landing fragment."""

    name = "return-cache"

    def __init__(self, entries: int = 64):
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.name = f"return-cache-{entries}"
        self._mask = entries - 1
        self._table: list[Fragment | None] = [None] * entries

    def dispatch_ret(
        self, fragment: Fragment, ib_pc: int, target_value: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        profile = vm.model.profile
        index = (target_value >> 2) & self._mask
        cached = self._table[index]
        vm.model.charge(Category.RETCACHE, profile.retcache_probe)
        landing = cached.fc_addr if cached is not None else 0
        vm.model.indirect_jump(fragment.exit_site, landing)
        vm.model.charge(Category.RETCACHE, profile.retcache_check)
        trace = vm.trace
        if (
            cached is not None
            and cached.valid
            and cached.guest_pc == target_value
        ):
            self._hit()
            if trace is not None:
                trace.emit("retcache.hit", site=ib_pc, target=target_value,
                           index=index)
            return cached
        self._miss()
        if trace is not None:
            trace.emit("retcache.miss", site=ib_pc, target=target_value,
                       index=index)
        target_fragment = vm.reenter_translator(target_value)
        self._table[index] = target_fragment
        return target_fragment

    def on_flush(self) -> None:
        for index in range(len(self._table)):
            self._table[index] = None

    def scrub_invalid(self) -> None:
        table = self._table
        for index, frag in enumerate(table):
            if frag is not None and not frag.valid:
                table[index] = None

    def live_fragment_refs(self):
        return list(self._table)
