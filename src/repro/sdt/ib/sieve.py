"""The sieve dispatch mechanism.

The translated indirect branch hashes its dynamic target and jumps into a
*bucket* of code stubs.  Each stub compares the target against one known
application address; on a match it branches directly to the corresponding
fragment (a conditional direct branch the bimodal predictor handles well),
otherwise it falls through to the next stub.  Running off the end of the
chain re-enters the translator, which links a new stub into the bucket.

Host-level cost structure (the paper's reason the sieve can win on
machines with expensive indirect-branch mispredictions):

- one computed jump into the bucket (BTB-predicted, keyed by the IB site),
- ``k`` compare-and-branch stages to reach the matching stub,
- a *direct* branch to the fragment — no BTB involvement at all.

The stub-insertion policy is configurable: ``prepend`` puts the newest
target first (MRU-ish, Strata's choice); ``append`` preserves insertion
order.  E-series ablations sweep both.
"""

from __future__ import annotations

from repro.host.costs import Category
from repro.sdt.fragment import Fragment
from repro.sdt.ib.base import IBMechanism

#: Synthetic host address of the sieve's bucket array (predictor keying).
SIEVE_BASE = 0xFD00_0000
_BUCKET_STRIDE = 256  # synthetic bytes per bucket (stub chain region)
_STUB_STRIDE = 16     # synthetic bytes per stub


def sieve_index(target: int, mask: int) -> int:
    """Hash a guest target into a bucket index (same folding as the IBTC)."""
    word = target >> 2
    return (word ^ (word >> 10)) & mask


class Sieve(IBMechanism):
    """Hash-bucketed compare-and-branch dispatch."""

    def __init__(self, buckets: int = 512, policy: str = "prepend"):
        super().__init__()
        if buckets <= 0 or buckets & (buckets - 1):
            raise ValueError("buckets must be a positive power of two")
        if policy not in ("prepend", "append"):
            raise ValueError(f"unknown insertion policy {policy!r}")
        self.buckets = buckets
        self.policy = policy
        self.name = f"sieve-{buckets}"
        self._mask = buckets - 1
        self._chains: list[list[tuple[int, Fragment]]] = [
            [] for _ in range(buckets)
        ]
        #: dynamic stage executions, for mean-chain-length reporting
        self.stage_executions = 0

    def dispatch(
        self, fragment: Fragment, ib_pc: int, guest_target: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        profile = vm.model.profile
        index = sieve_index(guest_target, self._mask)
        bucket_addr = SIEVE_BASE + index * _BUCKET_STRIDE

        # computed jump into the bucket
        vm.model.charge(Category.SIEVE, profile.sieve_dispatch)
        vm.model.indirect_jump(
            fragment.exit_site, bucket_addr, category=Category.SIEVE
        )

        # walk the stub chain
        chain = self._chains[index]
        injector = getattr(vm, "fault_injector", None)
        if injector is not None and chain:
            event = injector.table_event("sieve")
            if event == "drop":
                del chain[0]
            elif event == "corrupt":
                from repro.faults.inject import tombstone

                known, frag = chain[0]
                chain[0] = (known, tombstone(frag))
        trace = vm.trace
        for position, (known_target, target_fragment) in enumerate(chain):
            vm.model.charge(Category.SIEVE, profile.sieve_stage)
            self.stage_executions += 1
            stub_addr = bucket_addr + position * _STUB_STRIDE
            matched = known_target == guest_target
            vm.model.cond_branch(stub_addr, matched, category=Category.SIEVE)
            if matched:
                if target_fragment.valid:
                    self._hit()
                    if trace is not None:
                        trace.emit("sieve.walk", site=ib_pc,
                                   target=guest_target, depth=position + 1,
                                   hit=True)
                    return target_fragment
                # stale stub (missed invalidation / injected corruption):
                # unlink it and fall back to the translator, which links
                # a fresh stub below
                del chain[position]
                break

        # chain exhausted: translator builds a new stub
        self._miss()
        if trace is not None:
            trace.emit("sieve.walk", site=ib_pc, target=guest_target,
                       depth=len(chain), hit=False)
        target_fragment = vm.reenter_translator(guest_target)
        # re-fetch: the reentry may have flushed (and so emptied) the chain
        chain = self._chains[index]
        entry = (guest_target, target_fragment)
        if self.policy == "prepend":
            chain.insert(0, entry)
        else:
            chain.append(entry)
        if trace is not None:
            trace.emit("sieve.insert", bucket=index, target=guest_target,
                       depth=len(chain))
        return target_fragment

    def preseed(
        self, ib_pc: int, guest_target: int, fragment: Fragment
    ) -> bool:
        """Link a stub for the target at translation time.

        The stub enters its bucket under the configured insertion policy,
        exactly as a dispatch-miss stub would, so preseeded and
        dynamically linked chains are structurally identical.
        """
        index = sieve_index(guest_target, self._mask)
        chain = self._chains[index]
        if any(known == guest_target for known, _ in chain):
            return False
        entry = (guest_target, fragment)
        if self.policy == "prepend":
            chain.insert(0, entry)
        else:
            chain.append(entry)
        return True

    def on_flush(self) -> None:
        for chain in self._chains:
            chain.clear()

    def scrub_invalid(self) -> None:
        # in-place: dispatch holds direct references to chain lists
        for chain in self._chains:
            if any(not frag.valid for _target, frag in chain):
                chain[:] = [entry for entry in chain if entry[1].valid]

    def live_fragment_refs(self):
        return [
            fragment
            for chain in self._chains
            for _target, fragment in chain
        ]

    @property
    def mean_chain_length(self) -> float:
        """Mean occupied-chain length (sieve pressure diagnostic)."""
        lengths = [len(chain) for chain in self._chains if chain]
        return sum(lengths) / len(lengths) if lengths else 0.0
