"""Mechanism interfaces.

A mechanism is bound to an :class:`repro.sdt.vm.SDTVM` and asked to resolve
dynamic indirect-branch targets.  It charges every cycle of its dispatch
code to the VM's host model and keeps hit/miss statistics under its
``name`` in :class:`repro.sdt.stats.SDTStats`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.sdt.fragment import Fragment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.cpu import CPUState
    from repro.sdt.vm import SDTVM


class IBMechanism(ABC):
    """Resolves indirect jump / indirect call targets."""

    #: stable identifier used in statistics and reports
    name: str = "base"

    def __init__(self) -> None:
        self.vm: "SDTVM | None" = None

    def bind(self, vm: "SDTVM") -> None:
        """Attach to a VM; registers the flush hook."""
        self.vm = vm
        vm.cache.on_flush(self.on_flush)

    @abstractmethod
    def dispatch(
        self, fragment: Fragment, ib_pc: int, guest_target: int
    ) -> Fragment:
        """Resolve ``guest_target``, charging all dispatch costs.

        Args:
            fragment: the fragment whose terminator is the indirect branch
                (its ``exit_site`` is the host-level branch address).
            ib_pc: guest address of the indirect branch (stable site key).
            guest_target: dynamic guest target address.

        Returns:
            The fragment to execute next.
        """

    def preseed(
        self, ib_pc: int, guest_target: int, fragment: Fragment
    ) -> bool:
        """Warm this mechanism's lookup state at translation time.

        Called by the static-targets runtime
        (:mod:`repro.sdt.static_targets`) with a statically proven
        ``(site, target)`` pair and the target's already-translated
        ``fragment``, *before* the site ever dispatches dynamically.  A
        preseeded entry is always safe: dispatch still compares the
        dynamic target against the entry, so a wrong hint degrades to a
        miss, never to a wrong transfer.

        Returns ``True`` if an entry was inserted (the caller charges
        the insertion cost), ``False`` otherwise.  Mechanisms with no
        warmable state (translator re-entry) inherit this no-op.
        """
        return False

    def on_flush(self) -> None:
        """Drop any cached fragment pointers (cache was flushed)."""

    def scrub_invalid(self) -> None:
        """Drop entries pointing at invalidated fragments.

        Called by the coherence manager after a *selective* invalidation
        (:meth:`repro.sdt.cache.FragmentCache.invalidate`), which —
        unlike a whole-cache flush — kills only some fragments and runs
        no flush hooks.  Mechanisms holding no fragment pointers inherit
        this no-op.  Scrubbing must be by validity predicate, never by
        identity list, so it also clears fault-injected tombstones.
        """

    def live_fragment_refs(self) -> list[Fragment]:
        """Every fragment reference this mechanism currently holds.

        The coherence checker (:mod:`repro.faults.invariants`) walks
        these after each flush: none may point at an invalidated
        fragment.  Mechanisms that cache no fragment pointers inherit
        this empty default.
        """
        return []

    # -- shared helpers ----------------------------------------------------

    def _hit(self) -> None:
        assert self.vm is not None
        self.vm.stats.mechanism[f"{self.name}.hit"] += 1

    def _miss(self) -> None:
        assert self.vm is not None
        self.vm.stats.mechanism[f"{self.name}.miss"] += 1


class ReturnMechanism(ABC):
    """Resolves return targets; may also hook call sites."""

    name: str = "ret-base"

    def __init__(self) -> None:
        self.vm: "SDTVM | None" = None

    def bind(self, vm: "SDTVM") -> None:
        self.vm = vm
        vm.cache.on_flush(self.on_flush)

    def on_call(
        self,
        cpu: "CPUState",
        ret_reg: int,
        guest_ret_pc: int,
    ) -> None:
        """Hook run after a call wrote its return address.

        ``ret_reg`` holds ``guest_ret_pc``; schemes that sacrifice address
        transparency (fast returns) may overwrite it here.
        """

    @abstractmethod
    def dispatch_ret(
        self, fragment: Fragment, ib_pc: int, target_value: int
    ) -> Fragment:
        """Resolve a return whose dynamic target register held
        ``target_value`` (a guest address, or a landing-pad address under
        fast returns)."""

    def on_flush(self) -> None:
        """Drop any cached fragment pointers."""

    def scrub_invalid(self) -> None:
        """Drop entries pointing at invalidated fragments (selective
        invalidation; see :meth:`IBMechanism.scrub_invalid`).  Schemes
        that share their fallback with the generic mechanism scrub only
        their *own* state — the coherence manager scrubs the generic
        mechanism separately."""

    def live_fragment_refs(self) -> list[Fragment]:
        """Fragment references held by this scheme (coherence checking)."""
        return []

    def _hit(self) -> None:
        assert self.vm is not None
        self.vm.stats.mechanism[f"{self.name}.hit"] += 1

    def _miss(self) -> None:
        assert self.vm is not None
        self.vm.stats.mechanism[f"{self.name}.miss"] += 1
