"""Builds mechanism objects from an :class:`repro.sdt.config.SDTConfig`."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sdt.ib.base import IBMechanism, ReturnMechanism
from repro.sdt.ib.ibtc import IBTC
from repro.sdt.ib.predict import InlinePrediction
from repro.sdt.ib.reentry import TranslatorReentry
from repro.sdt.ib.returns import (
    FastReturns,
    ReturnCache,
    ReturnsAsIB,
    ShadowReturnStack,
)
from repro.sdt.ib.sieve import Sieve

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdt.config import SDTConfig


def build_generic(config: "SDTConfig") -> IBMechanism:
    """Instantiate the generic (jr/jalr) mechanism."""
    if config.ib == "reentry":
        return TranslatorReentry()
    if config.ib == "ibtc":
        return IBTC(
            entries=config.ibtc_entries,
            shared=config.ibtc_shared,
            inline=config.ibtc_inline,
            hash_kind=config.ibtc_hash,
        )
    if config.ib == "sieve":
        return Sieve(buckets=config.sieve_buckets, policy=config.sieve_policy)
    raise ValueError(f"unknown ib mechanism {config.ib!r}")


def build_mechanisms(
    config: "SDTConfig",
) -> tuple[IBMechanism, ReturnMechanism]:
    """Instantiate (generic mechanism, return mechanism) for a config.

    The return scheme uses the generic mechanism as its fallback path, as
    in Strata (a shadow-stack mismatch, for instance, drops into the IBTC).
    """
    generic = build_generic(config)
    if config.inline_predict:
        generic = InlinePrediction(generic)
    if config.returns == "same":
        returns: ReturnMechanism = ReturnsAsIB(generic)
    elif config.returns == "fast":
        returns = FastReturns(fallback=generic)
    elif config.returns == "shadow":
        returns = ShadowReturnStack(
            fallback=generic, depth=config.shadow_depth
        )
    elif config.returns == "retcache":
        returns = ReturnCache(entries=config.retcache_entries)
    else:
        raise ValueError(f"unknown return scheme {config.returns!r}")
    return generic, returns
