"""Indirect-branch handling mechanisms.

Each mechanism maps a dynamic guest target address to the fragment-cache
address of the translated target, charging its dispatch-code cost and the
host-level branch behaviour it induces:

- :class:`repro.sdt.ib.reentry.TranslatorReentry` — the unoptimised
  baseline: full context switch into the translator for every IB.
- :class:`repro.sdt.ib.ibtc.IBTC` — inlined probe of a direct-mapped
  software translation cache (shared or per-site).
- :class:`repro.sdt.ib.sieve.Sieve` — dispatch into hash buckets of
  compare-and-branch stubs.
- :mod:`repro.sdt.ib.returns` — return-specific schemes: returns-as-IB,
  fast returns, shadow return stack, return cache.
"""

from repro.sdt.ib.base import IBMechanism, ReturnMechanism
from repro.sdt.ib.factory import build_mechanisms
from repro.sdt.ib.ibtc import IBTC
from repro.sdt.ib.predict import InlinePrediction
from repro.sdt.ib.reentry import TranslatorReentry
from repro.sdt.ib.returns import (
    FastReturns,
    ReturnCache,
    ReturnsAsIB,
    ShadowReturnStack,
)
from repro.sdt.ib.sieve import Sieve

__all__ = [
    "FastReturns",
    "IBMechanism",
    "InlinePrediction",
    "IBTC",
    "ReturnCache",
    "ReturnMechanism",
    "ReturnsAsIB",
    "ShadowReturnStack",
    "Sieve",
    "TranslatorReentry",
    "build_mechanisms",
]
