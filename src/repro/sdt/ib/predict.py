"""Inline target prediction: a one-entry inline cache in front of any
generic mechanism.

The translated IB site first compares the dynamic target against the
*last-seen* target (an immediate patched into the fragment).  On a match
control transfers with a well-predicted conditional direct branch — no
table probe, no host indirect jump at all.  On a mismatch the site falls
through to the wrapped mechanism (IBTC, sieve, or translator re-entry)
and the inline prediction is re-patched.

This is the "inlined single-target guard" of the Strata/DynamoRIO
lineage: unbeatable on monomorphic sites (E11 shows most sites are),
pure overhead on sites that alternate targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.costs import Category
from repro.sdt.fragment import Fragment
from repro.sdt.ib.base import IBMechanism


@dataclass(slots=True)
class _Prediction:
    target: int
    fragment: Fragment


class InlinePrediction(IBMechanism):
    """Per-site last-target inline cache wrapping a generic mechanism."""

    def __init__(self, inner: IBMechanism, repatch: bool = True):
        super().__init__()
        self.inner = inner
        #: re-patch the inline guard on every miss (last-target policy);
        #: ``False`` freezes the first observed target (first-target)
        self.repatch = repatch
        self.name = f"predict+{inner.name}"
        self._predictions: dict[int, _Prediction] = {}

    def bind(self, vm) -> None:
        super().bind(vm)
        self.inner.bind(vm)

    def dispatch(
        self, fragment: Fragment, ib_pc: int, guest_target: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        profile = vm.model.profile
        # the inlined compare-immediate + branch
        vm.model.charge(Category.IBTC, 2)
        prediction = self._predictions.get(ib_pc)
        hit = (
            prediction is not None
            and prediction.target == guest_target
            and prediction.fragment.valid
        )
        vm.model.cond_branch(fragment.exit_site, hit, category=Category.IBTC)
        trace = vm.trace
        if hit:
            self._hit()
            if trace is not None:
                trace.emit("predict.hit", site=ib_pc, target=guest_target)
            return prediction.fragment

        self._miss()
        if trace is not None:
            trace.emit("predict.miss", site=ib_pc, target=guest_target)
        target_fragment = self.inner.dispatch(fragment, ib_pc, guest_target)
        if self.repatch or prediction is None:
            # patching translated code costs a (small) fragment write
            vm.model.charge(Category.IBTC, profile.fast_return_fixup)
            self._predictions[ib_pc] = _Prediction(
                target=guest_target, fragment=target_fragment
            )
        return target_fragment

    def preseed(
        self, ib_pc: int, guest_target: int, fragment: Fragment
    ) -> bool:
        # the one-entry inline guard is left to dynamic warm-up (its
        # payoff is last-target locality, which statics cannot know);
        # hints warm the wrapped mechanism instead
        return self.inner.preseed(ib_pc, guest_target, fragment)

    def on_flush(self) -> None:
        self._predictions.clear()
        # inner is registered with the cache separately via bind()

    def scrub_invalid(self) -> None:
        stale = [
            pc for pc, p in self._predictions.items()
            if not p.fragment.valid
        ]
        for pc in stale:
            del self._predictions[pc]
        self.inner.scrub_invalid()

    def live_fragment_refs(self):
        refs = [p.fragment for p in self._predictions.values()]
        refs.extend(self.inner.live_fragment_refs())
        return refs
