"""Indirect Branch Translation Cache (IBTC).

A direct-mapped software cache mapping application target addresses to
fragment-cache addresses, probed by a short code sequence at each
translated IB site:

1. hash/mask the dynamic target (``ibtc_probe`` cycles, including the tag
   load and compare; ``ibtc_spill`` models scratch-register save/restore),
2. on a tag match, jump indirectly through the cached fragment address —
   a *host* indirect jump the BTB must predict,
3. on a miss, fall back to full translator re-entry and fill the entry.

Axes evaluated by the paper, all configurable here:

- **scope** — one **shared** table for every IB site, or **per-site**
  tables (conflict isolation vs. capacity fragmentation),
- **size** — table entries, swept in experiment E3,
- **inlining** — the probe sequence either sits *inline* at the
  translated IB site, or in one shared *out-of-line* stub every site jumps
  to.  Out-of-line saves fragment-cache space but adds the stub jump and,
  critically, funnels every IB through a single host indirect-jump site,
  which destroys BTB locality (ablation A-series),
- **hash** — ``fold`` (word index xor-folded with higher bits) or
  ``shift`` (plain word index masking); jump-table targets are contiguous
  so ``shift`` looks fine until two tables alias, which the fold absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.costs import Category
from repro.sdt.fragment import Fragment
from repro.sdt.ib.base import IBMechanism

#: Synthetic host address of the shared out-of-line lookup stub's final
#: indirect jump (every IB site shares this predictor entry when the
#: probe is not inlined).
OUTLINE_STUB_SITE = 0xFC00_0000

HASH_KINDS = ("fold", "shift")


def ibtc_index(target: int, mask: int, hash_kind: str = "fold") -> int:
    """Hash a guest target address into a table index.

    Word-aligned addresses make the low two bits useless, so both hashes
    discard them; ``fold`` additionally xors in higher bits to spread
    targets that share a 2^n-aligned base.
    """
    word = target >> 2
    if hash_kind == "shift":
        return word & mask
    return (word ^ (word >> 10)) & mask


@dataclass(slots=True)
class _Table:
    """One direct-mapped tag/value array."""

    mask: int
    tags: list[int]
    frags: list[Fragment | None]

    @classmethod
    def sized(cls, entries: int) -> "_Table":
        return cls(
            mask=entries - 1,
            tags=[-1] * entries,
            frags=[None] * entries,
        )

    def clear(self) -> None:
        for index in range(len(self.tags)):
            self.tags[index] = -1
            self.frags[index] = None


class IBTC(IBMechanism):
    """Shared or per-site indirect branch translation cache."""

    def __init__(
        self,
        entries: int = 4096,
        shared: bool = True,
        inline: bool = True,
        hash_kind: str = "fold",
    ):
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if hash_kind not in HASH_KINDS:
            raise ValueError(
                f"unknown hash {hash_kind!r}; expected one of {HASH_KINDS}"
            )
        self.entries = entries
        self.shared = shared
        self.inline = inline
        self.hash_kind = hash_kind
        self.name = f"ibtc-{'shared' if shared else 'persite'}-{entries}"
        if not inline:
            self.name += "-outline"
        self._shared_table = _Table.sized(entries) if shared else None
        self._site_tables: dict[int, _Table] = {}

    def _table_for(self, ib_pc: int) -> _Table:
        if self._shared_table is not None:
            return self._shared_table
        table = self._site_tables.get(ib_pc)
        if table is None:
            table = _Table.sized(self.entries)
            self._site_tables[ib_pc] = table
        return table

    def dispatch(
        self, fragment: Fragment, ib_pc: int, guest_target: int
    ) -> Fragment:
        assert self.vm is not None
        vm = self.vm
        profile = vm.model.profile
        cost = profile.ibtc_probe + profile.ibtc_spill
        if self.inline:
            jump_site = fragment.exit_site
        else:
            # shared stub: extra control transfer, and one polymorphic
            # host indirect-jump site for the whole program
            cost += profile.ibtc_stub_jump
            jump_site = OUTLINE_STUB_SITE
        vm.model.charge(Category.IBTC, cost)

        table = self._table_for(ib_pc)
        index = ibtc_index(guest_target, table.mask, self.hash_kind)
        injector = getattr(vm, "fault_injector", None)
        if injector is not None:
            event = injector.table_event("ibtc")
            if event == "drop":
                table.tags[index] = -1
                table.frags[index] = None
            elif event == "corrupt" and table.frags[index] is not None:
                from repro.faults.inject import tombstone

                table.frags[index] = tombstone(table.frags[index])
        cached = table.frags[index]
        trace = vm.trace
        if (
            table.tags[index] == guest_target
            and cached is not None
            and cached.valid
        ):
            self._hit()
            if trace is not None:
                trace.emit("ibtc.hit", site=ib_pc, target=guest_target,
                           probes=1)
            # the probe ends in a host indirect jump through the cached
            # fragment address
            vm.model.indirect_jump(jump_site, cached.fc_addr)
            return cached

        # a tag match on an invalidated fragment is a stale entry (missed
        # flush invalidation, or injected corruption): treated exactly
        # like a miss, so the refill below repairs the table
        self._miss()
        if trace is not None:
            trace.emit("ibtc.miss", site=ib_pc, target=guest_target,
                       probes=1)
        target_fragment = vm.reenter_translator(guest_target)
        table.tags[index] = guest_target
        table.frags[index] = target_fragment
        if trace is not None:
            trace.emit("ibtc.insert", site=ib_pc, target=guest_target,
                       index=index)
        return target_fragment

    def preseed(
        self, ib_pc: int, guest_target: int, fragment: Fragment
    ) -> bool:
        """Fill the target's slot at translation time if it is free.

        Only empty (or invalidated) slots are filled: evicting a
        dynamically established entry for a static hint could only ever
        hurt.  The filled entry is indistinguishable from one installed
        by a dispatch miss, so the dispatch path needs no changes.
        """
        table = self._table_for(ib_pc)
        index = ibtc_index(guest_target, table.mask, self.hash_kind)
        occupant = table.frags[index]
        if (
            table.tags[index] != -1
            and occupant is not None
            and occupant.valid
        ):
            return False
        table.tags[index] = guest_target
        table.frags[index] = fragment
        return True

    def live_fragment_refs(self):
        refs = []
        if self._shared_table is not None:
            refs.extend(self._shared_table.frags)
        for table in self._site_tables.values():
            refs.extend(table.frags)
        return refs

    def on_flush(self) -> None:
        if self._shared_table is not None:
            self._shared_table.clear()
        self._site_tables.clear()

    def scrub_invalid(self) -> None:
        tables = []
        if self._shared_table is not None:
            tables.append(self._shared_table)
        tables.extend(self._site_tables.values())
        for table in tables:
            frags = table.frags
            tags = table.tags
            for index, frag in enumerate(frags):
                if frag is not None and not frag.valid:
                    tags[index] = -1
                    frags[index] = None
