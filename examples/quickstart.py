#!/usr/bin/env python3
"""Quickstart: compile a guest program, run it natively and under the SDT.

Demonstrates the core pipeline in ~40 lines:

1. write a guest program in MiniC (function pointers -> indirect calls,
   ``switch`` -> indirect jumps, recursion -> returns),
2. run it on the reference interpreter with a native cost model,
3. run it under the SDT with an IBTC and fast returns,
4. compare cycles: the ratio is the SDT overhead the paper studies.
"""

from repro.host import HostModel, NativeCostObserver, X86_P4
from repro.lang import compile_to_program
from repro.machine.interpreter import Interpreter
from repro.sdt import SDTConfig
from repro.sdt.vm import run_sdt

SOURCE = r"""
int square(int x) { return x * x; }
int negate(int x) { return -x; }
int ops[] = { &square, &negate };

int classify(int x) {
    switch (x & 3) {
    case 0: return 1;
    case 1: return 10;
    case 2: return 100;
    default: return 1000;
    }
}

int main() {
    int total = 0;
    int i;
    for (i = 0; i < 500; i++) {
        int f = ops[i & 1];           /* indirect call through a table  */
        total += f(i) + classify(i);  /* jump-table indirect jump       */
        total &= 0xffffff;
    }
    print_str("checksum: ");
    print_int(total);
    print_char('\n');
    return 0;
}
"""


def main() -> None:
    program = compile_to_program(SOURCE)

    # native baseline: interpreter + cost observer
    model = HostModel(X86_P4)
    interp = Interpreter(program, observer=NativeCostObserver(model))
    native = interp.run()
    print(f"guest output : {native.output!r}")
    print(f"retired      : {native.retired} instructions")
    print(f"indirect     : {native.indirect_branches} branches")
    print(f"native       : {model.total_cycles} simulated cycles")

    # the same program under the SDT
    config = SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=4096,
                       returns="fast")
    result = run_sdt(program, config)
    assert result.output == native.output, "SDT diverged from native run!"
    print(f"sdt ({config.label}) : {result.total_cycles} cycles")
    print(f"overhead     : {result.total_cycles / model.total_cycles:.3f}x")

    print("\ncycle breakdown:")
    for category, cycles in sorted(result.cycles.items(),
                                   key=lambda item: -item[1]):
        if cycles:
            print(f"  {category:16s} {cycles:10d}")


if __name__ == "__main__":
    main()
