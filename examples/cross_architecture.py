#!/usr/bin/env python3
"""Cross-architecture sensitivity: the paper's headline finding, live.

"The most efficient implementation and configuration can be highly
dependent on the implementation of the underlying architecture."

This example derives a family of host profiles from the K8 baseline,
sweeping only the indirect-branch mispredict penalty, and shows where the
IBTC-vs-sieve-vs-fast-returns ranking shifts — and how brutally the
SPARC-like expensive context switch punishes the unoptimised baseline.
"""

from repro.eval.report import format_table, geomean
from repro.eval.runner import measure
from repro.host import SPARC_US3, X86_K8, X86_P4
from repro.sdt import SDTConfig

WORKLOADS = ("gcc_like", "perl_like", "crafty_like", "gzip_like")
SCALE = "tiny"


def suite_geomean(config) -> float:
    return geomean(
        [measure(w, config, scale=SCALE).overhead for w in WORKLOADS]
    )


def configs_for(profile):
    return {
        "reentry": SDTConfig(profile=profile, ib="reentry"),
        "ibtc": SDTConfig(profile=profile, ib="ibtc"),
        "sieve": SDTConfig(profile=profile, ib="sieve"),
        "ibtc+fast": SDTConfig(profile=profile, ib="ibtc", returns="fast"),
    }


def main() -> None:
    # 1. the three preset machines
    rows = []
    for profile in (X86_P4, X86_K8, SPARC_US3):
        row = [profile.name]
        for config in configs_for(profile).values():
            row.append(suite_geomean(config))
        rows.append(row)
    print(format_table(
        "Preset hosts (geomean overhead over 4 workloads)",
        ["host", "reentry", "ibtc", "sieve", "ibtc+fast"],
        rows,
    ))

    # 2. sweep one microarchitectural knob: the mispredict penalty
    print()
    rows = []
    for penalty in (2, 8, 16, 32, 48):
        profile = X86_K8.derive(f"k8-mp{penalty}",
                                mispredict_penalty=penalty)
        entries = {
            name: suite_geomean(config)
            for name, config in configs_for(profile).items()
            if name != "reentry"
        }
        winner = min(entries, key=entries.get)
        rows.append([f"penalty={penalty}", *entries.values(), winner])
    print(format_table(
        "Mispredict-penalty sweep (derived from x86_k8)",
        ["profile", "ibtc", "sieve", "ibtc+fast", "winner"],
        rows,
    ))


if __name__ == "__main__":
    main()
