#!/usr/bin/env python3
"""Extending the SDT: plug in your own indirect-branch mechanism.

The paper's conclusion — mechanism choice is architecture- and
workload-dependent — invites experimentation.  This example implements a
mechanism the paper did *not* evaluate: a **2-way set-associative IBTC
with LRU replacement** (the paper's tables are all direct-mapped), wires
it into an :class:`~repro.sdt.vm.SDTVM`, and compares it against the
stock direct-mapped IBTC on a conflict-prone workload.

It shows the full extension surface:

- subclass :class:`repro.sdt.ib.base.IBMechanism`,
- charge costs via ``vm.model.charge`` / ``vm.model.indirect_jump``,
- fall back to ``vm.reenter_translator`` on a miss,
- clear cached fragment pointers in ``on_flush``.
"""

from repro.eval.report import format_table
from repro.host import HostModel, NativeCostObserver, X86_P4
from repro.host.costs import Category
from repro.machine.interpreter import Interpreter
from repro.sdt import SDTConfig
from repro.sdt.fragment import Fragment
from repro.sdt.ib.base import IBMechanism
from repro.sdt.ib.ibtc import ibtc_index
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload


class TwoWayIBTC(IBMechanism):
    """2-way set-associative IBTC with LRU replacement."""

    def __init__(self, sets: int = 32):
        super().__init__()
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        self.sets = sets
        self.name = f"ibtc-2way-{sets}"
        # each set: list of up to 2 (tag, fragment) pairs, MRU first
        self._sets: list[list[tuple[int, Fragment]]] = [
            [] for _ in range(sets)
        ]

    def dispatch(self, fragment, ib_pc, guest_target):
        vm = self.vm
        profile = vm.model.profile
        # a 2-way probe loads and compares both tags: slightly pricier
        vm.model.charge(Category.IBTC, profile.ibtc_probe + 2)
        entries = self._sets[ibtc_index(guest_target, self.sets - 1)]
        for position, (tag, cached) in enumerate(entries):
            if tag == guest_target and cached.valid:
                self._hit()
                entries.insert(0, entries.pop(position))  # LRU bump
                vm.model.indirect_jump(fragment.exit_site, cached.fc_addr)
                return cached
        self._miss()
        target = vm.reenter_translator(guest_target)
        entries.insert(0, (guest_target, target))
        del entries[2:]
        return target

    def on_flush(self):
        for entries in self._sets:
            entries.clear()


def run_with_mechanism(program, mechanism):
    """Run a program under an SDTVM with a hand-built generic mechanism."""
    vm = SDTVM(program, SDTConfig(profile=X86_P4))
    # replace the stock mechanism before execution starts
    vm.generic_ib = mechanism
    vm.return_mech.generic = mechanism  # returns-as-IB delegate
    mechanism.bind(vm)
    return vm.run()


def main() -> None:
    # gcc_like's jump tables produce exactly the conflict pattern
    # associativity is meant to absorb
    workload = get_workload("gcc_like", "small")
    program = workload.compile()

    model = HostModel(X86_P4)
    Interpreter(program, observer=NativeCostObserver(model)).run()
    native_cycles = model.total_cycles

    rows = []
    for sets, direct_entries in ((16, 32), (64, 128), (256, 512)):
        two_way = run_with_mechanism(program, TwoWayIBTC(sets=sets))
        direct = SDTVM(
            program,
            SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=direct_entries),
        ).run()
        rows.append([
            f"2-way x {sets} sets ({2 * sets} entries)",
            two_way.total_cycles / native_cycles,
            two_way.stats.hit_rate(f"ibtc-2way-{sets}"),
        ])
        rows.append([
            f"direct-mapped {direct_entries} entries",
            direct.total_cycles / native_cycles,
            direct.stats.hit_rate(f"ibtc-shared-{direct_entries}"),
        ])
    print(format_table(
        "Custom 2-way IBTC vs stock direct-mapped IBTC (gcc_like)",
        ["configuration", "overhead", "hit rate"],
        rows,
    ))


if __name__ == "__main__":
    main()
