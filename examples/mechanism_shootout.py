#!/usr/bin/env python3
"""Mechanism shootout: every IB mechanism on one interpreter workload.

Runs the ``perl_like`` workload (the paper's worst case: a megamorphic
indirect-call site plus dense call/return traffic) under every mechanism
and prints the overhead ladder — a one-workload slice of experiment E6.

Usage: python examples/mechanism_shootout.py [workload] [scale]
"""

import sys

from repro.eval.report import format_table
from repro.eval.runner import measure, run_native
from repro.host import X86_P4
from repro.sdt import SDTConfig

CONFIGS = [
    SDTConfig(profile=X86_P4, ib="reentry"),
    SDTConfig(profile=X86_P4, ib="reentry", linking=False),
    SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=64),
    SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=4096),
    SDTConfig(profile=X86_P4, ib="ibtc", ibtc_entries=64, ibtc_shared=False),
    SDTConfig(profile=X86_P4, ib="sieve", sieve_buckets=64),
    SDTConfig(profile=X86_P4, ib="sieve", sieve_buckets=512),
    SDTConfig(profile=X86_P4, ib="ibtc", returns="shadow"),
    SDTConfig(profile=X86_P4, ib="ibtc", returns="retcache"),
    SDTConfig(profile=X86_P4, ib="ibtc", returns="fast"),
    SDTConfig(profile=X86_P4, ib="sieve", returns="fast"),
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "perl_like"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"

    baseline = run_native(workload, X86_P4, scale=scale)
    print(
        f"{workload} [{scale}]: {baseline.retired} instructions, "
        f"{baseline.indirect_branches} IBs "
        f"(1 per {baseline.retired // baseline.indirect_branches}), "
        f"{baseline.cycles} native cycles\n"
    )

    rows = []
    for config in CONFIGS:
        m = measure(workload, config, scale=scale)
        rows.append([
            config.label,
            m.overhead,
            m.ib_overhead_cycles,
            m.breakdown["translate"],
        ])
    rows.sort(key=lambda row: row[1], reverse=True)
    print(format_table(
        f"IB mechanism shootout — {workload}",
        ["configuration", "overhead", "IB-handling cycles", "translate"],
        rows,
    ))


if __name__ == "__main__":
    main()
