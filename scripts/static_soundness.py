#!/usr/bin/env python3
"""CI gate for the whole-program target-set analysis (docs/analysis.md).

Re-asserts the static-analysis acceptance bar end-to-end:

1. **Certificates** — every workload image and every compiled MiniC
   example yields a :class:`TargetSetReport` whose certificates pass the
   machine check (:func:`repro.analysis.targets.verify_report`), with
   zero ``unknown`` verdicts on the workload suite (the --strict bar;
   a regression here means the analysis lost precision).
2. **Dynamic ⊆ static** — the cross-validation oracle runs every
   workload and requires every observed dynamic target to be a member
   of its site's verdict set (``all_sound``).
3. **Dispatch soundness under the SDT** — every workload × profile ×
   mechanism runs with ``static_targets`` on *and* the pinned chaos
   fault plan; the per-dispatch precision meter must report zero
   ``escaped`` dispatches and zero devirt-guard mismatches, and results
   must stay architecturally identical to the static-off run.

Writes the per-site precision records to
``results/ci/STATIC_report.json`` (uploaded as a CI artifact) and exits
non-zero on any failure.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

CHAOS = "chaos:1234"
SCALE = "tiny"
MECHANISMS = ("reentry", "ibtc", "sieve")
EXAMPLES = Path("examples/guest")
REPORT_PATH = Path("results/ci/STATIC_report.json")

#: Committed ``unknown``-verdict baseline per workload (the --strict
#: bar).  crafty_like's single unknown is the return of its never-called
#: ``_start`` shim (zero recorded return sites — nothing to bound, and
#: the site never dispatches).  Any workload exceeding its baseline is a
#: precision regression and fails the gate.
STRICT_BASELINE = {"crafty_like": 1}


def check_certificates(failures: list[str], report: dict) -> None:
    from repro.analysis.targets import analyze_targets, verify_report
    from repro.lang import compile_to_program
    from repro.workloads import get_workload, workload_names

    images: list[tuple[str, object]] = [
        (name, get_workload(name, SCALE).compile())
        for name in workload_names()
    ]
    for path in sorted(EXAMPLES.glob("*.mc")):
        images.append((path.name, compile_to_program(path.read_text())))

    for label, program in images:
        ts = analyze_targets(program)
        problems = verify_report(ts)
        counts = ts.verdict_counts()
        report["certificates"].append(
            {"image": label, "counts": counts, "violations": problems}
        )
        for problem in problems:
            failures.append(f"{label}: certificate check: {problem}")
        allowed = STRICT_BASELINE.get(label, 0)
        if label.endswith("_like") and counts.get("unknown", 0) > allowed:
            failures.append(
                f"{label}: {counts['unknown']} unknown verdict(s) "
                f"(baseline {allowed}) — strict precision regression"
            )
    examples = len(images) - len(workload_names())
    print(f"certs:     {len(images)} images verified "
          f"({examples} compiled examples)", flush=True)


def check_cross_validation(failures: list[str], report: dict) -> None:
    from repro.eval.static_dynamic import cross_validate_suite

    for cv in cross_validate_suite(scale=SCALE):
        record = cv.to_dict()
        del record["per_site"]  # keep the artifact small
        report["crossval"].append(record)
        if not cv.all_sound:
            failures.append(
                f"{cv.workload}: dynamic target outside the static set "
                f"({len(cv.violations)} site(s))"
            )
    print(f"crossval:  {len(report['crossval'])} workloads, "
          f"dynamic ⊆ static required", flush=True)


def check_dispatch_soundness(failures: list[str], report: dict) -> None:
    from repro.host.profile import SIMPLE, X86_P4
    from repro.sdt.config import SDTConfig
    from repro.sdt.vm import SDTVM
    from repro.workloads import get_workload, workload_names

    cells = 0
    for profile in (SIMPLE, X86_P4):
        for mechanism in MECHANISMS:
            for name in workload_names():
                program = get_workload(name, SCALE).compile()
                runs = {}
                for static in (False, True):
                    config = SDTConfig(
                        profile=profile, ib=mechanism,
                        static_targets=static, faults=CHAOS,
                    )
                    runs[static] = SDTVM(program, config=config).run()
                off, on = runs[False], runs[True]
                cells += 1
                if (on.output, on.exit_code, on.retired) != (
                    off.output, off.exit_code, off.retired
                ):
                    failures.append(
                        f"{name}/{profile.name}/{mechanism}: "
                        f"architectural results changed with "
                        f"static_targets on"
                    )
                static_stats = dict(on.stats.static)
                record = {
                    "workload": name, "profile": profile.name,
                    "mechanism": mechanism, "plan": CHAOS,
                    "precision": round(on.stats.static_precision(), 6),
                    "counters": static_stats,
                }
                report["dispatch"].append(record)
                for counter in ("escaped", "devirt_mismatch"):
                    if static_stats.get(counter, 0):
                        failures.append(
                            f"{name}/{profile.name}/{mechanism}: "
                            f"{counter}={static_stats[counter]} (must be 0)"
                        )
    print(f"dispatch:  {cells} workload×profile×mechanism cells under "
          f"{CHAOS}, escaped=0 required", flush=True)


def main() -> int:
    failures: list[str] = []
    report: dict = {"certificates": [], "crossval": [], "dispatch": []}

    check_certificates(failures, report)
    check_cross_validation(failures, report)
    check_dispatch_soundness(failures, report)

    report["failures"] = failures
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    print(f"report:    {REPORT_PATH}", flush=True)

    if failures:
        print("\nSTATIC SOUNDNESS CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("static soundness check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
