#!/usr/bin/env python3
"""CI guard: every Python file must be inside the ruff lint scope.

The lint step runs ``ruff check src tests scripts benchmarks``.  That
scope silently shrinks when a glob in ``[tool.ruff]`` ``exclude`` /
``extend-exclude`` (or a stray ``.ruffignore``) matches a newly added
file: the file lands, CI stays green, and the linter never sees it.

This script asks ruff which files it would actually check
(``ruff check --show-files``) and compares against the ``*.py`` files
present on disk under the same directories.  Any file on disk that ruff
skips fails the step with the exact paths, so scope regressions surface
in the same PR that introduces them.

Usage::

    python scripts/check_ruff_scope.py            # same scope as CI lint
    python scripts/check_ruff_scope.py src        # restrict to one tree
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

SCOPE = ("src", "tests", "scripts", "benchmarks")
SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


def _files_on_disk(roots: tuple[str, ...]) -> set[Path]:
    found: set[Path] = set()
    for root in roots:
        base = Path(root)
        if not base.is_dir():
            continue
        for path in base.rglob("*.py"):
            if not SKIP_DIRS.intersection(part for part in path.parts):
                found.add(path.resolve())
    return found


def _ruff_scope(roots: tuple[str, ...]) -> set[Path]:
    for launcher in (["ruff"], [sys.executable, "-m", "ruff"]):
        try:
            proc = subprocess.run(
                [*launcher, "check", "--show-files", *roots],
                capture_output=True, text=True, timeout=120,
            )
        except (FileNotFoundError, subprocess.TimeoutExpired):
            continue
        if proc.returncode != 0:
            if "No module named" in proc.stderr:
                continue  # bare python without the ruff package
            raise SystemExit(
                f"ruff scope check: '{' '.join(launcher)} check "
                f"--show-files' failed:\n{proc.stderr.strip()}"
            )
        return {
            Path(line.strip()).resolve()
            for line in proc.stdout.splitlines() if line.strip()
        }
    raise SystemExit(
        "ruff scope check: ruff is not installed (CI installs it in the "
        "lint environment; run `pip install ruff` locally)"
    )


def main(argv: list[str] | None = None) -> int:
    roots = tuple(argv) if argv else SCOPE
    on_disk = _files_on_disk(roots)
    linted = _ruff_scope(roots)
    missing = sorted(on_disk - linted)
    if missing:
        print("ruff scope check: FAIL - files outside the lint scope:",
              file=sys.stderr)
        cwd = Path.cwd()
        for path in missing:
            try:
                shown = path.relative_to(cwd)
            except ValueError:
                shown = path
            print(f"  - {shown}", file=sys.stderr)
        print(
            "check [tool.ruff] exclude patterns in pyproject.toml "
            "(or .ruffignore)", file=sys.stderr,
        )
        return 1
    print(f"ruff scope check: ok ({len(on_disk)} files under "
          f"{', '.join(roots)} all linted)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
