#!/usr/bin/env python3
"""CI performance-regression gate for the simulation engines.

Compares a fresh ``scripts/bench_engine.py`` report against the committed
baseline (``benchmarks/baselines/BENCH_engine.baseline.json``) and fails
when either faster engine's advantage over the oracle engine regresses
by more than the threshold.

The gated metrics are the **aggregate threaded/oracle and tier2/oracle
speedup ratios** — dimensionless, so they transfer between machines of
different absolute speed: a CI runner half as fast as the baseline
machine still shows the same *ratios* unless an engine itself got slower
relative to the oracle.  Absolute instrs/sec are reported for context but never
gated.  Engine *divergence* (differing results between engines) is
detected upstream: ``bench_engine.py`` exits non-zero before writing a
report, so a missing report also fails the gate.

Usage::

    python scripts/bench_engine.py --quick          # writes the report
    python scripts/perf_gate.py                     # gate vs baseline
    python scripts/perf_gate.py --threshold 0.10
    python scripts/perf_gate.py --update-baseline   # bless current report

``--update-baseline`` rewrites the baseline from the current report with
the wall-clock timestamp stripped, so the committed file stays
deterministic modulo machine speed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPORT = Path("results/ci/BENCH_engine.json")
BASELINE = Path("benchmarks/baselines/BENCH_engine.baseline.json")
DEFAULT_THRESHOLD = 0.15


def _load(path: Path, kind: str) -> dict:
    if not path.exists():
        raise SystemExit(
            f"perf gate: {kind} {path} is missing"
            + (
                " (run scripts/bench_engine.py --quick first)"
                if kind == "report" else
                " (run scripts/perf_gate.py --update-baseline to create it)"
            )
        )
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(f"perf gate: {kind} {path} is not valid JSON: {exc}")
    if data.get("bench") != "engine" or "speedup" not in data:
        raise SystemExit(
            f"perf gate: {kind} {path} is not a bench_engine report"
        )
    return data


def _workload_speedups(report: dict) -> dict[str, dict[str, dict[str, float]]]:
    """Per-workload {mode: {engine: engine/oracle ratio}} table."""
    table: dict[str, dict[str, dict[str, float]]] = {}
    for row in report.get("workloads", []):
        ratios: dict[str, dict[str, float]] = {}
        for mode in ("native", "sdt"):
            engines = row.get(mode, {})
            oracle = (engines.get("oracle") or {}).get("instrs_per_sec") or 0
            ratios[mode] = {
                engine: (
                    ((engines.get(engine) or {}).get("instrs_per_sec") or 0)
                    / oracle if oracle else 0.0
                )
                for engine in ("threaded", "tier2")
            }
        table[row["workload"]] = ratios
    return table


def _delta_table(report: dict, baseline: dict) -> list[str]:
    current = _workload_speedups(report)
    blessed = _workload_speedups(baseline)
    lines = [
        f"{'workload':16s} {'mode':7s} {'engine':9s} {'baseline':>9s} "
        f"{'current':>9s} {'delta':>8s}"
    ]
    for workload in sorted(set(current) | set(blessed)):
        for mode in ("native", "sdt"):
            for engine in ("threaded", "tier2"):
                old = (
                    blessed.get(workload, {}).get(mode, {}).get(engine, 0.0)
                )
                new = (
                    current.get(workload, {}).get(mode, {}).get(engine, 0.0)
                )
                delta = (new - old) / old if old else 0.0
                marker = "" if workload in blessed and workload in current \
                    else "  (not in both)"
                lines.append(
                    f"{workload:16s} {mode:7s} {engine:9s} {old:8.2f}x "
                    f"{new:8.2f}x {delta:+7.1%}{marker}"
                )
    return lines


def update_baseline(report: dict, baseline_path: Path) -> int:
    blessed = dict(report)
    blessed.pop("timestamp", None)  # wall clock: not part of the baseline
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(blessed, indent=2, sort_keys=True) + "\n"
    )
    print(f"perf gate: baseline updated from report -> {baseline_path}")
    for key, ratio in _aggregate_ratios(blessed).items():
        print(f"perf gate: blessed aggregate {key} speedup {ratio:.3f}x")
    return 0


def _aggregate_ratios(data: dict) -> dict[str, float]:
    """Gated aggregate ratios; legacy reports only carry threaded/oracle."""
    speedups = data.get("speedups")
    if speedups:
        return {
            key: speedups[key]
            for key in ("threaded/oracle", "tier2/oracle")
            if speedups.get(key)
        }
    return {"threaded/oracle": data.get("speedup")}


def gate(report: dict, baseline: dict, threshold: float) -> int:
    current = _aggregate_ratios(report)
    blessed = _aggregate_ratios(baseline)
    gated = [key for key in blessed if key in current and blessed[key]]
    if not gated:
        raise SystemExit(
            "perf gate: no common aggregate speedup to gate "
            f"(report={current!r}, baseline={blessed!r})"
        )

    print(f"baseline: scale={baseline.get('scale')}, "
          f"{len(baseline.get('workloads', []))} workloads")
    print(f"current : scale={report.get('scale')}, "
          f"{len(report.get('workloads', []))} workloads")
    failures = []
    for key in gated:
        old, new = blessed[key], current[key]
        floor = old * (1.0 - threshold)
        regression = (old - new) / old
        status = "ok" if new >= floor else "FAIL"
        print(f"{key:16s}: baseline {old:.3f}x, current {new:.3f}x, "
              f"gate >= {floor:.3f}x ({regression:+.1%}) {status}")
        if new < floor:
            failures.append((key, old, new, regression))
    print()
    print("\n".join(_delta_table(report, baseline)))
    print()

    if report.get("scale") != baseline.get("scale"):
        print(
            f"perf gate: WARNING comparing scale={report.get('scale')} "
            f"report against scale={baseline.get('scale')} baseline",
            file=sys.stderr,
        )
    if failures:
        for key, old, new, regression in failures:
            print(
                f"perf gate: FAIL - {key} aggregate speedup regressed "
                f"{regression:.1%} (> {threshold:.0%} allowed): "
                f"{old:.3f}x -> {new:.3f}x",
                file=sys.stderr,
            )
        return 1
    print(f"perf gate: OK ({len(gated)} ratios within {threshold:.0%} "
          f"of baseline)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", type=Path, default=REPORT,
                        metavar="FILE",
                        help=f"bench_engine report (default: {REPORT})")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        metavar="FILE",
                        help=f"committed baseline (default: {BASELINE})")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="FRACTION",
                        help="allowed aggregate-speedup regression "
                        f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="bless the current report as the new baseline")
    args = parser.parse_args(argv)

    if not 0 < args.threshold < 1:
        raise SystemExit("perf gate: --threshold must be in (0, 1)")

    report = _load(args.report, "report")
    if args.update_baseline:
        return update_baseline(report, args.baseline)
    baseline = _load(args.baseline, "baseline")
    return gate(report, baseline, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
