#!/usr/bin/env python3
"""Load generator + correctness gate for the serve daemon.

Spawns ``repro-sdt serve`` on an ephemeral port, drives a mixed request
load against it, and verifies the serve-layer acceptance bar
(docs/serve.md): **no accepted request ever yields a wrong result** —
every 200 body is byte-compared against an in-process cold computation
of the same cell — and a tripped circuit breaker **recovers** through
its half-open probe.

Chaos mode (``--chaos``) additionally:

- runs the daemon under ``REPRO_FAULTS=chaos:<seed>`` (the PR 3 fault
  plans; deterministic, architecturally invisible),
- SIGKILLs live pool worker processes mid-computation (exercising the
  executor's BrokenProcessPool recovery under the daemon),
- disconnects clients after the request is accepted (the daemon must
  finish, journal and cache the work anyway).

Emits ``results/ci/BENCH_serve.json`` with latency percentiles, status
and source mixes, cache hit rate, breaker transitions, shed count and
the chaos tallies.  Exit code 0 only if every gate holds.

Usage::

    python scripts/load_serve.py --quick --chaos
    python scripts/load_serve.py --requests 200 --concurrency 16
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

CHAOS_PLAN = "chaos:1234"
OUT_PATH = REPO / "results" / "ci" / "BENCH_serve.json"

#: Bad-fuel request: deterministic FuelExhausted, trips its family.
BREAKER_FAMILY_BAD = {"kind": "measure", "workload": "gzip_like",
                      "scale": "tiny", "config": {"ib": "sieve"},
                      "fuel": 64}
#: Same family (fuel excluded), viable fuel: the recovering probe.
BREAKER_FAMILY_GOOD = {"kind": "measure", "workload": "gzip_like",
                       "scale": "tiny", "config": {"ib": "sieve"},
                       "fuel": 30_000_000}


def request_mix(quick: bool) -> list[dict]:
    """The load's request payloads: few unique cells, many duplicates
    (duplicates exercise coalescing and the cache tiers)."""
    unique = [
        {"kind": "native", "workload": "gzip_like", "scale": "tiny",
         "fuel": 3_000_000},
        {"kind": "native", "workload": "mcf_like", "scale": "tiny",
         "fuel": 3_000_000},
        {"kind": "fanout", "workload": "perl_like", "scale": "tiny",
         "fuel": 3_000_000},
        {"kind": "measure", "workload": "gzip_like", "scale": "tiny",
         "config": {"ib": "ibtc"}, "fuel": 3_000_000},
        {"kind": "measure", "workload": "mcf_like", "scale": "tiny",
         "config": {"ib": "reentry"}, "fuel": 3_000_000},
        {"kind": "measure", "workload": "gzip_like", "scale": "tiny",
         "config": {"ib": "sieve", "returns": "shadow"},
         "fuel": 3_000_000},
    ]
    repeat = 3 if quick else 8
    mix = [dict(payload) for payload in unique for _ in range(repeat)]
    # deterministic interleave so duplicates overlap in flight
    mix.sort(key=lambda p: hash(json.dumps(p, sort_keys=True)) % 97)
    return mix


class Client:
    def __init__(self, port: int):
        self.port = port

    def request(self, method: str, path: str, payload=None, timeout=120):
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=(json.dumps(payload).encode()
                  if payload is not None else None),
            method=method, headers={"Connection": "close"},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def disconnect_after_send(self, payload: dict) -> None:
        """Send a full request, then hang up before the response."""
        body = json.dumps(payload).encode()
        head = (f"POST /v1/cells HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode()
        with socket.create_connection(("127.0.0.1", self.port),
                                      timeout=10) as sock:
            sock.sendall(head + body)
            time.sleep(0.05)       # let the daemon accept + journal it
        # socket closed: the daemon must finish the work regardless


def spawn_daemon(state_dir: Path, cache_dir: Path, jobs: int,
                 chaos: bool) -> tuple[subprocess.Popen, dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    if chaos:
        env["REPRO_FAULTS"] = CHAOS_PLAN
    else:
        env.pop("REPRO_FAULTS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--cache-dir", str(cache_dir),
         "--jobs", str(jobs), "--queue-depth", "64",
         "--drain-timeout", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env, cwd=str(REPO),
    )
    ready = json.loads(proc.stdout.readline())
    assert ready.get("event") == "ready", ready
    return proc, ready


def descendant_pids(pid: int) -> list[int]:
    """PIDs of all live descendants of ``pid`` (Linux /proc walk)."""
    found: list[int] = []
    frontier = [pid]
    while frontier:
        parent = frontier.pop()
        task_dir = Path(f"/proc/{parent}/task")
        try:
            for task in task_dir.iterdir():
                children = (task / "children").read_text().split()
                for child in children:
                    found.append(int(child))
                    frontier.append(int(child))
        except OSError:
            continue
    return found


class WorkerKiller(threading.Thread):
    """Periodically SIGKILLs a daemon pool worker while load runs."""

    def __init__(self, daemon_pid: int, interval: float):
        super().__init__(daemon=True)
        self.daemon_pid = daemon_pid
        self.interval = interval
        self.kills = 0
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            # grandchildren are pool workers (children of the
            # forkserver); killing one surfaces as BrokenProcessPool
            direct = set(descendant_pids(self.daemon_pid))
            victims = sorted(direct)[-1:]        # newest descendant
            for pid in victims:
                try:
                    os.kill(pid, signal.SIGKILL)
                    self.kills += 1
                except OSError:
                    pass

    def stop(self) -> None:
        self._halt.set()


def compute_references(payloads: list[dict], chaos: bool) -> dict:
    """Cold, serial, in-process reference result for each unique cell.

    Under chaos the daemon computes with ``REPRO_FAULTS`` set; fault
    plans are seeded and deterministic, so setting the same environment
    here reproduces its results bit-for-bit.
    """
    if chaos:
        os.environ["REPRO_FAULTS"] = CHAOS_PLAN
    else:
        os.environ.pop("REPRO_FAULTS", None)
    from repro.eval.cells import encode_result
    from repro.serve.protocol import parse_request

    references = {}
    for payload in payloads:
        request = parse_request(payload)
        if request.key not in references:
            references[request.key] = encode_result(request.cell.execute())
    return references


def quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(q * len(sorted_values) + 0.5) - 1))
    return round(sorted_values[index], 3)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small load for CI smoke")
    parser.add_argument("--chaos", action="store_true",
                        help="fault plans + worker kills + disconnects")
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default=str(OUT_PATH))
    args = parser.parse_args()

    work_dir = Path(tempfile.mkdtemp(prefix="serve-load-"))
    proc, ready = spawn_daemon(work_dir / "state", work_dir / "cache",
                               args.jobs, args.chaos)
    client = Client(ready["port"])
    failures: list[str] = []
    mix = request_mix(args.quick)
    print(f"daemon up: pid={ready['pid']} port={ready['port']} "
          f"chaos={args.chaos} requests={len(mix)}", flush=True)

    killer = None
    if args.chaos:
        killer = WorkerKiller(ready["pid"], interval=0.4)
        killer.start()

    records: list[dict] = []
    lock = threading.Lock()

    def fire(payload: dict) -> None:
        start = time.monotonic()
        try:
            status, body = client.request("POST", "/v1/cells", payload)
        except Exception as exc:  # noqa: BLE001 - recorded and gated
            with lock:
                records.append({"status": -1, "error": str(exc),
                                "payload": payload})
            return
        with lock:
            records.append({
                "status": status,
                "latency_ms": round((time.monotonic() - start) * 1e3, 3),
                "source": body.get("source"),
                "key": body.get("key"),
                "result": body.get("result"),
                "payload": payload,
            })

    threads: list[threading.Thread] = []
    disconnects = 0
    for index, payload in enumerate(mix):
        while sum(t.is_alive() for t in threads) >= args.concurrency:
            time.sleep(0.01)
        if args.chaos and index % 7 == 3:
            try:
                client.disconnect_after_send(payload)
                disconnects += 1
            except OSError:
                pass
            continue
        thread = threading.Thread(target=fire, args=(payload,))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=300)
    if killer is not None:
        killer.stop()
        killer.join(timeout=5)

    # ---- gate 1: zero wrong results ------------------------------------
    references = compute_references(mix, args.chaos)
    wrong = 0
    ok = [r for r in records if r["status"] == 200]
    for record in ok:
        expected = references.get(record["key"])
        if expected is None or record["result"] != expected:
            wrong += 1
            failures.append(
                f"wrong result for key {record['key']}: "
                f"source={record['source']}"
            )
    errors = [r for r in records if r["status"] < 0]
    print(f"load done: {len(ok)}/{len(records)} ok, "
          f"{len(errors)} transport errors, {wrong} wrong results",
          flush=True)
    if not ok:
        failures.append("no successful responses at all")

    # ---- gate 2: breaker trips, then recovers --------------------------
    breaker_tripped = False
    for _ in range(8):
        status, body = client.request("POST", "/v1/cells",
                                      BREAKER_FAMILY_BAD)
        if status == 503 and "circuit open" in body.get("error", ""):
            breaker_tripped = True
            break
    breaker_recovered = False
    if breaker_tripped:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            time.sleep(0.5)      # let the open interval elapse
            status, body = client.request("POST", "/v1/cells",
                                          BREAKER_FAMILY_GOOD)
            if status == 200:
                breaker_recovered = True
                break
    if not breaker_tripped:
        failures.append("circuit breaker never opened on a crash loop")
    elif not breaker_recovered:
        failures.append("circuit breaker never recovered via its probe")
    print(f"breaker: tripped={breaker_tripped} "
          f"recovered={breaker_recovered}", flush=True)

    # ---- teardown + metrics -------------------------------------------
    _, metrics = client.request("GET", "/metrics")
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        out = ""
        failures.append("daemon did not exit after SIGTERM")
    if proc.returncode != 0:
        failures.append(f"daemon exit code {proc.returncode}")
    if args.chaos and killer is not None and killer.kills == 0:
        failures.append("chaos mode killed zero workers")

    latencies = sorted(r["latency_ms"] for r in records
                       if "latency_ms" in r)
    statuses: dict[str, int] = {}
    sources: dict[str, int] = {}
    for record in records:
        statuses[str(record["status"])] = \
            statuses.get(str(record["status"]), 0) + 1
        if record.get("source"):
            sources[record["source"]] = sources.get(record["source"], 0) + 1

    counters = metrics["metrics"]["counters"]
    bench = {
        "config": {
            "quick": args.quick, "chaos": args.chaos,
            "concurrency": args.concurrency, "jobs": args.jobs,
            "requests": len(mix),
        },
        "statuses": dict(sorted(statuses.items())),
        "sources": dict(sorted(sources.items())),
        "latency_ms": {
            "count": len(latencies),
            "p50": quantile(latencies, 0.5),
            "p90": quantile(latencies, 0.9),
            "p99": quantile(latencies, 0.99),
        },
        "cache_hit_rate": metrics["cache"]["hit_rate"],
        "breaker": {
            "tripped": breaker_tripped,
            "recovered": breaker_recovered,
            "transitions": metrics["breaker"]["transitions"],
        },
        "shed": counters.get("serve.shed", 0),
        "coalesced": counters.get("serve.coalesced", 0),
        "chaos": {
            "worker_kills": killer.kills if killer else 0,
            "client_disconnects": disconnects,
            "cell_retries": counters.get("serve.cell_retries", 0),
        },
        "wrong_results": wrong,
        "transport_errors": len(errors),
        "daemon_exit_code": proc.returncode,
        "failures": failures,
    }
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"bench: {out_path}", flush=True)

    # keep the journal for CI artifact upload
    journal = work_dir / "state" / "journal.jsonl"
    if journal.exists():
        artifact = out_path.parent / "serve_journal.jsonl"
        artifact.write_bytes(journal.read_bytes())

    if failures:
        print("\nSERVE LOAD CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("serve load check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
