#!/usr/bin/env python3
"""CI guard for the parallel executor and disk-cache keying.

Runs the representative E6 grid at tiny scale three times:

1. serial, no cache          — the reference table,
2. ``--jobs 2``, cold cache  — must produce byte-identical CSV output,
3. ``--jobs 2``, warm cache  — must be served >= 90% from the disk cache
                               and still match byte-for-byte.

A keying bug (a field missing from the fingerprint, fuel aliasing, a
nondeterministic row order) breaks one of these invariants.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

CSV_NAME = "e6_mechanism_comparison.csv"
MIN_HIT_RATE = 0.90


def main() -> int:
    from repro.eval.diskcache import DiskCache
    from repro.eval.parallel import run_experiments
    from repro.eval.runner import clear_caches

    workdir = Path(tempfile.mkdtemp(prefix="repro-cache-check-"))
    cache = DiskCache(workdir / "cache")

    _t, serial = run_experiments(["e6"], scale="tiny", jobs=1,
                                 results_dir=workdir / "serial")
    print(f"serial:        {serial.computed} simulated "
          f"in {serial.elapsed:.1f}s", flush=True)

    clear_caches()
    _t, cold = run_experiments(["e6"], scale="tiny", jobs=2, cache=cache,
                               results_dir=workdir / "cold")
    print(f"jobs=2 cold:   {cold.computed} simulated, "
          f"{cold.cache_hits} cached in {cold.elapsed:.1f}s", flush=True)

    clear_caches()
    _t, warm = run_experiments(["e6"], scale="tiny", jobs=2, cache=cache,
                               results_dir=workdir / "warm")
    print(f"jobs=2 warm:   {warm.computed} simulated, "
          f"{warm.cache_hits}/{warm.unique} cached "
          f"({warm.hit_rate:.0%}) in {warm.elapsed:.1f}s", flush=True)

    reference = (workdir / "serial" / CSV_NAME).read_bytes()
    failures = []
    for label in ("cold", "warm"):
        if (workdir / label / CSV_NAME).read_bytes() != reference:
            failures.append(
                f"{label} parallel run produced different {CSV_NAME} "
                f"bytes than the serial run"
            )
    if warm.hit_rate < MIN_HIT_RATE:
        failures.append(
            f"warm pass hit rate {warm.hit_rate:.0%} is below the "
            f"{MIN_HIT_RATE:.0%} floor — cache keying or persistence "
            f"is broken"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: parallel output byte-identical; warm pass "
              f"{warm.hit_rate:.0%} cache-served")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
