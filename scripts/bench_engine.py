#!/usr/bin/env python3
"""Benchmark the oracle vs threaded execution engines.

For every workload in the suite, times a native-baseline run and an SDT
run under both engines, verifies the results are identical (output, exit
code, retired count, iclass counts, cycle totals), and reports simulated
guest instructions per second.  Writes ``results/ci/BENCH_engine.json``
so the performance trajectory of the simulator itself is tracked over
time; ``scripts/perf_gate.py`` compares that report against the committed
baseline in ``benchmarks/baselines/``.

Usage::

    python scripts/bench_engine.py                 # full suite, small scale
    python scripts/bench_engine.py --quick         # CI smoke: 3 workloads, tiny
    python scripts/bench_engine.py --check         # exit 1 if threaded <= oracle
    python scripts/bench_engine.py -o out.json

See docs/performance.md for the engine design and current numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

QUICK_WORKLOADS = ("gzip_like", "perl_like", "mcf_like")


def _run_native(program, profile, engine: str, fuel: int):
    from repro.host.costs import HostModel, NativeCostObserver
    from repro.machine.interpreter import Interpreter

    model = HostModel(profile)
    interp = Interpreter(
        program, observer=NativeCostObserver(model), engine=engine
    )
    start = time.perf_counter()
    result = interp.run(fuel)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "retired": result.retired,
        "output": result.output,
        "exit_code": result.exit_code,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                result.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": model.total_cycles,
    }


def _run_sdt(program, profile, engine: str, fuel: int):
    from repro.sdt.config import SDTConfig
    from repro.sdt.vm import SDTVM

    config = SDTConfig(profile=profile, engine=engine)
    vm = SDTVM(program, config=config)
    start = time.perf_counter()
    result = vm.run(fuel)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "retired": result.retired,
        "output": result.output,
        "exit_code": result.exit_code,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                result.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": result.total_cycles,
    }


def _assert_identical(workload: str, mode: str, oracle: dict, threaded: dict):
    for field in ("output", "exit_code", "retired", "iclass_counts",
                  "cycles"):
        if oracle[field] != threaded[field]:
            raise SystemExit(
                f"ENGINE DIVERGENCE: {workload}/{mode} differs on "
                f"{field}: oracle={oracle[field]!r} "
                f"threaded={threaded[field]!r}"
            )


def bench(scale: str, names: list[str], profile_name: str, fuel: int) -> dict:
    from repro.host.profile import get_profile
    from repro.machine.engine import ENGINES
    from repro.workloads import get_workload

    profile = get_profile(profile_name)
    rows = []
    totals = {
        engine: {"retired": 0, "seconds": 0.0} for engine in ENGINES
    }
    for name in names:
        workload = get_workload(name, scale)
        program = workload.compile()  # compile outside the timed region
        row: dict = {"workload": name}
        for mode, runner in (("native", _run_native), ("sdt", _run_sdt)):
            per_engine = {
                engine: runner(program, profile, engine, fuel)
                for engine in ENGINES
            }
            _assert_identical(name, mode, *(per_engine[e] for e in ENGINES))
            row[mode] = {
                engine: {
                    "seconds": round(stats["seconds"], 6),
                    "retired": stats["retired"],
                    "instrs_per_sec": round(
                        stats["retired"] / stats["seconds"]
                    ) if stats["seconds"] else None,
                }
                for engine, stats in per_engine.items()
            }
            for engine, stats in per_engine.items():
                totals[engine]["retired"] += stats["retired"]
                totals[engine]["seconds"] += stats["seconds"]
        rows.append(row)
        print(
            f"{name:16s} native {_speedup(row['native']):5.2f}x   "
            f"sdt {_speedup(row['sdt']):5.2f}x",
            flush=True,
        )

    for engine, agg in totals.items():
        agg["instrs_per_sec"] = (
            round(agg["retired"] / agg["seconds"]) if agg["seconds"] else None
        )
        agg["seconds"] = round(agg["seconds"], 6)
    speedup = (
        totals["threaded"]["instrs_per_sec"] / totals["oracle"]["instrs_per_sec"]
        if totals["oracle"]["instrs_per_sec"] else None
    )
    return {
        "bench": "engine",
        "scale": scale,
        "profile": profile_name,
        "fuel": fuel,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workloads": rows,
        "totals": totals,
        "speedup": round(speedup, 3) if speedup else None,
    }


def _speedup(per_mode: dict) -> float:
    oracle = per_mode["oracle"]["instrs_per_sec"] or 0
    threaded = per_mode["threaded"]["instrs_per_sec"] or 0
    return threaded / oracle if oracle else 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--profile", default="x86_p4")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: workloads {', '.join(QUICK_WORKLOADS)} at tiny scale",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the threaded engine beats oracle",
    )
    parser.add_argument("-o", "--output",
                        default="results/ci/BENCH_engine.json",
                        metavar="FILE", help="JSON report path")
    args = parser.parse_args(argv)

    from repro.workloads import workload_names

    if args.quick:
        scale = "tiny"
        names = list(QUICK_WORKLOADS)
    else:
        scale = args.scale
        names = list(workload_names())

    from repro.eval.runner import DEFAULT_FUEL

    report = bench(scale, names, args.profile, DEFAULT_FUEL)
    totals = report["totals"]
    print(
        f"\ntotal: oracle {totals['oracle']['instrs_per_sec']:,} i/s, "
        f"threaded {totals['threaded']['instrs_per_sec']:,} i/s "
        f"-> {report['speedup']:.2f}x "
        f"({len(report['workloads'])} workloads, scale={scale})"
    )
    out_path = Path(args.output)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check and (report["speedup"] is None or report["speedup"] <= 1.0):
        print("FAIL: threaded engine is not faster than oracle",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
