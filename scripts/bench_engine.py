#!/usr/bin/env python3
"""Benchmark the oracle, threaded and tier-2 execution engines.

For every workload in the suite, times a native-baseline run and an SDT
run under every engine, verifies the results are identical (output, exit
code, retired count, iclass counts, cycle totals), and reports simulated
guest instructions per second.  Writes ``results/ci/BENCH_engine.json``
so the performance trajectory of the simulator itself is tracked over
time; ``scripts/perf_gate.py`` compares that report against the committed
baseline in ``benchmarks/baselines/``.

The quick variant runs at small scale: the tier-2 JIT pays a per-region
compile cost that only amortizes once the hot loops re-enter their
regions, and tiny-scale runs finish before that happens.

Usage::

    python scripts/bench_engine.py                 # full suite, small scale
    python scripts/bench_engine.py --quick         # CI smoke: 3 workloads, small
    python scripts/bench_engine.py --check         # exit 1 unless each tier beats
                                                   # the one below it (aggregate)
    python scripts/bench_engine.py -o out.json

See docs/performance.md for the engine design and current numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

QUICK_WORKLOADS = ("gzip_like", "perl_like", "mcf_like")


def _run_native(program, profile, engine: str, fuel: int):
    from repro.host.costs import HostModel, NativeCostObserver
    from repro.machine.interpreter import Interpreter

    model = HostModel(profile)
    interp = Interpreter(
        program, observer=NativeCostObserver(model), engine=engine
    )
    start = time.perf_counter()
    result = interp.run(fuel)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "retired": result.retired,
        "output": result.output,
        "exit_code": result.exit_code,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                result.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": model.total_cycles,
    }


def _run_sdt(program, profile, engine: str, fuel: int):
    from repro.sdt.config import SDTConfig
    from repro.sdt.vm import SDTVM

    config = SDTConfig(profile=profile, engine=engine)
    vm = SDTVM(program, config=config)
    start = time.perf_counter()
    result = vm.run(fuel)
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "retired": result.retired,
        "output": result.output,
        "exit_code": result.exit_code,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                result.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": result.total_cycles,
    }


def _assert_identical(workload: str, mode: str, per_engine: dict):
    oracle = per_engine["oracle"]
    for engine, stats in per_engine.items():
        if engine == "oracle":
            continue
        for field in ("output", "exit_code", "retired", "iclass_counts",
                      "cycles"):
            if oracle[field] != stats[field]:
                raise SystemExit(
                    f"ENGINE DIVERGENCE: {workload}/{mode} differs on "
                    f"{field}: oracle={oracle[field]!r} "
                    f"{engine}={stats[field]!r}"
                )


def bench(scale: str, names: list[str], profile_name: str, fuel: int) -> dict:
    from repro.host.profile import get_profile
    from repro.machine.engine import ENGINES
    from repro.workloads import get_workload

    profile = get_profile(profile_name)
    rows = []
    totals = {
        engine: {"retired": 0, "seconds": 0.0} for engine in ENGINES
    }
    for name in names:
        workload = get_workload(name, scale)
        program = workload.compile()  # compile outside the timed region
        row: dict = {"workload": name}
        for mode, runner in (("native", _run_native), ("sdt", _run_sdt)):
            per_engine = {
                engine: runner(program, profile, engine, fuel)
                for engine in ENGINES
            }
            _assert_identical(name, mode, per_engine)
            row[mode] = {
                engine: {
                    "seconds": round(stats["seconds"], 6),
                    "retired": stats["retired"],
                    "instrs_per_sec": round(
                        stats["retired"] / stats["seconds"]
                    ) if stats["seconds"] else None,
                }
                for engine, stats in per_engine.items()
            }
            for engine, stats in per_engine.items():
                totals[engine]["retired"] += stats["retired"]
                totals[engine]["seconds"] += stats["seconds"]
        rows.append(row)
        print(
            f"{name:16s} native thr {_speedup(row['native']):5.2f}x "
            f"t2 {_speedup(row['native'], 'tier2'):5.2f}x   "
            f"sdt thr {_speedup(row['sdt']):5.2f}x "
            f"t2 {_speedup(row['sdt'], 'tier2'):5.2f}x",
            flush=True,
        )

    for engine, agg in totals.items():
        agg["instrs_per_sec"] = (
            round(agg["retired"] / agg["seconds"]) if agg["seconds"] else None
        )
        agg["seconds"] = round(agg["seconds"], 6)
    def _ratio(num: str, den: str):
        hi = totals[num]["instrs_per_sec"]
        lo = totals[den]["instrs_per_sec"]
        return round(hi / lo, 3) if hi and lo else None

    speedups = {
        "threaded/oracle": _ratio("threaded", "oracle"),
        "tier2/oracle": _ratio("tier2", "oracle"),
        "tier2/threaded": _ratio("tier2", "threaded"),
    }
    return {
        "bench": "engine",
        "scale": scale,
        "profile": profile_name,
        "fuel": fuel,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workloads": rows,
        "totals": totals,
        # legacy key read by older perf-gate baselines
        "speedup": speedups["threaded/oracle"],
        "speedups": speedups,
    }


def _speedup(per_mode: dict, engine: str = "threaded") -> float:
    oracle = per_mode["oracle"]["instrs_per_sec"] or 0
    tier = per_mode[engine]["instrs_per_sec"] or 0
    return tier / oracle if oracle else 0.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "large"))
    parser.add_argument("--profile", default="x86_p4")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: workloads {', '.join(QUICK_WORKLOADS)} at small scale",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless threaded and tier2 both beat oracle",
    )
    parser.add_argument("-o", "--output",
                        default="results/ci/BENCH_engine.json",
                        metavar="FILE", help="JSON report path")
    args = parser.parse_args(argv)

    from repro.workloads import workload_names

    if args.quick:
        scale = "small"
        names = list(QUICK_WORKLOADS)
    else:
        scale = args.scale
        names = list(workload_names())

    from repro.eval.runner import DEFAULT_FUEL

    report = bench(scale, names, args.profile, DEFAULT_FUEL)
    totals = report["totals"]
    speedups = report["speedups"]
    print(
        f"\ntotal: oracle {totals['oracle']['instrs_per_sec']:,} i/s, "
        f"threaded {totals['threaded']['instrs_per_sec']:,} i/s, "
        f"tier2 {totals['tier2']['instrs_per_sec']:,} i/s "
        f"-> thr/oracle {speedups['threaded/oracle']:.2f}x, "
        f"t2/oracle {speedups['tier2/oracle']:.2f}x, "
        f"t2/thr {speedups['tier2/threaded']:.2f}x "
        f"({len(report['workloads'])} workloads, scale={scale})"
    )
    out_path = Path(args.output)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failed = False
        for key in ("threaded/oracle", "tier2/oracle"):
            ratio = speedups[key]
            if ratio is None or ratio <= 1.0:
                print(f"FAIL: {key} speedup is {ratio} (must exceed 1.0)",
                      file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
