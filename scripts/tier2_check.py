#!/usr/bin/env python3
"""CI differential for the tier-2 region JIT (``engine="tier2"``).

Runs every workload in the suite through all three execution engines
(oracle, threaded, tier2) in both harnesses (native interpreter and the
SDT VM) and asserts byte-identical architectural results *and* identical
cycle totals — clean and under the pinned ``chaos:1234`` fault plan.
The chaos variant exercises the deopt paths: superblock plans are
perturbed mid-run, so compiled regions must bail to the threaded tier
through their guards without drifting a single retired instruction.

A fuel-limited pass additionally forces the fuel guard: regions may
never retire past the budget, so a region whose next member exceeds the
remaining fuel must deoptimize (``deopt.fuel``) and let the threaded
tier hit the boundary exactly.

The aggregate bar (any miss fails CI):

* zero divergences across every workload x harness x variant cell,
* zero region compile errors (``stats.tier2["compile_error"]``),
* at least one promotion and at least one deopt observed overall —
  a silently cold tier-2 run would pass the differential vacuously.

Promotion is forced hot (``REPRO_TIER2_THRESHOLD=4``) so even tiny-scale
runs form and re-enter regions.  Writes ``results/ci/TIER2_report.json``
(uploaded as a CI artifact) and exits non-zero on any failure.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

CHAOS = "chaos:1234"
SCALE = "tiny"
ENGINES = ("oracle", "threaded", "tier2")
FIELDS = ("output", "exit_code", "retired", "iclass_counts", "cycles")
#: Promotion bar for the differential: hot enough that tiny runs JIT.
THRESHOLD = "4"
#: Fuel for the fuel-guard pass: mid-run, so regions see exhaustion.
SHORT_FUEL = 5000
REPORT_PATH = Path("results/ci/TIER2_report.json")


def _native(program, engine: str, fuel: int | None, faults: str | None):
    from repro.host.costs import HostModel, NativeCostObserver
    from repro.host.profile import SIMPLE
    from repro.machine.errors import FuelExhausted
    from repro.machine.interpreter import Interpreter

    if faults is not None:
        # chaos plans live in the SDT layer; the native harness only
        # runs the clean and fuel-limited variants
        raise AssertionError("native harness has no fault plans")
    model = HostModel(SIMPLE)
    interp = Interpreter(
        program, observer=NativeCostObserver(model), engine=engine
    )
    try:
        result = interp.run(fuel)
        output, exit_code = result.output, result.exit_code
    except FuelExhausted:
        output, exit_code = interp.syscalls.output, None
    return {
        "output": output,
        "exit_code": exit_code,
        "retired": interp.retired,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                interp.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": model.total_cycles,
        "tier2": {},
    }


def _sdt(program, engine: str, fuel: int | None, faults: str | None):
    from repro.host.profile import SIMPLE
    from repro.machine.errors import FuelExhausted
    from repro.sdt.config import SDTConfig
    from repro.sdt.vm import SDTVM

    config = SDTConfig(profile=SIMPLE, engine=engine, faults=faults)
    vm = SDTVM(program, config=config)
    try:
        result = vm.run(fuel)
        output, exit_code = result.output, result.exit_code
    except FuelExhausted:
        output, exit_code = vm.syscalls.output, None
    return {
        "output": output,
        "exit_code": exit_code,
        "retired": vm.retired,
        "iclass_counts": {
            ic.value: n for ic, n in sorted(
                vm.iclass_counts.items(), key=lambda kv: kv[0].value
            )
        },
        "cycles": vm.model.total_cycles,
        "tier2": dict(vm.stats.tier2),
    }


def _diff_cell(failures, report, name, harness, variant, runner, program,
               fuel, faults, tier2_totals) -> None:
    from repro.eval.runner import DEFAULT_FUEL

    per_engine = {
        engine: runner(program, engine, fuel or DEFAULT_FUEL, faults)
        for engine in ENGINES
    }
    cell = f"{name}/{harness}/{variant}"
    oracle = per_engine["oracle"]
    diverged = []
    for engine in ("threaded", "tier2"):
        for field in FIELDS:
            if per_engine[engine][field] != oracle[field]:
                diverged.append(f"{engine}.{field}")
                failures.append(
                    f"{cell}: {engine} diverged from oracle on {field}"
                )
    stats = per_engine["tier2"]["tier2"]
    for key, value in stats.items():
        tier2_totals[key] = tier2_totals.get(key, 0) + value
    report["cells"].append({
        "workload": name, "harness": harness, "variant": variant,
        "retired": oracle["retired"], "cycles": oracle["cycles"],
        "diverged": diverged, "tier2": stats,
    })


def main() -> int:
    os.environ["REPRO_TIER2_THRESHOLD"] = THRESHOLD
    from repro.workloads import get_workload, workload_names

    failures: list[str] = []
    tier2_totals: dict[str, int] = {}
    report: dict = {"scale": SCALE, "threshold": int(THRESHOLD),
                    "cells": []}

    for name in workload_names():
        program = get_workload(name, SCALE).compile()
        for harness, runner in (("native", _native), ("sdt", _sdt)):
            variants = [("clean", None, None), ("fuel", SHORT_FUEL, None)]
            if harness == "sdt":
                variants.append(("chaos", None, CHAOS))
            for variant, fuel, faults in variants:
                _diff_cell(failures, report, name, harness, variant,
                           runner, program, fuel, faults, tier2_totals)
        print(f"{name:16s} ok" if not failures else
              f"{name:16s} {len(failures)} failure(s) so far", flush=True)

    report["tier2_totals"] = tier2_totals
    deopts = sum(v for k, v in tier2_totals.items()
                 if k.startswith("deopt."))
    if tier2_totals.get("promote", 0) == 0:
        failures.append("tier2 never promoted a region (vacuous pass)")
    if deopts == 0:
        failures.append("tier2 never deoptimized (guards untested)")
    if tier2_totals.get("compile_error", 0):
        failures.append(
            f"{tier2_totals['compile_error']} region compile error(s)"
        )

    report["failures"] = failures
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{len(report['cells'])} differential cells, "
          f"{tier2_totals.get('promote', 0)} promotions, "
          f"{deopts} deopts, "
          f"{tier2_totals.get('compile_error', 0)} compile errors")
    print(f"report: {REPORT_PATH}")

    if failures:
        print("\nTIER2 CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("tier2 check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
