#!/usr/bin/env python3
"""CI guard for the fault-injection and resilience layer.

Re-asserts the robustness acceptance bar end-to-end (docs/robustness.md):

1. **Architectural identity** — every workload × {reentry, ibtc, sieve}
   at tiny scale produces byte-identical output / exit code / retired
   count under the pinned ``chaos:1234`` plan vs fault-free (only cycle
   counts may move).
2. **Coherence under pressure** — flush-heavy ``storm`` runs at 1 KiB
   fragment-cache capacity accumulate >= 100 forced flushes with the
   post-flush invariant checker reporting **zero** stale-pointer
   violations.
3. **E13 smoke** — the cache-pressure experiment regenerates at tiny
   scale and every chaos column shows at least the clean flush volume.
4. **Coherence scenarios** — the self-modifying workload suite
   (smc_loop / dyn_loader / mini_jit) stays byte-identical to the
   reference interpreter under every invalidation policy with chaos
   faults injected, and the invariant checker's per-flush *and*
   per-invalidation walks report **zero** stale-fragment violations.
5. **Serve daemon under chaos** — ``scripts/load_serve.py --quick
   --chaos`` drives the HTTP service with fault plans, worker kills and
   client disconnects: zero wrong results, and a tripped circuit
   breaker must recover through its half-open probe (docs/serve.md).
6. **Tier-2 regions under chaos** — the region JIT (forced hot) stays
   byte-identical to the oracle engine under ``chaos:1234`` with zero
   region compile errors, and the chaos plan perturbations actually
   exercise the deopt guards (> 0 deopts/discards observed).  The full
   three-engine differential lives in ``scripts/tier2_check.py``; this
   is the resilience slice of it.

Writes every invariant-checker report to ``results/ci/CHAOS_report.json``
(uploaded as a CI artifact) and exits non-zero on any failure.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

CHAOS = "chaos:1234"
STORM = "storm:1234"
SCALE = "tiny"
MECHANISMS = ("reentry", "ibtc", "sieve")
MIN_FLUSHES = 100
REPORT_PATH = Path("results/ci/CHAOS_report.json")


def run(name: str, mechanism: str, **kwargs):
    from repro.host.profile import SIMPLE
    from repro.sdt.config import SDTConfig
    from repro.sdt.vm import SDTVM
    from repro.workloads import get_workload

    config = SDTConfig(profile=SIMPLE, ib=mechanism, **kwargs)
    vm = SDTVM(get_workload(name, SCALE).compile(), config=config)
    return vm, vm.run()


def check_identity(failures: list[str], report: dict) -> None:
    from repro.workloads import workload_names

    cells = 0
    for mechanism in MECHANISMS:
        for name in workload_names():
            _, clean = run(name, mechanism, faults=None)
            vm, chaos = run(name, mechanism, faults=CHAOS)
            cells += 1
            for field in ("output", "exit_code", "retired"):
                if getattr(chaos, field) != getattr(clean, field):
                    failures.append(
                        f"{name}/{mechanism}: {field} diverged under "
                        f"{CHAOS}"
                    )
            checker = vm.invariant_checker
            record = checker.report() if checker else {}
            record.update(workload=name, mechanism=mechanism, plan=CHAOS)
            report["identity"].append(record)
            if record.get("violations"):
                failures.append(
                    f"{name}/{mechanism}: {len(record['violations'])} "
                    f"coherence violation(s) under {CHAOS}"
                )
    print(f"identity:  {cells} chaos cells architecturally identical "
          f"to clean" if not failures else
          f"identity:  {len(failures)} failure(s) so far", flush=True)


def check_storm(failures: list[str], report: dict) -> None:
    flushes = 0
    for mechanism in MECHANISMS:
        for name in ("gzip_like", "bzip2_like", "vortex_like", "perl_like"):
            _, clean = run(name, mechanism, faults=None,
                           fragment_cache_bytes=1024)
            vm, stormy = run(name, mechanism, faults=STORM,
                             fragment_cache_bytes=1024)
            if stormy.output != clean.output or \
                    stormy.retired != clean.retired:
                failures.append(
                    f"{name}/{mechanism}: results diverged under {STORM}"
                )
            checker = vm.invariant_checker
            record = checker.report()
            record.update(workload=name, mechanism=mechanism, plan=STORM)
            report["storm"].append(record)
            flushes += record["flushes_checked"]
            if record["violations"]:
                failures.append(
                    f"{name}/{mechanism}: {len(record['violations'])} "
                    f"coherence violation(s) under {STORM}"
                )
    report["storm_flushes_checked"] = flushes
    if flushes < MIN_FLUSHES:
        failures.append(
            f"storm runs forced only {flushes} checked flushes "
            f"(need >= {MIN_FLUSHES})"
        )
    print(f"storm:     {flushes} flushes checked, "
          f"0 violations required", flush=True)


def check_e13(failures: list[str], report: dict) -> None:
    import tempfile

    from repro.eval.parallel import run_experiments

    workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-e13-"))
    tables, exec_report = run_experiments(["e13"], scale=SCALE,
                                          results_dir=workdir)
    if not exec_report.ok:
        failures.append(
            f"e13 executor quarantined {len(exec_report.failures)} cell(s)"
        )
        return
    headers, rows = tables["e13"]
    clean_fl = headers.index("fl")
    chaos_fl = headers.index("fl*")
    for row in rows:
        if row[chaos_fl] < row[clean_fl]:
            failures.append(f"e13 row {row[0]}: chaos flush volume "
                            f"below clean")
    report["e13_rows"] = len(rows)
    print(f"e13 smoke: {len(rows)} rows regenerated at {SCALE} scale",
          flush=True)


def check_coherence(failures: list[str], report: dict) -> None:
    """Self-modifying scenarios under chaos: parity + zero stale frags."""
    from repro.machine.interpreter import run_program
    from repro.sdt.config import COHERENCE_POLICIES, SDTConfig
    from repro.sdt.vm import SDTVM
    from repro.workloads import coherence_suite

    cells = 0
    invalidation_checks = 0
    for workload in coherence_suite(SCALE):
        program = workload.compile()
        reference = run_program(program)
        for mechanism in MECHANISMS:
            for policy in COHERENCE_POLICIES:
                if policy == "none":
                    continue  # would execute stale fragments by design
                config = SDTConfig(
                    ib=mechanism, coherence=policy, faults=CHAOS,
                    fragment_cache_bytes=2048,
                )
                vm = SDTVM(program, config=config)
                result = vm.run()
                cells += 1
                if (
                    result.output != reference.output
                    or result.exit_code != reference.exit_code
                    or result.retired != reference.retired
                ):
                    failures.append(
                        f"{workload.name}/{mechanism}/coh={policy}: "
                        f"diverged from the reference interpreter "
                        f"under {CHAOS}"
                    )
                checker = vm.invariant_checker
                record = checker.report()
                record.update(workload=workload.name, mechanism=mechanism,
                              coherence=policy, plan=CHAOS)
                report["coherence"].append(record)
                invalidation_checks += record["invalidations_checked"]
                if record["violations"]:
                    failures.append(
                        f"{workload.name}/{mechanism}/coh={policy}: "
                        f"{len(record['violations'])} stale-fragment "
                        f"violation(s) under {CHAOS}"
                    )
    report["coherence_invalidations_checked"] = invalidation_checks
    if invalidation_checks == 0:
        failures.append(
            "coherence runs exercised zero selective-invalidation checks"
        )
    print(f"coherence: {cells} scenario cells, {invalidation_checks} "
          f"invalidations checked, 0 violations required", flush=True)


def check_serve(failures: list[str], report: dict) -> None:
    """The serve daemon's chaos bar, via its own load generator."""
    import os
    import subprocess

    script = Path(__file__).parent / "load_serve.py"
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)    # the load script sets its own plan
    result = subprocess.run(
        [sys.executable, str(script), "--quick", "--chaos"],
        capture_output=True, text=True, env=env, timeout=900,
    )
    bench_path = Path("results/ci/BENCH_serve.json")
    bench = {}
    if bench_path.exists():
        bench = json.loads(bench_path.read_text())
    report["serve"] = bench
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-6:]
        failures.append("serve chaos load failed: " + " | ".join(tail))
        return
    if bench.get("wrong_results", 1) != 0:
        failures.append(
            f"serve returned {bench['wrong_results']} wrong result(s)"
        )
    if not bench.get("breaker", {}).get("recovered"):
        failures.append("serve circuit breaker did not recover")
    print(f"serve:     {bench['statuses'].get('200', 0)} ok responses, "
          f"{bench['chaos']['worker_kills']} worker kills, "
          f"0 wrong results required", flush=True)


def check_tier2(failures: list[str], report: dict) -> None:
    """Region JIT under chaos: oracle parity + live deopt guards."""
    import os

    from repro.workloads import workload_names

    os.environ["REPRO_TIER2_THRESHOLD"] = "4"  # force promotions at tiny
    try:
        totals: dict[str, int] = {}
        for name in workload_names():
            # same chaos plan on both sides: the tier must be invisible
            # even in the cycle ledger, not just architecturally
            _, oracle = run(name, "ibtc", faults=CHAOS, engine="oracle")
            vm, tiered = run(name, "ibtc", faults=CHAOS, engine="tier2")
            for field in ("output", "exit_code", "retired"):
                if getattr(tiered, field) != getattr(oracle, field):
                    failures.append(
                        f"{name}/tier2: {field} diverged from oracle "
                        f"under {CHAOS}"
                    )
            if tiered.total_cycles != oracle.total_cycles:
                failures.append(
                    f"{name}/tier2: cycle total diverged from oracle "
                    f"under {CHAOS}"
                )
            for key, value in vm.stats.tier2.items():
                totals[key] = totals.get(key, 0) + value
    finally:
        del os.environ["REPRO_TIER2_THRESHOLD"]
    report["tier2"] = totals
    exercised = sum(
        value for key, value in totals.items()
        if key.startswith(("deopt.", "discard."))
    )
    if totals.get("promote", 0) == 0:
        failures.append("tier2 chaos runs never promoted a region")
    if exercised == 0:
        failures.append("tier2 chaos runs never hit a deopt/discard guard")
    if totals.get("compile_error", 0):
        failures.append(
            f"tier2 chaos runs hit {totals['compile_error']} region "
            f"compile error(s)"
        )
    print(f"tier2:     {totals.get('promote', 0)} promotions, "
          f"{exercised} deopts/discards, 0 divergences required",
          flush=True)


def main() -> int:
    failures: list[str] = []
    report: dict = {"identity": [], "storm": [], "coherence": []}

    check_identity(failures, report)
    check_storm(failures, report)
    check_e13(failures, report)
    check_coherence(failures, report)
    check_serve(failures, report)
    check_tier2(failures, report)

    report["failures"] = failures
    REPORT_PATH.parent.mkdir(parents=True, exist_ok=True)
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    records = (
        len(report["identity"]) + len(report["storm"])
        + len(report["coherence"])
    )
    print(f"report:    {REPORT_PATH} ({records} run records)", flush=True)

    if failures:
        print("\nCHAOS CHECK FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("chaos check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
