"""Instruction encode/decode, including a property-based roundtrip."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import DecodeError, EncodeError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Fmt, InstrClass, OP_TABLE, Op, spec


class TestEncodeBasics:
    def test_add(self):
        instr = Instruction(Op.ADD, rd=3, rs=1, rt=2)
        word = encode(instr)
        assert decode(word) == instr

    def test_nop_is_zero_word(self):
        assert encode(Instruction(Op.SLL, rd=0, rt=0, shamt=0)) == 0

    def test_addi_negative_imm(self):
        instr = Instruction(Op.ADDI, rt=5, rs=29, imm=-8)
        assert decode(encode(instr)) == instr

    def test_lui_zero_extended(self):
        instr = Instruction(Op.LUI, rt=4, imm=0xFFFF)
        assert decode(encode(instr)) == instr

    def test_jump_target(self):
        instr = Instruction(Op.J, imm=0x123456)
        assert decode(encode(instr)) == instr

    def test_ret_has_no_operands(self):
        assert decode(encode(Instruction(Op.RET))) == Instruction(Op.RET)


class TestEncodeErrors:
    def test_register_out_of_range(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.ADD, rd=32, rs=0, rt=0))

    def test_signed_imm_overflow(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.ADDI, rt=1, rs=1, imm=0x8000))

    def test_signed_imm_underflow(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.ADDI, rt=1, rs=1, imm=-0x8001))

    def test_unsigned_imm_rejects_negative(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.ORI, rt=1, rs=1, imm=-1))

    def test_jump_target_overflow(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.J, imm=1 << 26))

    def test_shamt_out_of_range(self):
        with pytest.raises(EncodeError):
            encode(Instruction(Op.SLL, rd=1, rt=1, shamt=32))


class TestDecodeErrors:
    def test_unknown_funct(self):
        with pytest.raises(DecodeError):
            decode(0x0000003F)  # opcode 0, funct 63 unused

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode(0xFC000000)  # opcode 63 unused

    def test_word_out_of_range(self):
        with pytest.raises(DecodeError):
            decode(1 << 32)
        with pytest.raises(DecodeError):
            decode(-1)


class TestOpcodeTable:
    def test_all_ops_have_specs(self):
        assert set(OP_TABLE) == set(Op)

    def test_mnemonics_unique(self):
        mnemonics = [s.mnemonic for s in OP_TABLE.values()]
        assert len(mnemonics) == len(set(mnemonics))

    def test_field_encodings_unique(self):
        keys = set()
        for s in OP_TABLE.values():
            key = (s.opcode, s.funct if s.opcode == 0 else None)
            assert key not in keys, key
            keys.add(key)

    def test_indirect_classification(self):
        assert spec(Op.JR).iclass is InstrClass.IJUMP
        assert spec(Op.JALR).iclass is InstrClass.ICALL
        assert spec(Op.RET).iclass is InstrClass.RET
        assert Instruction(Op.JR, rs=1).is_indirect
        assert not Instruction(Op.J, imm=0).is_indirect

    def test_control_classification(self):
        assert Instruction(Op.BEQ).is_control
        assert Instruction(Op.HALT).is_control
        assert not Instruction(Op.ADD).is_control
        assert not Instruction(Op.SYSCALL).is_control


# -- property-based roundtrip ------------------------------------------------

_reg = st.integers(0, 31)
_shamt = st.integers(0, 31)
_simm = st.integers(-0x8000, 0x7FFF)
_uimm = st.integers(0, 0xFFFF)
_jimm = st.integers(0, (1 << 26) - 1)


def _instr_strategy():
    def build(op):
        fmt = spec(op).fmt
        if fmt == Fmt.R3:
            return st.builds(lambda a, b, c: Instruction(op, rd=a, rs=b, rt=c),
                             _reg, _reg, _reg)
        if fmt == Fmt.SHIFT:
            return st.builds(lambda a, b, s: Instruction(op, rd=a, rt=b, shamt=s),
                             _reg, _reg, _shamt)
        if fmt == Fmt.JR:
            return st.builds(lambda a: Instruction(op, rs=a), _reg)
        if fmt == Fmt.JALR:
            return st.builds(lambda a, b: Instruction(op, rd=a, rs=b), _reg, _reg)
        if fmt == Fmt.NONE:
            return st.just(Instruction(op))
        if fmt == Fmt.J:
            return st.builds(lambda i: Instruction(op, imm=i), _jimm)
        if fmt == Fmt.LUI:
            return st.builds(lambda a, i: Instruction(op, rt=a, imm=i),
                             _reg, _uimm)
        imm = _uimm if spec(op).zero_ext_imm else _simm
        return st.builds(lambda a, b, i: Instruction(op, rt=a, rs=b, imm=i),
                         _reg, _reg, imm)

    return st.sampled_from(list(Op)).flatmap(build)


@given(_instr_strategy())
def test_roundtrip_property(instr):
    """decode(encode(i)) == i for every encodable instruction."""
    assert decode(encode(instr)) == instr


@given(st.integers(0, 0xFFFFFFFF))
def test_decode_total_or_error(word):
    """decode either returns an Instruction or raises DecodeError."""
    try:
        instr = decode(word)
    except DecodeError:
        return
    assert isinstance(instr, Instruction)
    # re-encoding a decoded word reproduces the canonical field bits
    assert decode(encode(instr)) == instr
