"""Parallel executor: dedup, determinism, cache integration."""

import pytest

import repro.eval.experiments as experiments
from repro.eval.cells import measure_cell
from repro.eval.diskcache import DiskCache
from repro.eval.parallel import (
    dedup_cells,
    execute_cells,
    plan_cells,
    run_experiments,
)
from repro.eval.runner import clear_caches
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig

#: disk/memo-cache assertions need clean-spec (uncacheable-free) cells
pytestmark = pytest.mark.usefixtures("no_faults")

#: three-workload suite: enough to exercise the E6 grid, cheap enough for CI
SUBSET = ["eon_like", "gzip_like", "mcf_like"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture
def small_suite(monkeypatch):
    monkeypatch.setattr(experiments, "_suite_names", lambda: list(SUBSET))


class TestDedup:
    def test_duplicate_cells_collapse(self):
        config = SDTConfig(profile=SIMPLE)
        cells = [
            measure_cell("gzip_like", "tiny", config),
            measure_cell("gzip_like", "tiny", SDTConfig(profile=SIMPLE)),
            measure_cell("mcf_like", "tiny", config),
        ]
        assert len(dedup_cells(cells)) == 2

    def test_e9_rides_entirely_on_e3(self):
        """E9 re-reads the E3 grid: together they dispatch E3's cells only."""
        per_experiment, unique = plan_cells(["e3", "e9"], "tiny")
        assert len(per_experiment["e3"]) == len(per_experiment["e9"])
        assert len(unique) == len(dedup_cells(per_experiment["e3"]))

    def test_e6_e7_share_their_common_column(self):
        """E6's ibtc/ibtc+fastret cells are E7's ret=same/ret=fast cells."""
        per_experiment, unique = plan_cells(["e6", "e7"], "tiny")
        total = sum(len(cells) for cells in per_experiment.values())
        n_workloads = len(experiments._suite_names())
        assert total - len(unique) == 2 * n_workloads

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="e99"):
            plan_cells(["e99"], "tiny")


class TestExecute:
    def test_results_cover_every_requested_cell(self):
        cells = [
            measure_cell("gzip_like", "tiny", SDTConfig(profile=SIMPLE)),
            measure_cell("gzip_like", "tiny",
                         SDTConfig(profile=SIMPLE, ib="sieve")),
        ]
        results, report = execute_cells(cells)
        assert set(results) == {cell.key() for cell in cells}
        assert report.requested == report.unique == report.computed == 2
        assert report.cache_hits == 0

    def test_progress_events_fire_per_unique_cell(self):
        events = []
        cells = [
            measure_cell("gzip_like", "tiny", SDTConfig(profile=SIMPLE)),
            measure_cell("gzip_like", "tiny", SDTConfig(profile=SIMPLE)),
        ]
        execute_cells(cells, progress=events.append)
        assert len(events) == 1
        assert events[0].source == "run"
        assert events[0].index == events[0].total == 1

    def test_second_pass_served_from_disk_cache(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cells = [measure_cell("gzip_like", "tiny", SDTConfig(profile=SIMPLE))]
        _results, first = execute_cells(cells, cache=cache)
        assert first.computed == 1
        clear_caches()
        results, second = execute_cells(cells, cache=cache)
        assert second.cache_hits == 1 and second.computed == 0
        assert second.hit_rate == 1.0
        assert results[cells[0].key()].overhead > 1.0


class TestParallelSerialEquivalence:
    def test_e6_csv_bytes_identical_serial_vs_parallel(
        self, small_suite, tmp_path
    ):
        """The acceptance check: worker count must not change one byte."""
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_experiments(["e6"], scale="tiny", jobs=1,
                        results_dir=serial_dir)
        clear_caches()
        _tables, report = run_experiments(["e6"], scale="tiny", jobs=2,
                                          results_dir=parallel_dir)
        assert report.computed == report.unique  # nothing cached, all ran
        name = "e6_mechanism_comparison.csv"
        assert (serial_dir / name).read_bytes() == \
            (parallel_dir / name).read_bytes()

    def test_parallel_rerun_hits_cache_and_matches(
        self, small_suite, tmp_path
    ):
        cache = DiskCache(tmp_path / "cache")
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        _tables, first = run_experiments(["e6"], scale="tiny", jobs=2,
                                         cache=cache, results_dir=first_dir)
        clear_caches()
        _tables, second = run_experiments(["e6"], scale="tiny", jobs=2,
                                          cache=cache, results_dir=second_dir)
        assert second.hit_rate >= 0.9
        name = "e6_mechanism_comparison.csv"
        assert (first_dir / name).read_bytes() == \
            (second_dir / name).read_bytes()
