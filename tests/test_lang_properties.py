"""Property-based differential testing of the MiniC pipeline.

Random expression trees are rendered to MiniC, compiled, assembled and
interpreted; the result must match a Python model of C-on-SR32 semantics
(32-bit wrap, truncating division, arithmetic/logical shifts).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from conftest import run_minic

U32 = 0xFFFFFFFF


def wrap(value: int) -> int:
    value &= U32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def c_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return wrap(-q if (a < 0) != (b < 0) else q)


def c_rem(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return wrap(-r if a < 0 else r)


# -- expression model ---------------------------------------------------------
# nodes: ("lit", v) | ("var", name) | ("un", op, e) | ("bin", op, l, r)

_VARS = {"va": 7, "vb": -3, "vc": 100000, "vd": 0, "ve": -123456}


def render(node) -> str:
    kind = node[0]
    if kind == "lit":
        return str(node[1])
    if kind == "var":
        return node[1]
    if kind == "un":
        # space avoids lexing "- -1" as the "--" token
        return f"({node[1]} {render(node[2])})"
    _, op, left, right = node
    return f"({render(left)} {op} {render(right)})"


def evaluate(node) -> int:
    kind = node[0]
    if kind == "lit":
        return node[1]
    if kind == "var":
        return _VARS[node[1]]
    if kind == "un":
        op, value = node[1], evaluate(node[2])
        if op == "-":
            return wrap(-value)
        if op == "~":
            return wrap(~value)
        return int(value == 0)  # !
    _, op, lnode, rnode = node
    left, right = evaluate(lnode), evaluate(rnode)
    if op == "+":
        return wrap(left + right)
    if op == "-":
        return wrap(left - right)
    if op == "*":
        return wrap(left * right)
    if op == "/":
        return c_div(left, right)
    if op == "%":
        return c_rem(left, right)
    if op == "&":
        return wrap(left & right)
    if op == "|":
        return wrap(left | right)
    if op == "^":
        return wrap(left ^ right)
    if op == "<<":
        return wrap((left & U32) << (right & 31))
    if op == ">>":
        return wrap(left >> (right & 31))  # arithmetic on signed
    if op == ">>>":
        return wrap((left & U32) >> (right & 31))
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise AssertionError(op)


_lit = st.integers(-100000, 100000).map(lambda v: ("lit", v))
_var = st.sampled_from(sorted(_VARS)).map(lambda n: ("var", n))
_shift_amount = st.integers(0, 31).map(lambda v: ("lit", v))
_nonzero_lit = st.integers(-1000, 1000).filter(bool).map(lambda v: ("lit", v))

_ARITH_OPS = ["+", "-", "*", "&", "|", "^",
              "<", "<=", ">", ">=", "==", "!=", "&&", "||"]


def _exprs(children):
    arith = st.tuples(
        st.just("bin"), st.sampled_from(_ARITH_OPS), children, children
    )
    shift = st.tuples(
        st.just("bin"), st.sampled_from(["<<", ">>", ">>>"]),
        children, _shift_amount,
    )
    divide = st.tuples(
        st.just("bin"), st.sampled_from(["/", "%"]), children, _nonzero_lit
    )
    unary = st.tuples(st.just("un"), st.sampled_from(["-", "~", "!"]), children)
    return st.one_of(arith, shift, divide, unary)


expr_strategy = st.recursive(
    st.one_of(_lit, _var), _exprs, max_leaves=12
)


def _program(expressions: list) -> str:
    decls = "".join(f"int {name} = {value};" for name, value in _VARS.items())
    prints = "".join(
        f"print_int({render(e)}); print_char(10);" for e in expressions
    )
    return decls + "int main() {" + prints + "return 0; }"


@settings(max_examples=60, deadline=None)
@given(st.lists(expr_strategy, min_size=1, max_size=4))
def test_expression_semantics_match_c_model(expressions):
    """Compiled MiniC evaluates every expression exactly like the model."""
    expected = "".join(f"{evaluate(e)}\n" for e in expressions)
    assert run_minic(_program(expressions)).output == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=12),
)
def test_compiled_sort_matches_python(values):
    """A MiniC insertion sort agrees with Python's sorted()."""
    n = len(values)
    stores = "".join(f"a[{i}] = {v};" for i, v in enumerate(values))
    source = f"""
    int a[{n}];
    int main() {{
        {stores}
        int i;
        for (i = 1; i < {n}; i++) {{
            int key = a[i];
            int j = i - 1;
            while (j >= 0 && a[j] > key) {{
                a[j + 1] = a[j];
                j--;
            }}
            a[j + 1] = key;
        }}
        for (i = 0; i < {n}; i++) {{ print_int(a[i]); print_char(' '); }}
        return 0;
    }}
    """
    expected = "".join(f"{v} " for v in sorted(values))
    assert run_minic(source).output == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 50), st.integers(1, 20))
def test_compiled_loop_arithmetic(iterations, step):
    """Accumulation loop matches closed-form arithmetic."""
    source = f"""
    int main() {{
        int total = 0;
        int i;
        for (i = 0; i < {iterations}; i++) total += i * {step};
        print_int(total);
        return 0;
    }}
    """
    expected = sum(i * step for i in range(iterations))
    assert run_minic(source).output == str(wrap(expected))
