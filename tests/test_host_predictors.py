"""Host branch-prediction structures."""

import pytest
from hypothesis import given, strategies as st

from repro.host.predictors import (
    BimodalPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
)


class TestBimodal:
    def test_warms_up_to_taken(self):
        predictor = BimodalPredictor(16)
        # initialised weakly-not-taken: first taken access mispredicts,
        # the counter saturates and later accesses hit
        assert predictor.access(0x100, True) is True
        assert predictor.access(0x100, True) is False
        assert predictor.access(0x100, True) is False

    def test_stable_not_taken_predicts_well(self):
        predictor = BimodalPredictor(16)
        results = [predictor.access(0x200, False) for _ in range(10)]
        assert not any(results)

    def test_hysteresis_survives_single_flip(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.access(0x300, True)
        predictor.access(0x300, False)          # one anomaly
        assert predictor.access(0x300, True) is False  # still predicts taken

    def test_aliasing_between_sites(self):
        predictor = BimodalPredictor(4)
        # pcs 0 and 16 map to the same entry with 4 entries (word-indexed)
        for _ in range(3):
            predictor.access(0, True)
        assert predictor.access(16, False) is True  # trained by alias

    def test_counters_tracked(self):
        predictor = BimodalPredictor(16)
        predictor.access(0, True)
        predictor.access(0, True)
        assert predictor.hits + predictor.misses == 2

    @pytest.mark.parametrize("bad", [0, 3, -4])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            BimodalPredictor(bad)


class TestBTB:
    def test_cold_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.access(0x100, 0x4000) is True   # cold
        assert btb.access(0x100, 0x4000) is False  # repeat target
        assert btb.access(0x100, 0x8000) is True   # target changed

    def test_polymorphic_site_always_misses(self):
        btb = BranchTargetBuffer(64)
        btb.access(0x100, 0)
        misses = sum(
            btb.access(0x100, 0x1000 * (i % 2 + 1)) for i in range(10)
        )
        assert misses == 10  # alternating targets never predict

    def test_conflict_eviction(self):
        btb = BranchTargetBuffer(4)
        btb.access(0x0, 0xA)
        btb.access(0x10, 0xB)  # same index (16 bytes / 4 entries), evicts
        assert btb.access(0x0, 0xA) is True

    def test_distinct_sites_do_not_interfere(self):
        btb = BranchTargetBuffer(64)
        btb.access(0x100, 0xA)
        btb.access(0x104, 0xB)
        assert btb.access(0x100, 0xA) is False
        assert btb.access(0x104, 0xB) is False

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(3)


class TestRAS:
    def test_balanced_calls_predict_perfectly(self):
        ras = ReturnAddressStack(8)
        addresses = [0x100, 0x200, 0x300]
        for addr in addresses:
            ras.push(addr)
        for addr in reversed(addresses):
            assert ras.pop(addr) is False
        assert ras.misses == 0

    def test_underflow_mispredicts(self):
        ras = ReturnAddressStack(8)
        assert ras.pop(0x100) is True

    def test_wrong_target_mispredicts(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        assert ras.pop(0x999) is True

    def test_overflow_wraps_and_loses_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)  # overwrites 0x1
        assert ras.pop(0x3) is False
        assert ras.pop(0x2) is False
        assert ras.pop(0x1) is True  # lost to wrap

    def test_flush_empties(self):
        ras = ReturnAddressStack(8)
        ras.push(0x1)
        ras.flush()
        assert ras.pop(0x1) is True

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=16))
def test_ras_lifo_property(addresses):
    """Any push sequence within capacity pops back perfectly (LIFO)."""
    ras = ReturnAddressStack(16)
    for addr in addresses:
        ras.push(addr)
    for addr in reversed(addresses):
        assert ras.pop(addr) is False


@given(
    st.lists(
        st.tuples(st.integers(0, 255).map(lambda x: x * 4),
                  st.booleans()),
        max_size=200,
    )
)
def test_bimodal_counts_consistent_property(accesses):
    """hits + misses always equals the number of accesses."""
    predictor = BimodalPredictor(64)
    for pc, taken in accesses:
        predictor.access(pc, taken)
    assert predictor.hits + predictor.misses == len(accesses)
