"""NET-style trace formation (translating through unconditional jumps)."""

import pytest

from conftest import ALL_IB_KINDS_SOURCE, assert_equivalent, run_minic_sdt
from repro.host.costs import HostModel
from repro.host.profile import SIMPLE
from repro.isa.assembler import assemble
from repro.isa.opcodes import Op
from repro.sdt.cache import FragmentCache
from repro.sdt.config import SDTConfig
from repro.sdt.fragment import ExitKind
from repro.sdt.translator import Translator


def make_translator(source: str, trace_jumps: bool = True, limit: int = 128):
    program = assemble(source)
    translator = Translator(
        program, FragmentCache(), HostModel(SIMPLE),
        max_fragment_instrs=limit, trace_jumps=trace_jumps,
    )
    return translator, program


class TestTraceShape:
    SOURCE = (
        ".text\nmain:\nnop\nj next\nmid:\nnop\nret\n"
        "next:\nnop\nnop\nj mid\n"
    )

    def test_trace_inlines_jump_successors(self):
        translator, program = make_translator(self.SOURCE)
        frag = translator.translate(program.entry)
        # main(2) + next(3) + mid(2): the two j's stay in the stream
        assert len(frag.instrs) == 7
        assert frag.exit_kind is ExitKind.RET
        # the elided jumps are still present (retired counts must match)
        assert sum(1 for _, i in frag.instrs if i.op is Op.J) == 2

    def test_without_tracing_blocks_stay_small(self):
        translator, program = make_translator(self.SOURCE, trace_jumps=False)
        frag = translator.translate(program.entry)
        assert len(frag.instrs) == 2
        assert frag.exit_kind is ExitKind.JUMP

    def test_trace_stops_at_existing_fragment(self):
        translator, program = make_translator(self.SOURCE)
        translator.translate(program.symbols["next"])  # pre-translate
        frag = translator.translate(program.entry)
        # cannot inline `next` (already in cache): ends at the jump
        assert frag.exit_kind is ExitKind.JUMP
        assert len(frag.instrs) == 2

    def test_self_loop_terminates(self):
        translator, program = make_translator(
            ".text\nmain:\nloop:\nj loop\n", limit=16
        )
        frag = translator.translate(program.entry)
        assert frag.exit_kind is ExitKind.JUMP
        assert len(frag.instrs) == 1

    def test_jump_cycle_terminates(self):
        translator, program = make_translator(
            ".text\nmain:\nj b\nb:\nnop\nj main\n", limit=64
        )
        frag = translator.translate(program.entry)
        # main -> b inlined; b's jump back to main is not re-inlined
        # (target == trace head)
        assert frag.exit_kind is ExitKind.JUMP
        assert len(frag.instrs) == 3

    def test_length_limit_respected(self):
        translator, program = make_translator(self.SOURCE, limit=3)
        frag = translator.translate(program.entry)
        assert len(frag.instrs) <= 3

    def test_calls_are_not_traced_through(self):
        translator, program = make_translator(
            ".text\nmain:\njal f\nret\nf:\nret\n"
        )
        frag = translator.translate(program.entry)
        assert frag.exit_kind is ExitKind.CALL
        assert len(frag.instrs) == 1


class TestTraceExecution:
    @pytest.mark.parametrize("returns", ["same", "fast"])
    def test_equivalence(self, returns):
        config = SDTConfig(profile=SIMPLE, trace_jumps=True, returns=returns)
        assert_equivalent(ALL_IB_KINDS_SOURCE, config)

    def test_fewer_fragments_and_links(self):
        traced = run_minic_sdt(
            ALL_IB_KINDS_SOURCE, SDTConfig(profile=SIMPLE, trace_jumps=True)
        )
        blocks = run_minic_sdt(
            ALL_IB_KINDS_SOURCE, SDTConfig(profile=SIMPLE, trace_jumps=False)
        )
        assert traced.stats.fragments_translated < \
            blocks.stats.fragments_translated
        assert traced.stats.links_patched < blocks.stats.links_patched
        assert traced.retired == blocks.retired

    def test_label(self):
        assert "trace" in SDTConfig(trace_jumps=True).label
        assert "trace" not in SDTConfig().label
