"""Hardened executor: retry, quarantine, crash/timeout recovery, degraded
experiment reports, and the CLI's non-zero exit on partial results.

The fake cells below are module-level so worker processes can unpickle
them; ``crash`` kills the worker with ``os._exit`` (a real segfault
stand-in that ``ProcessPoolExecutor`` surfaces as ``BrokenProcessPool``)
and ``sleep`` simulates a hang for the watchdog to kill.
"""

import os
import time

import pytest

from repro.eval.experiments import ExperimentSpec
from repro.eval.parallel import (
    CellFailure,
    MissingCellResult,
    _stable_error,
    execute_cells,
    run_experiments,
)

pytestmark = pytest.mark.usefixtures("no_faults")


class FakeCell:
    """Picklable stand-in for a measurement cell."""

    cacheable = True

    def __init__(self, name, mode="ok", secs=0.0):
        self.name = name
        self.mode = mode
        self.secs = secs

    @property
    def label(self):
        return f"fake:{self.name}"

    def key(self):
        return f"key-{self.name}"

    def execute(self):
        if self.secs:
            time.sleep(self.secs)
        if self.mode == "error":
            raise ValueError(f"boom {self.name}")
        if self.mode == "crash":
            os._exit(17)
        return f"result-{self.name}"


class UncacheableCell(FakeCell):
    cacheable = False


class FakeCache:
    """Duck-typed DiskCache recording every get/put."""

    def __init__(self):
        self.store = {}
        self.gets = []
        self.puts = []

    def get(self, cell):
        self.gets.append(cell.key())
        return self.store.get(cell.key())

    def put(self, cell, result):
        self.puts.append(cell.key())
        self.store[cell.key()] = result


class TestSerialExecution:
    def test_all_ok(self):
        cells = [FakeCell("a"), FakeCell("b"), FakeCell("a")]
        results, report = execute_cells(cells)
        assert results == {"key-a": "result-a", "key-b": "result-b"}
        assert (report.requested, report.unique) == (3, 2)
        assert report.ok and report.failures == {}

    def test_error_cell_retried_then_quarantined(self):
        cells = [FakeCell("ok"), FakeCell("bad", mode="error")]
        results, report = execute_cells(cells, retries=2, backoff=0.0)
        assert results == {"key-ok": "result-ok"}     # innocents complete
        assert report.retries == 2
        failure = report.failures["key-bad"]
        assert failure == CellFailure(
            key="key-bad", label="fake:bad", kind="error",
            attempts=3, error="ValueError: boom bad",
        )
        assert not report.ok

    def test_zero_retries_means_one_attempt(self):
        _, report = execute_cells([FakeCell("bad", mode="error")],
                                  retries=0, backoff=0.0)
        assert report.failures["key-bad"].attempts == 1
        assert report.retries == 0

    def test_failures_in_declared_cell_order(self):
        cells = [FakeCell("ok"), FakeCell("c", mode="error"),
                 FakeCell("a", mode="error"), FakeCell("b", mode="error")]
        _, report = execute_cells(cells, retries=0, backoff=0.0)
        assert list(report.failures) == ["key-c", "key-a", "key-b"]

    def test_failed_cells_emit_progress_events(self):
        events = []
        cells = [FakeCell("ok"), FakeCell("bad", mode="error")]
        execute_cells(cells, progress=events.append,
                      retries=0, backoff=0.0)
        assert len(events) == 2
        by_label = {event.label: event.source for event in events}
        assert by_label == {"fake:ok": "run", "fake:bad": "failed"}
        assert {event.index for event in events} == {1, 2}


class TestPooledExecution:
    def test_parallel_ok(self):
        cells = [FakeCell(str(i)) for i in range(5)]
        results, report = execute_cells(cells, jobs=2)
        assert len(results) == 5
        assert report.ok

    def test_crashed_worker_recovered_and_quarantined(self):
        # the crasher sleeps before dying so the instant innocents are
        # always harvested first (a crash round blames every cell still
        # in flight, so a racing innocent could otherwise be charged)
        cells = [FakeCell("a"), FakeCell("b"),
                 FakeCell("die", mode="crash", secs=0.5)]
        results, report = execute_cells(cells, jobs=2,
                                        retries=1, backoff=0.01)
        # innocents survive the broken pool; the crasher is quarantined
        assert results["key-a"] == "result-a"
        assert results["key-b"] == "result-b"
        failure = report.failures["key-die"]
        assert failure.kind == "crash"
        assert failure.attempts == 2

    def test_hung_cell_killed_by_watchdog(self):
        cells = [FakeCell("fast"), FakeCell("hang", secs=60.0)]
        start = time.monotonic()
        results, report = execute_cells(cells, jobs=2, timeout=2.0,
                                        retries=0, backoff=0.0)
        wall = time.monotonic() - start
        assert wall < 30.0, f"watchdog did not bound wall time ({wall:.1f}s)"
        assert results == {"key-fast": "result-fast"}
        failure = report.failures["key-hang"]
        assert failure.kind == "timeout"
        assert "2s" in failure.error

    def test_timeout_forces_pool_even_for_one_job(self):
        # a hung cell can only be killed from outside its process, so
        # jobs=1 with a timeout must still run in a worker
        results, report = execute_cells(
            [FakeCell("hang", secs=60.0)], jobs=1, timeout=1.0,
            retries=0, backoff=0.0,
        )
        assert results == {}
        assert report.failures["key-hang"].kind == "timeout"


class TestCaching:
    def test_cache_hit_skips_execution(self):
        cache = FakeCache()
        cache.store["key-a"] = "cached-a"
        results, report = execute_cells([FakeCell("a")], cache=cache)
        assert results == {"key-a": "cached-a"}
        assert (report.cache_hits, report.computed) == (1, 0)

    def test_miss_populates_cache(self):
        cache = FakeCache()
        execute_cells([FakeCell("a")], cache=cache)
        assert cache.store["key-a"] == "result-a"

    def test_uncacheable_cell_bypasses_cache_both_ways(self):
        cache = FakeCache()
        cache.store["key-u"] = "stale-should-not-be-served"
        results, report = execute_cells([UncacheableCell("u")], cache=cache)
        assert results == {"key-u": "result-u"}
        assert cache.gets == [] and cache.puts == []
        assert report.cache_hits == 0 and report.computed == 1


def fake_spec(name, cells):
    return ExperimentSpec(
        name=name,
        slug=f"{name}_fake",
        title=lambda scale: f"fake {name} [{scale}]",
        cells=lambda scale: list(cells),
        build=lambda lookup, scale: (
            ["cell", "value"],
            [[cell.label, lookup(cell)] for cell in cells],
        ),
    )


@pytest.fixture
def fake_registry(monkeypatch):
    import repro.eval.experiments as experiments

    registry = {}
    monkeypatch.setattr(experiments, "EXPERIMENT_SPECS", registry)
    return registry


class TestDegradedExperiments:
    def test_failed_cells_degrade_only_their_experiments(
            self, fake_registry, tmp_path):
        fake_registry["zzgood"] = fake_spec("zzgood", [FakeCell("g")])
        fake_registry["zzbad"] = fake_spec(
            "zzbad", [FakeCell("g"), FakeCell("bad", mode="error")])
        tables, report = run_experiments(
            ["zzgood", "zzbad"], scale="tiny", results_dir=tmp_path,
            retries=0, backoff=0.0,
        )
        assert tables["zzgood"] == (["cell", "value"],
                                    [["fake:g", "result-g"]])
        headers, rows = tables["zzbad"]
        assert headers == ["experiment", "status"]
        assert rows == [
            ["zzbad", "DEGRADED: 1 cell(s) failed"],
            ["zzbad", "failed: fake:bad"],
        ]
        assert report.degraded == {"zzbad": ["fake:bad"]}
        # the healthy experiment is persisted; the degraded one is not
        assert (tmp_path / "zzgood_fake.txt").exists()
        assert not (tmp_path / "zzbad_fake.txt").exists()

    def test_degraded_experiment_never_overwrites_good_results(
            self, fake_registry, tmp_path):
        fake_registry["zz"] = fake_spec(
            "zz", [FakeCell("bad", mode="error")])
        stale = tmp_path / "zz_fake.txt"
        stale.write_text("previous good table\n")
        run_experiments(["zz"], scale="tiny", results_dir=tmp_path,
                        retries=0, backoff=0.0)
        assert stale.read_text() == "previous good table\n"

    def test_missing_cell_result_is_a_keyerror(self):
        assert issubclass(MissingCellResult, KeyError)


class TestStableErrors:
    def test_first_line_only(self):
        error = ValueError("first\nsecond line with 0x7fe5ba187e50")
        assert _stable_error(error) == "ValueError: first"

    def test_empty_message(self):
        assert _stable_error(ValueError()) == "ValueError"


class TestCLIExitCode:
    def test_experiments_exit_nonzero_with_failure_summary(
            self, fake_registry, tmp_path, capsys, monkeypatch):
        import repro.eval.report as report_mod

        monkeypatch.setattr(report_mod, "RESULTS_DIR", tmp_path)
        fake_registry["zz"] = fake_spec(
            "zz", [FakeCell("g"), FakeCell("bad", mode="error")])
        from repro.cli import main

        code = main(["experiments", "--only", "zz", "--scale", "tiny",
                     "--no-cache", "--retries", "1", "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILED: 1 cell(s) quarantined after 1 retry(ies):" in err
        assert "[error  ] fake:bad  (attempts=2) ValueError: boom bad" in err
        assert "degraded experiment zz: 1 cell(s) missing" in err

    def test_experiments_exit_zero_when_clean(
            self, fake_registry, tmp_path, capsys, monkeypatch):
        import repro.eval.report as report_mod

        monkeypatch.setattr(report_mod, "RESULTS_DIR", tmp_path)
        fake_registry["zz"] = fake_spec("zz", [FakeCell("g")])
        from repro.cli import main

        code = main(["experiments", "--only", "zz", "--scale", "tiny",
                     "--no-cache", "--quiet"])
        assert code == 0
        assert (tmp_path / "zz_fake.txt").exists()

    def test_unknown_experiment_rejected(self, capsys):
        from repro.cli import main

        code = main(["experiments", "--only", "nope", "--no-cache"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
