"""Translator re-entry baseline and the SDT<->interpreter differential
property test over randomly generated programs."""

from hypothesis import given, settings, strategies as st

from conftest import assert_equivalent, run_minic_sdt
from repro.host.costs import Category
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig

from test_sdt_ibtc import dispatch_source


class TestReentryBaseline:
    def test_every_dispatch_is_a_miss(self):
        result = run_minic_sdt(
            dispatch_source(2, iterations=100),
            SDTConfig(profile=SIMPLE, ib="reentry"),
        )
        dispatches = sum(result.stats.ib_dispatches.values())
        assert result.stats.mechanism["reentry.miss"] == dispatches
        assert result.stats.mechanism["reentry.hit"] == 0

    def test_context_switch_cost_dominates(self):
        result = run_minic_sdt(
            dispatch_source(2, iterations=300),
            SDTConfig(profile=SIMPLE, ib="reentry"),
        )
        breakdown = result.cycles
        assert breakdown[Category.CONTEXT_SWITCH.value] > \
            breakdown[Category.TRANSLATE.value]

    def test_reentry_slower_than_any_cache(self):
        source = dispatch_source(3, iterations=200)
        reentry = run_minic_sdt(source, SDTConfig(profile=SIMPLE, ib="reentry"))
        ibtc = run_minic_sdt(source, SDTConfig(profile=SIMPLE, ib="ibtc"))
        sieve = run_minic_sdt(source, SDTConfig(profile=SIMPLE, ib="sieve"))
        assert reentry.total_cycles > ibtc.total_cycles
        assert reentry.total_cycles > sieve.total_cycles


# -- differential property test ------------------------------------------------

_CONFIGS = [
    SDTConfig(profile=SIMPLE, ib="reentry"),
    SDTConfig(profile=SIMPLE, ib="ibtc", ibtc_entries=16),
    SDTConfig(profile=SIMPLE, ib="sieve", sieve_buckets=8),
    SDTConfig(profile=SIMPLE, ib="ibtc", returns="fast"),
    SDTConfig(profile=SIMPLE, ib="ibtc", returns="shadow", shadow_depth=3),
    SDTConfig(profile=SIMPLE, ib="sieve", returns="retcache",
              retcache_entries=4),
]


def _generated_program(seed: int, targets: int, iters: int, depth: int) -> str:
    """A deterministic random-ish program with all IB kinds."""
    funcs = "".join(
        f"int g{i}(int x) {{ return x * {i + 2} + {seed % 97}; }}\n"
        for i in range(targets)
    )
    table = "int tab[] = { " + ", ".join(
        f"&g{i}" for i in range(targets)
    ) + " };\n"
    return funcs + table + f"""
    int rec(int n) {{
        if (n <= 0) return {seed % 13};
        return rec(n - 1) + n;
    }}
    int pick(int x) {{
        switch (x & 7) {{
        case 0: return 1; case 1: return 3; case 2: return 5;
        case 3: return 7; case 4: return 11; case 5: return 13;
        case 6: return 17; default: return 19;
        }}
    }}
    int main() {{
        int total = {seed & 0xFF};
        int i;
        for (i = 0; i < {iters}; i++) {{
            int f = tab[(i * {seed % 7 + 1}) % {targets}];
            total += f(i) + pick(total) + rec(i % {depth});
            total &= 0xffffff;
        }}
        print_int(total);
        return 0;
    }}
    """


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    targets=st.integers(1, 6),
    iters=st.integers(1, 40),
    depth=st.integers(1, 8),
    config_index=st.integers(0, len(_CONFIGS) - 1),
)
def test_sdt_equivalent_to_interpreter_property(
    seed, targets, iters, depth, config_index
):
    """For random programs and any mechanism, SDT output, exit code and
    retired-instruction count match the reference interpreter exactly."""
    source = _generated_program(seed, targets, iters, depth)
    assert_equivalent(source, _CONFIGS[config_index])
