"""Constant folding / simplification pass."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import compile_source, compile_to_program
from repro.lang.nodes import Binary, IntLit, Return
from repro.lang.optimize import fold_expr, optimize_unit
from repro.lang.parser import parse
from repro.machine.interpreter import run_program

from test_lang_properties import evaluate, expr_strategy, render, _VARS


def fold_of(expr_text: str):
    """Parse `return <expr>;` inside main and fold the expression."""
    unit = parse(f"int main() {{ return {expr_text}; }}")
    ret = unit.functions[0].body.stmts[0]
    assert isinstance(ret, Return)
    return fold_expr(ret.value)


def run_both(source: str) -> None:
    plain = run_program(compile_to_program(source, optimize=False))
    optimized = run_program(compile_to_program(source, optimize=True))
    assert optimized.output == plain.output
    assert optimized.exit_code == plain.exit_code


class TestExpressionFolding:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("2 + 3 * 4", 14),
            ("(10 - 4) / 2", 3),
            ("-7 / 2", -3),
            ("-7 % 2", -1),
            ("1 << 10", 1024),
            ("-1 >>> 28", 15),
            ("~0", -1),
            ("!5", 0),
            ("- -5", 5),
            ("3 < 4", 1),
            ("0x7fffffff + 1", -2147483648),
            ("0 && 99", 0),
            ("1 || 99", 1),
            ("1 ? 7 : 8", 7),
            ("0 ? 7 : 8", 8),
        ],
    )
    def test_folds_to_constant(self, text, value):
        folded = fold_of(text)
        assert isinstance(folded, IntLit)
        assert folded.value == value

    def test_division_by_zero_not_folded(self):
        folded = fold_of("5 / 0")
        assert isinstance(folded, Binary)  # must fault at runtime
        folded = fold_of("5 % 0")
        assert isinstance(folded, Binary)

    @pytest.mark.parametrize(
        "text",
        ["x + 0", "x - 0", "x | 0", "x ^ 0", "x << 0", "x * 1", "x / 1",
         "0 + x", "1 * x"],
    )
    def test_identities_collapse_to_variable(self, text):
        unit = parse(f"int main() {{ int x = 1; return {text}; }}")
        ret = unit.functions[0].body.stmts[1]
        folded = fold_expr(ret.value)
        from repro.lang.nodes import Ident

        assert isinstance(folded, Ident)

    def test_mul_zero_pure_operand(self):
        unit = parse("int main() { int x = 1; return x * 0; }")
        folded = fold_expr(unit.functions[0].body.stmts[1].value)
        assert isinstance(folded, IntLit) and folded.value == 0

    def test_mul_zero_effectful_operand_kept(self):
        unit = parse(
            "int f() { return 1; } int main() { return f() * 0; }"
        )
        folded = fold_expr(unit.functions[1].body.stmts[0].value)
        assert isinstance(folded, Binary)  # the call must still happen

    def test_short_circuit_keeps_effectful_rhs(self):
        unit = parse(
            "int f() { return 1; } int main() { return 0 || f(); }"
        )
        folded = fold_expr(unit.functions[1].body.stmts[0].value)
        assert not isinstance(folded, IntLit)


class TestStatementFolding:
    def test_dead_if_branch_removed(self):
        assembly_plain = compile_source(
            "int main() { if (0) print_int(1); print_int(2); return 0; }"
        )
        assembly_opt = compile_source(
            "int main() { if (0) print_int(1); print_int(2); return 0; }",
            optimize=True,
        )
        assert len(assembly_opt) < len(assembly_plain)

    def test_while_zero_removed(self):
        unit = parse("int main() { while (0) print_int(1); return 0; }")
        optimized = optimize_unit(unit)
        assert len(optimized.functions[0].body.stmts) == 1  # just return

    def test_pure_expression_statement_removed(self):
        unit = parse("int main() { 1 + 2; return 0; }")
        optimized = optimize_unit(unit)
        assert len(optimized.functions[0].body.stmts) == 1

    def test_effectful_statement_kept(self):
        unit = parse("int main() { print_int(1); return 0; }")
        optimized = optimize_unit(unit)
        assert len(optimized.functions[0].body.stmts) == 2

    def test_unbraced_decl_arm_not_deleted(self):
        """`if (0) int x;` declares x into the enclosing scope — the
        branch must survive so the later use still compiles."""
        source = "int main() { if (0) int x; x = 5; print_int(x); return 0; }"
        run_both(source)

    def test_for_with_effectful_init_keeps_effect(self):
        source = """
        int calls = 0;
        int touch() { calls++; return 0; }
        int main() {
            for (touch(); 0; ) print_int(9);
            print_int(calls);
            return 0;
        }
        """
        plain = run_program(compile_to_program(source))
        optimized = run_program(compile_to_program(source, optimize=True))
        assert plain.output == optimized.output == "1"


class TestBehaviouralEquivalence:
    PROGRAMS = [
        # dense constant arithmetic
        "int main() { print_int((3 + 4) * (10 - 2) / 4 % 7); return 0; }",
        # folding inside control flow
        """
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 2 + 3; i++) {
                if (1) total += i * (1 + 1);
                else total -= 100;
            }
            print_int(total);
            return 0;
        }
        """,
        # switch on folded selector
        """
        int main() {
            switch (2 * 2) {
            case 4: print_int(42); break;
            default: print_int(0);
            }
            return 0;
        }
        """,
        # recursion and calls survive folding
        """
        int fact(int n) { if (n < 1 + 1) return 1; return n * fact(n - 1); }
        int main() { print_int(fact(6)); return 0; }
        """,
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_same_behaviour(self, source):
        run_both(source)

    def test_optimized_is_smaller_on_constant_heavy_code(self):
        source = "int main() { print_int(((1+2)*(3+4))<<2); return 0; }"
        plain = compile_to_program(source)
        optimized = compile_to_program(source, optimize=True)
        assert len(optimized.text.data) < len(plain.text.data)

    def test_optimized_runs_fewer_instructions(self):
        source = TestBehaviouralEquivalence.PROGRAMS[1]
        plain = run_program(compile_to_program(source))
        optimized = run_program(compile_to_program(source, optimize=True))
        assert optimized.retired < plain.retired


@settings(max_examples=40, deadline=None)
@given(st.lists(expr_strategy, min_size=1, max_size=3))
def test_folding_preserves_semantics_property(expressions):
    """Optimised and unoptimised code agree with the C model on random
    expressions (the optimiser's folding arithmetic is exact)."""
    decls = "".join(f"int {name} = {value};" for name, value in _VARS.items())
    prints = "".join(
        f"print_int({render(e)}); print_char(10);" for e in expressions
    )
    source = decls + "int main() {" + prints + "return 0; }"
    expected = "".join(f"{evaluate(e)}\n" for e in expressions)
    result = run_program(compile_to_program(source, optimize=True))
    assert result.output == expected
