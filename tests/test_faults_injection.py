"""Fault injection: determinism, architectural identity, recovery paths.

The load-bearing property everywhere: a fault plan may change *cycle
counts* but never *architectural results* (output, exit code, retired
instructions) — and with a fixed seed even the cycle counts are exactly
reproducible, across runs and across execution engines.
"""

import pytest

from repro.faults.inject import (
    MAX_TRANSLATE_ATTEMPTS,
    PLAN_PERTURBATIONS,
    FaultInjector,
    tombstone,
)
from repro.faults.plan import FaultPlan
from repro.host.profile import SIMPLE
from repro.sdt.config import SDTConfig
from repro.sdt.stats import SDTStats
from repro.sdt.vm import SDTVM
from repro.workloads import get_workload, workload_names

MECHANISMS = ("reentry", "ibtc", "sieve")
CHAOS = "chaos:1234"


def run_workload(name: str, **config_kwargs):
    config = SDTConfig(profile=SIMPLE, **config_kwargs)
    vm = SDTVM(get_workload(name, "tiny").compile(), config=config)
    return vm, vm.run()


class TestStreams:
    def test_per_site_streams_reproducible(self):
        plan = FaultPlan(seed=42, flush_storm=0.5)
        a = FaultInjector(plan, SDTStats())
        b = FaultInjector(plan, SDTStats())
        assert [a.stream("x").random() for _ in range(5)] == \
            [b.stream("x").random() for _ in range(5)]

    def test_distinct_sites_distinct_streams(self):
        plan = FaultPlan(seed=42, flush_storm=0.5)
        inj = FaultInjector(plan, SDTStats())
        assert inj.stream("ibtc").random() != inj.stream("sieve").random()

    def test_distinct_seeds_distinct_streams(self):
        a = FaultInjector(FaultPlan(seed=1, flush_storm=0.5), SDTStats())
        b = FaultInjector(FaultPlan(seed=2, flush_storm=0.5), SDTStats())
        assert a.stream("x").random() != b.stream("x").random()

    def test_fault_events_are_counted(self):
        stats = SDTStats()
        inj = FaultInjector(FaultPlan(seed=1, flush_storm=1.0), stats)
        assert inj.should_force_flush()
        assert stats.faults["flush_storm"] == 1

    def test_table_event_rates(self):
        stats = SDTStats()
        inj = FaultInjector(FaultPlan(seed=1, table_drop=1.0), stats)
        assert inj.table_event("ibtc") == "drop"
        inj = FaultInjector(FaultPlan(seed=1, table_corrupt=1.0), SDTStats())
        assert inj.table_event("ibtc") == "corrupt"
        inj = FaultInjector(FaultPlan(seed=1, flush_storm=1.0), SDTStats())
        assert inj.table_event("ibtc") is None

    def test_plan_perturbation_always_draws(self):
        """Gate and kind draws are consumed even when the gate misses —
        keeping downstream draws aligned whether or not faults fire."""
        rare = FaultInjector(
            FaultPlan(seed=9, plan_perturb=1e-12), SDTStats()
        )
        always = FaultInjector(
            FaultPlan(seed=9, plan_perturb=1.0), SDTStats()
        )
        assert rare.plan_perturbation() is None
        assert always.plan_perturbation() in PLAN_PERTURBATIONS
        # both consumed exactly two draws from the site stream
        assert rare.stream("plan_perturb").random() == \
            always.stream("plan_perturb").random()

    def test_inactive_plan_perturbation_is_noop(self):
        inj = FaultInjector(FaultPlan(seed=9), SDTStats())
        assert inj.plan_perturbation() is None

    def test_tombstone_preserves_identity_but_not_validity(self):
        from repro.sdt.fragment import ExitKind, Fragment

        frag = Fragment(guest_pc=0x1000, fc_addr=0, instrs=[],
                        exit_kind=ExitKind.JUMP)
        stale = tombstone(frag)
        assert not stale.valid
        assert frag.valid                      # original untouched
        assert stale.guest_pc == frag.guest_pc


class TestArchitecturalIdentity:
    """Acceptance: the full suite × every mechanism, chaos vs clean."""

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_suite_results_identical_under_chaos(self, mechanism):
        for name in workload_names():
            _, clean = run_workload(name, ib=mechanism, faults=None)
            _, chaos = run_workload(name, ib=mechanism, faults=CHAOS)
            assert chaos.output == clean.output, (name, mechanism)
            assert chaos.exit_code == clean.exit_code, (name, mechanism)
            assert chaos.retired == clean.retired, (name, mechanism)

    def test_chaos_perturbs_cycles_deterministically(self):
        _, clean = run_workload("gzip_like", ib="ibtc", faults=None)
        _, first = run_workload("gzip_like", ib="ibtc", faults=CHAOS)
        _, again = run_workload("gzip_like", ib="ibtc", faults=CHAOS)
        assert first.total_cycles != clean.total_cycles
        assert first.total_cycles == again.total_cycles
        assert dict(first.stats.faults) == dict(again.stats.faults)

    def test_seed_changes_the_fault_sequence(self):
        _, a = run_workload("gzip_like", ib="ibtc", faults="chaos:1")
        _, b = run_workload("gzip_like", ib="ibtc", faults="chaos:2")
        assert a.output == b.output            # architecture still equal
        assert dict(a.stats.faults) != dict(b.stats.faults)

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_engines_agree_under_chaos(self, mechanism):
        """Fault draws sit at architectural events, so oracle and
        threaded runs inject the *same* sequence and charge the same
        cycles."""
        for name in ("gzip_like", "perl_like", "vortex_like"):
            _, oracle = run_workload(
                name, ib=mechanism, faults=CHAOS, engine="oracle"
            )
            _, threaded = run_workload(
                name, ib=mechanism, faults=CHAOS, engine="threaded"
            )
            assert oracle.total_cycles == threaded.total_cycles, name
            assert oracle.output == threaded.output
            assert dict(oracle.cycles) == dict(threaded.cycles)


class TestFlushStorms:
    """Acceptance: >= 100 forced flushes, zero stale-pointer violations."""

    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_storm_pressure_stays_coherent(self, mechanism):
        flushes = 0
        checked = 0
        for name in ("gzip_like", "bzip2_like", "vortex_like", "perl_like"):
            vm, result = run_workload(
                name, ib=mechanism, fragment_cache_bytes=1024,
                faults="storm:1234",
            )
            _, clean = run_workload(
                name, ib=mechanism, fragment_cache_bytes=1024, faults=None,
            )
            assert result.output == clean.output, name
            assert result.retired == clean.retired, name
            flushes += result.stats.cache_flushes
            checked += vm.invariant_checker.flushes_checked
            assert vm.invariant_checker.violations == [], name
            assert result.stats.faults.get("invariant.violations", 0) == 0
        assert flushes >= 100
        assert checked == flushes    # every flush was checked


class TestTranslationFaults:
    def test_retry_is_bounded_and_always_makes_progress(self):
        vm, result = run_workload(
            "gzip_like", ib="ibtc",
            faults="seed=1,translate_fail=1.0",
        )
        _, clean = run_workload("gzip_like", ib="ibtc", faults=None)
        assert result.output == clean.output
        stats = result.stats
        # rate 1.0: every injected attempt fails, so each fragment burns
        # the full retry budget before the uninjected final attempt
        per_fragment = MAX_TRANSLATE_ATTEMPTS - 1
        assert stats.faults["translate_fail"] == \
            per_fragment * stats.fragments_translated
        assert stats.faults["translate_retry"] == \
            stats.faults["translate_fail"]

    def test_aborted_attempts_still_cost_cycles(self):
        _, faulted = run_workload(
            "gzip_like", ib="ibtc", faults="seed=1,translate_fail=1.0",
        )
        _, clean = run_workload("gzip_like", ib="ibtc", faults=None)
        from repro.host.costs import Category

        assert faulted.cycles[Category.TRANSLATE.value] > \
            clean.cycles[Category.TRANSLATE.value]


class TestDemotion:
    def test_perturbed_plans_demote_to_oracle(self):
        vm, result = run_workload(
            "gzip_like", ib="ibtc", engine="threaded",
            faults="seed=1,plan_perturb=1.0",
        )
        _, clean = run_workload(
            "gzip_like", ib="ibtc", engine="threaded", faults=None,
        )
        assert result.stats.fragments_demoted > 0
        assert result.stats.faults["demotion"] == \
            result.stats.fragments_demoted
        # demotion is an execution-engine decision: results unchanged
        assert result.output == clean.output
        assert result.total_cycles == clean.total_cycles

    def test_demoted_fragments_stay_demoted(self):
        vm, _ = run_workload(
            "gzip_like", ib="ibtc", engine="threaded",
            faults="seed=1,plan_perturb=1.0",
        )
        demoted = [f for f in vm.cache.fragments() if f.demoted]
        assert demoted
        assert all(f.plan is None for f in demoted)

    def test_oracle_engine_never_demotes(self):
        _, result = run_workload(
            "gzip_like", ib="ibtc", engine="oracle",
            faults="seed=1,plan_perturb=1.0",
        )
        assert result.stats.fragments_demoted == 0
