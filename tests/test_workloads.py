"""Workload suite: registry, determinism, advertised IB profiles."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.machine.interpreter import Interpreter
from repro.workloads import SCALES, get_workload, suite, workload_names
from repro.workloads.base import Workload, register


EXPECTED_NAMES = {
    "bzip2_like", "crafty_like", "eon_like", "gap_like", "gcc_like",
    "gzip_like",
    "mcf_like", "parser_like", "perl_like", "twolf_like", "vortex_like",
    "vpr_like",
}


def run_tiny(name: str):
    workload = get_workload(name, "tiny")
    return Interpreter(workload.compile()).run(fuel=10_000_000)


class TestRegistry:
    def test_all_expected_workloads_registered(self):
        assert set(workload_names()) == EXPECTED_NAMES

    def test_suite_builds_all(self):
        workloads = suite("tiny")
        assert len(workloads) == len(EXPECTED_NAMES)
        assert all(isinstance(w, Workload) for w in workloads)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("spice_like")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_workload("gzip_like", "huge")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register("gzip_like")(lambda scale: None)

    def test_scales_exported(self):
        assert SCALES == ("tiny", "small", "large")


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
class TestEachWorkload:
    def test_compiles_runs_and_exits_cleanly(self, name):
        result = run_tiny(name)
        assert result.exit_code == 0
        assert result.output.strip()  # printed a checksum

    def test_deterministic(self, name):
        assert run_tiny(name).output == run_tiny(name).output

    def test_scales_are_ordered(self, name):
        tiny = get_workload(name, "tiny")
        small = get_workload(name, "small")
        retired_tiny = Interpreter(tiny.compile()).run(20_000_000).retired
        retired_small = Interpreter(small.compile()).run(20_000_000).retired
        assert retired_small > retired_tiny

    def test_metadata(self, name):
        workload = get_workload(name, "tiny")
        assert workload.name == name
        assert workload.spec_analog
        assert workload.ib_profile
        assert workload.description


class TestIBProfiles:
    """Each workload must exhibit the IB mix its docstring advertises —
    that mix is what makes it a valid stand-in for its SPEC analog."""

    def _counts(self, name):
        return run_tiny(name).iclass_counts

    def test_gcc_like_is_ijump_heavy(self):
        counts = self._counts("gcc_like")
        assert counts[InstrClass.IJUMP] > 100
        assert counts[InstrClass.IJUMP] > counts[InstrClass.ICALL]

    def test_perl_like_is_icall_heavy(self):
        counts = self._counts("perl_like")
        assert counts[InstrClass.ICALL] > 100

    def test_eon_like_uses_icalls(self):
        assert self._counts("eon_like")[InstrClass.ICALL] > 50

    def test_vortex_like_uses_icalls(self):
        assert self._counts("vortex_like")[InstrClass.ICALL] > 100

    def test_bzip2_like_comparator_icalls(self):
        assert self._counts("bzip2_like")[InstrClass.ICALL] > 100

    def test_crafty_like_is_return_dominated(self):
        counts = self._counts("crafty_like")
        assert counts[InstrClass.RET] > 100
        assert counts[InstrClass.IJUMP] == 0
        assert counts[InstrClass.ICALL] == 0

    def test_gzip_and_mcf_low_ib_rate(self):
        for name in ("gzip_like", "mcf_like"):
            result = run_tiny(name)
            rate = result.indirect_branches / result.retired
            assert rate < 1 / 80, name

    def test_suite_ib_rates_span_an_order_of_magnitude(self):
        rates = []
        for name in sorted(EXPECTED_NAMES):
            result = run_tiny(name)
            rates.append(result.indirect_branches / result.retired)
        assert max(rates) / min(rates) > 5

    def test_parser_like_mixes_switch_and_recursion(self):
        counts = self._counts("parser_like")
        assert counts[InstrClass.IJUMP] > 20
        assert counts[InstrClass.RET] > 200
