"""Unit tests for the repro.trace observability layer."""

from __future__ import annotations

import json

import pytest

from repro.sdt.config import SDTConfig
from repro.trace.export import (
    chrome_trace_events,
    chrome_trace_json,
    export_files,
    metrics_dict,
    metrics_json,
    slug,
    summary,
)
from repro.trace.session import (
    Histogram,
    MetricsRegistry,
    PHASE_EXECUTE,
    TraceSession,
)
from repro.trace.spec import (
    DEFAULT_RING,
    TraceSpec,
    default_trace_spec,
    parse_trace_spec,
)


class FakeModel:
    """Stand-in for HostModel: a settable cycle counter."""

    def __init__(self) -> None:
        self.total_cycles = 0

    def breakdown(self) -> dict:
        return {}


class TestSpecParsing:
    @pytest.mark.parametrize("word", ["", "off", "none", "0", "OFF", "None"])
    def test_off_words(self, word):
        assert parse_trace_spec(word) is None

    @pytest.mark.parametrize("word", ["on", "1", "true", "ON", "True"])
    def test_on_words(self, word):
        assert parse_trace_spec(word) == TraceSpec()

    def test_none_passthrough(self):
        assert parse_trace_spec(None) is None

    def test_spec_passthrough(self):
        spec = TraceSpec(ring=128)
        assert parse_trace_spec(spec) is spec

    def test_kv_list(self):
        spec = parse_trace_spec("ring=128,dir=results/trace")
        assert spec == TraceSpec(ring=128, dir="results/trace")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_trace_spec("rang=128")

    def test_bad_ring_rejected(self):
        with pytest.raises(ValueError):
            parse_trace_spec("ring=0")
        with pytest.raises(ValueError):
            TraceSpec(ring=-1)

    def test_describe_round_trips(self):
        for spec in (TraceSpec(), TraceSpec(ring=64),
                     TraceSpec(ring=256, dir="x/y")):
            assert parse_trace_spec(spec.describe()) == spec

    def test_default_comes_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert default_trace_spec() is None
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert default_trace_spec() == TraceSpec()
        monkeypatch.setenv("REPRO_TRACE", "ring=32")
        assert default_trace_spec() == TraceSpec(ring=32)

    def test_config_parses_spec_strings(self):
        config = SDTConfig(trace="ring=512")
        assert config.trace == TraceSpec(ring=512)
        assert SDTConfig(trace="off").trace is None
        with pytest.raises(ValueError):
            SDTConfig(trace=123)  # type: ignore[arg-type]

    def test_default_ring_is_sane(self):
        assert DEFAULT_RING >= 1024


class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 5, 8, 9):
            hist.record(value)
        assert hist.buckets == {0: 1, 1: 1, 2: 1, 4: 1, 8: 2, 16: 1}
        assert hist.count == 7
        assert hist.total == 28
        assert hist.min == 0
        assert hist.max == 9
        assert hist.mean == 4.0

    def test_as_dict_sorted_and_jsonable(self):
        hist = Histogram()
        for value in (17, 1, 4):
            hist.record(value)
        data = hist.as_dict()
        assert list(data["buckets"]) == ["1", "4", "32"]
        json.dumps(data)  # must be serialisable

    def test_empty(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.as_dict()["min"] is None

    def test_empty_quantile_is_zero(self):
        # pinned: an empty histogram answers 0 for every quantile —
        # never a stale max or a bucket bound (it used to scan an empty
        # bucket table and fall through)
        hist = Histogram()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0

    def test_truthiness_gates_on_samples(self):
        hist = Histogram()
        assert not hist  # allocated-but-empty == missing for callers
        hist.record(0)
        assert hist  # a recorded zero is still a sample

    def test_quantile_bounds_and_extremes(self):
        hist = Histogram()
        for value in (1, 2, 3, 5, 8):
            hist.record(value)
        assert hist.quantile(0.0) == 1  # clamps to the first sample
        assert hist.quantile(1.0) == 8
        assert hist.quantile(0.5) == 4  # bucket bound for value 3
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.incr("x")
        registry.incr("x", 2)
        registry.histogram("h").record(4)
        data = registry.as_dict()
        assert data["counters"] == {"x": 3}
        assert data["histograms"]["h"]["count"] == 1


class TestTraceSession:
    def test_events_and_counters(self):
        session = TraceSession(FakeModel(), TraceSpec(ring=16))
        session.emit("a", x=1)
        session.emit("a")
        session.emit("b")
        assert session.emitted == 3
        assert session.metrics.counters == {"a": 2, "b": 1}
        assert [kind for _s, _c, kind, _d in session.events] == ["a", "a", "b"]

    def test_ring_eviction_and_dropped(self):
        session = TraceSession(FakeModel(), TraceSpec(ring=4))
        for index in range(10):
            session.emit("e", i=index)
        assert session.emitted == 10
        assert len(session.events) == 4
        assert session.dropped == 6
        # oldest evicted first: the ring holds the newest four
        assert [data["i"] for _s, _c, _k, data in session.events] == \
            [6, 7, 8, 9]

    def test_histogram_fields_feed_histograms(self):
        session = TraceSession(FakeModel(), TraceSpec())
        session.emit("sieve.walk", depth=3)
        session.emit("ibtc.hit", probes=1)
        session.emit("translate.end", instrs=12)
        names = set(session.metrics.histograms)
        assert names == {"sieve.walk.depth", "ibtc.hit.probes",
                         "translate.end.instrs"}

    def test_phase_attribution_telescopes(self):
        model = FakeModel()
        session = TraceSession(model, TraceSpec())
        model.total_cycles = 10          # 10 cycles before any bracket
        session.emit("dispatch.start")   # -> execute gets 10
        model.total_cycles = 17          # 7 cycles inside dispatch
        session.emit("reentry.enter")    # -> dispatch gets 7
        model.total_cycles = 20          # 3 cycles inside translator
        session.emit("translate.start")  # -> translator gets 3
        model.total_cycles = 26          # 6 cycles translating
        session.emit("translate.end")    # -> translate gets 6
        model.total_cycles = 28
        session.emit("reentry.exit")     # -> translator gets 2
        model.total_cycles = 30
        session.emit("dispatch.end")     # -> dispatch gets 2
        model.total_cycles = 35
        session.finish()                 # -> execute gets 5
        assert session.attribution() == {
            "dispatch": 9, "execute": 15, "translate": 6, "translator": 5,
        }
        assert session.total_attributed() == model.total_cycles

    def test_base_phase_never_pops(self):
        session = TraceSession(FakeModel(), TraceSpec())
        session.emit("dispatch.end")  # unmatched pop: must not underflow
        session.emit("dispatch.end")
        model = session.model
        model.total_cycles = 5
        session.finish()
        assert session.attribution() == {PHASE_EXECUTE: 5}

    def test_finish_is_idempotent(self):
        session = TraceSession(FakeModel(), TraceSpec())
        session.finish()
        session.finish()
        assert session.metrics.counters["run.end"] == 1


class TestExporters:
    def _session(self):
        model = FakeModel()
        session = TraceSession(model, TraceSpec(ring=8))
        session.emit("dispatch.start", ib="ret")
        model.total_cycles = 4
        session.emit("dispatch.end", ib="ret")
        model.total_cycles = 9
        session.emit("ibtc.hit", probes=1)
        session.finish()
        return session

    def test_chrome_event_phases(self):
        events = chrome_trace_events(self._session())
        phases = [event["ph"] for event in events]
        assert phases == ["M", "M", "B", "E", "i", "i"]
        begin = events[2]
        assert begin["name"] == "dispatch"
        assert begin["ts"] == 0
        end = events[3]
        assert end["name"] == "dispatch"
        assert end["ts"] == 4

    def test_chrome_json_parses(self):
        payload = json.loads(chrome_trace_json(self._session()))
        assert payload["metadata"]["events_emitted"] == 4
        assert len(payload["traceEvents"]) == 6

    def test_metrics_dict_shape(self):
        data = metrics_dict(self._session(), context={"workload": "w"})
        assert data["attributed_cycles"] == 9
        assert data["phase_cycles"] == {"dispatch": 4, "execute": 5}
        assert data["counters"]["ibtc.hit"] == 1
        assert data["run"] == {"workload": "w"}

    def test_metrics_json_deterministic(self):
        a = metrics_json(self._session())
        b = metrics_json(self._session())
        assert a == b

    def test_slug(self):
        assert slug("ibtc(shared,4096)+ret=fast") == "ibtc_shared_4096_ret_fast"
        assert slug("a b/c") == "a_b_c"

    def test_export_files(self, tmp_path):
        trace_path, metrics_path = export_files(
            self._session(), tmp_path / "out", "stem(1)"
        )
        assert trace_path.name == "stem_1.trace.json"
        assert metrics_path.name == "stem_1.metrics.json"
        json.loads(trace_path.read_text())
        json.loads(metrics_path.read_text())

    def test_summary_reports_exact_attribution(self):
        text = summary(self._session())
        assert "== total (exact)" in text
        assert "ibtc.hit" in text

    def test_every_pop_kind_has_a_slice_name(self):
        # pinned: adding a bracket kind to session.POP_KINDS without
        # teaching the Chrome exporter its slice name crashed export
        # (KeyError on the first tier2.exit event)
        from repro.trace.export import _POP_NAMES
        from repro.trace.session import POP_KINDS, PUSH_PHASES

        assert set(_POP_NAMES) == POP_KINDS
        assert set(_POP_NAMES.values()) == set(PUSH_PHASES.values())


class TestCLI:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "trace", "gzip_like", "--scale", "tiny",
            "--mechanism", "sieve", "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "== total (exact)" in out
        exports = sorted(p.name for p in tmp_path.iterdir())
        assert len(exports) == 2
        assert exports[0].endswith(".metrics.json")
        assert exports[1].endswith(".trace.json")

    def test_run_trace_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        code = main([
            "run", "gzip_like", "--scale", "tiny",
            "--trace", f"dir={tmp_path}",
        ])
        assert code == 0
        assert "trace    :" in capsys.readouterr().out
        assert len(list(tmp_path.iterdir())) == 2
