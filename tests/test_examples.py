"""Smoke tests: every example script runs end-to-end.

Examples are the public-API showcase; breaking one silently would break
the README's promises.  They run here against tiny/fast inputs.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_populated():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "overhead" in out
    assert "checksum" in out


def test_mechanism_shootout(capsys):
    run_example("mechanism_shootout.py", ["eon_like", "tiny"])
    out = capsys.readouterr().out
    assert "shootout" in out
    assert "reentry+nolink" in out


@pytest.mark.slow
def test_custom_mechanism(capsys):
    run_example("custom_mechanism.py")
    out = capsys.readouterr().out
    assert "2-way" in out


def test_cross_architecture(capsys):
    run_example("cross_architecture.py")
    out = capsys.readouterr().out
    assert "sparc_us3" in out
    assert "winner" in out
