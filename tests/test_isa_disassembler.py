"""Disassembler output and assembler/disassembler agreement."""

from hypothesis import given, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_word, format_instruction
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import TEXT_BASE


class TestFormat:
    def test_r_format(self):
        instr = Instruction(Op.ADD, rd=8, rs=9, rt=10)
        assert format_instruction(instr) == "add t0, t1, t2"

    def test_nop_special_case(self):
        assert disassemble_word(0) == "nop"

    def test_memory(self):
        instr = Instruction(Op.LW, rt=31, rs=29, imm=4)
        assert format_instruction(instr) == "lw ra, 4(sp)"

    def test_branch_with_pc(self):
        instr = Instruction(Op.BEQ, rs=8, rt=0, imm=1)
        text = format_instruction(instr, pc=0x1000)
        assert text == "beq t0, zero, 0x1008"

    def test_branch_without_pc(self):
        instr = Instruction(Op.BNE, rs=8, rt=9, imm=-2)
        assert format_instruction(instr) == "bne t0, t1, .-8"

    def test_jump_with_pc(self):
        instr = Instruction(Op.J, imm=TEXT_BASE >> 2)
        assert format_instruction(instr, pc=TEXT_BASE) == f"j {TEXT_BASE:#x}"

    def test_unknown_word(self):
        assert disassemble_word(0xFC000000) == ".word 0xfc000000"

    def test_none_format(self):
        assert format_instruction(Instruction(Op.RET)) == "ret"
        assert format_instruction(Instruction(Op.SYSCALL)) == "syscall"


class TestListing:
    def test_labels_shown(self):
        prog = assemble(".text\nmain:\nnop\nloop:\nj loop\n")
        listing = disassemble(prog.text.data, base=TEXT_BASE,
                              symbols=prog.symbols)
        assert "main:" in listing
        assert "loop:" in listing
        assert "nop" in listing

    def test_addresses_present(self):
        prog = assemble(".text\nnop\nnop\n")
        listing = disassemble(prog.text.data, base=TEXT_BASE)
        assert f"{TEXT_BASE:#010x}" in listing
        assert f"{TEXT_BASE + 4:#010x}" in listing


_SIMPLE_OPS = [
    Instruction(Op.ADD, rd=1, rs=2, rt=3),
    Instruction(Op.ADDI, rt=4, rs=5, imm=-7),
    Instruction(Op.ORI, rt=6, rs=7, imm=0xFF),
    Instruction(Op.SLL, rd=8, rt=9, shamt=4),
    Instruction(Op.LW, rt=10, rs=11, imm=12),
    Instruction(Op.SW, rt=12, rs=13, imm=-16),
    Instruction(Op.JR, rs=14),
    Instruction(Op.JALR, rd=31, rs=15),
    Instruction(Op.LUI, rt=16, imm=0xABC),
]


def test_reassembly_roundtrip():
    """Disassembled text reassembles to identical words (non-branch ops)."""
    source = ".text\n" + "\n".join(
        format_instruction(i) for i in _SIMPLE_OPS
    ) + "\n"
    prog = assemble(source)
    assert prog.text_words() == [encode(i) for i in _SIMPLE_OPS]


@given(st.binary(min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_disassemble_never_crashes(raw):
    """Arbitrary bytes disassemble to text (unknown words as .word)."""
    listing = disassemble(raw, base=0x1000)
    assert isinstance(listing, str)
    assert listing.count("\n") >= len(raw) // 4 - 1
