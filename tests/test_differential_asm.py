"""ISA-level differential testing: interpreter vs SDT on random
straight-line machine code.

Random ALU/shift instruction sequences (no memory, no control flow except
the final halt) must leave *identical register files* under both engines
— this pins the fragment executor to the interpreter at the lowest level,
independent of the MiniC compiler.
"""

from hypothesis import given, settings, strategies as st

from repro.host.profile import SIMPLE
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program, Section, TEXT_BASE
from repro.machine.interpreter import Interpreter
from repro.sdt.config import SDTConfig
from repro.sdt.vm import SDTVM

# registers t0..t7, s0..s7 — avoid sp/fp/ra so the harness stays sane
_REGS = list(range(8, 24))

_reg = st.sampled_from(_REGS)
_imm = st.integers(-0x8000, 0x7FFF)
_shamt = st.integers(0, 31)

_alu_r = st.sampled_from(
    [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT, Op.SLTU,
     Op.MUL, Op.SLLV, Op.SRLV, Op.SRAV]
)
_alu_i = st.sampled_from([Op.ADDI, Op.SLTI, Op.SLTIU])
_shift = st.sampled_from([Op.SLL, Op.SRL, Op.SRA])

_instr = st.one_of(
    st.builds(lambda op, d, a, b: Instruction(op, rd=d, rs=a, rt=b),
              _alu_r, _reg, _reg, _reg),
    st.builds(lambda op, d, a, i: Instruction(op, rt=d, rs=a, imm=i),
              _alu_i, _reg, _reg, _imm),
    st.builds(lambda op, d, a, s: Instruction(op, rd=d, rt=a, shamt=s),
              _shift, _reg, _reg, _shamt),
    st.builds(lambda d, i: Instruction(Op.LUI, rt=d, imm=i),
              _reg, st.integers(0, 0xFFFF)),
)


def _program(instrs: list[Instruction]) -> Program:
    words = bytearray()
    for instr in instrs + [Instruction(Op.HALT)]:
        words.extend(encode(instr).to_bytes(4, "little"))
    return Program(
        text=Section("text", TEXT_BASE, bytes(words)),
        data=Section("data", 0x1000_0000, b""),
        entry=TEXT_BASE,
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(_instr, min_size=1, max_size=40))
def test_register_file_identical(instrs):
    program = _program(instrs)
    interp = Interpreter(program)
    interp.run()

    vm = SDTVM(program, SDTConfig(profile=SIMPLE, max_fragment_instrs=8))
    vm.run()

    assert vm.cpu.regs == interp.cpu.regs
    assert vm.retired == interp.retired


@settings(max_examples=20, deadline=None)
@given(st.lists(_instr, min_size=1, max_size=20),
       st.integers(1, 4))
def test_fragment_length_never_matters(instrs, max_len):
    """Register state is invariant under fragment-length choices."""
    program = _program(instrs)
    reference = SDTVM(program, SDTConfig(profile=SIMPLE))
    reference.run()
    chopped = SDTVM(
        program, SDTConfig(profile=SIMPLE, max_fragment_instrs=max_len)
    )
    chopped.run()
    assert chopped.cpu.regs == reference.cpu.regs
