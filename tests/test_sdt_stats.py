"""SDTStats bookkeeping."""

from repro.sdt.stats import SDTStats


class TestHitRate:
    def test_no_traffic_is_zero(self):
        stats = SDTStats()
        assert stats.hit_rate("ibtc-shared-64") == 0.0

    def test_ratio(self):
        stats = SDTStats()
        stats.mechanism["m.hit"] = 9
        stats.mechanism["m.miss"] = 1
        assert stats.hit_rate("m") == 0.9

    def test_all_misses(self):
        stats = SDTStats()
        stats.mechanism["m.miss"] = 5
        assert stats.hit_rate("m") == 0.0


class TestAsDict:
    def test_keys_and_nested_counters(self):
        stats = SDTStats()
        stats.fragments_translated = 3
        stats.ib_dispatches["ret"] = 7
        stats.mechanism["m.hit"] = 2
        snapshot = stats.as_dict()
        assert snapshot["fragments_translated"] == 3
        assert snapshot["ib_dispatches"] == {"ret": 7}
        assert snapshot["mechanism"] == {"m.hit": 2}
        assert set(snapshot) == {
            "fragments_translated",
            "instrs_translated",
            "cache_flushes",
            "links_patched",
            "translator_reentries",
            "fragments_demoted",
            "ib_dispatches",
            "mechanism",
            "faults",
            "static",
            "coherence",
            "tier2",
        }

    def test_snapshot_is_detached(self):
        stats = SDTStats()
        snapshot = stats.as_dict()
        stats.ib_dispatches["ret"] = 1
        assert snapshot["ib_dispatches"] == {}
