"""Register name/number mapping."""

import pytest

from repro.isa.registers import (
    CALLEE_SAVED,
    CALLER_SAVED,
    NUM_REGS,
    REG_FP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    reg_name,
    reg_number,
)


class TestRegNumber:
    def test_numeric_names(self):
        assert reg_number("r0") == 0
        assert reg_number("r31") == 31
        assert reg_number("R15") == 15

    def test_aliases(self):
        assert reg_number("zero") == REG_ZERO == 0
        assert reg_number("sp") == REG_SP == 29
        assert reg_number("fp") == REG_FP == 30
        assert reg_number("ra") == REG_RA == 31
        assert reg_number("v0") == 2
        assert reg_number("a3") == 7
        assert reg_number("t7") == 15
        assert reg_number("t8") == 24
        assert reg_number("s0") == 16

    def test_dollar_prefix(self):
        assert reg_number("$sp") == 29
        assert reg_number("$r4") == 4

    def test_whitespace_tolerated(self):
        assert reg_number("  t0 ") == 8

    @pytest.mark.parametrize("bad", ["r32", "r-1", "x5", "", "t10", "$"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            reg_number(bad)


class TestRegName:
    def test_roundtrip_all(self):
        for num in range(NUM_REGS):
            assert reg_number(reg_name(num)) == num

    def test_canonical_aliases(self):
        assert reg_name(0) == "zero"
        assert reg_name(29) == "sp"
        assert reg_name(31) == "ra"

    @pytest.mark.parametrize("bad", [-1, 32, 100])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            reg_name(bad)


class TestABISets:
    def test_disjoint(self):
        assert not set(CALLEE_SAVED) & set(CALLER_SAVED)

    def test_callee_saved_contents(self):
        assert REG_SP in CALLEE_SAVED
        assert REG_FP in CALLEE_SAVED
        assert all(16 <= r <= 23 or r >= 28 for r in CALLEE_SAVED)

    def test_caller_saved_contains_temps_and_args(self):
        assert 8 in CALLER_SAVED  # t0
        assert 4 in CALLER_SAVED  # a0
        assert 2 in CALLER_SAVED  # v0
