"""Closure compiler + superblock unit tests (repro.machine.engine).

Every specialised closure must match :func:`repro.machine.executor.execute`
bit-for-bit; these tests drive each opcode through both paths on
randomised machine state and compare the complete architectural outcome.
"""

from __future__ import annotations

import random

import pytest

from repro.host.costs import HostModel, NativeCostObserver
from repro.host.profile import SIMPLE
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_TABLE, Fmt, InstrClass, Op
from repro.machine.cpu import CPUState
from repro.machine.engine import (
    ENGINES,
    MAX_SUPERBLOCK_INSTRS,
    Superblock,
    compile_block,
    compile_instr,
    default_engine,
    resolve_engine,
)
from repro.machine.errors import DivideByZeroFault, FuelExhausted, MemoryFault
from repro.machine.executor import execute
from repro.machine.interpreter import Interpreter
from repro.machine.memory import Memory
from repro.machine.syscalls import SyscallHandler

from conftest import run_minic

PC = 0x0040_0100
MEM_BASE = 0x2000_0000  # scratch data region for load/store operands


def _fresh_state(seed: int) -> tuple[CPUState, Memory, SyscallHandler]:
    rng = random.Random(seed)
    cpu = CPUState(pc=PC)
    for reg in range(1, 32):
        cpu.regs[reg] = rng.getrandbits(32)
    mem = Memory()
    for offset in range(0, 64, 4):
        mem.store_word(MEM_BASE + offset, rng.getrandbits(32))
    return cpu, mem, SyscallHandler()


def _prepare(instr: Instruction, cpu: CPUState, rng: random.Random) -> None:
    """Constrain operands so the instruction cannot fault."""
    op = instr.op
    if OP_TABLE[op].fmt is Fmt.MEM:
        width = {Op.LW: 4, Op.SW: 4, Op.LH: 2, Op.LHU: 2, Op.SH: 2}.get(op, 1)
        aligned = MEM_BASE + rng.randrange(0, 48, width or 1)
        cpu.regs[instr.rs] = (aligned - instr.imm) & 0xFFFFFFFF
    elif op in (Op.DIV, Op.REM) and cpu.regs[instr.rt] == 0:
        cpu.regs[instr.rt] = 7


def _random_instr(op: Op, rng: random.Random) -> Instruction:
    fmt = OP_TABLE[op].fmt
    rd = rng.randrange(1, 32)
    rs = rng.randrange(0, 32)
    rt = rng.randrange(0, 32)
    if fmt is Fmt.R3:
        return Instruction(op=op, rd=rd, rs=rs, rt=rt)
    if fmt is Fmt.SHIFT:
        return Instruction(op=op, rd=rd, rt=rt, shamt=rng.randrange(32))
    if fmt is Fmt.I2:
        imm = rng.randrange(-0x8000, 0x8000)
        if OP_TABLE[op].zero_ext_imm:
            imm = rng.randrange(0, 0x10000)
        return Instruction(op=op, rt=rd, rs=rs, imm=imm)
    if fmt is Fmt.LUI:
        return Instruction(op=op, rt=rd, imm=rng.randrange(0, 0x10000))
    if fmt is Fmt.MEM:
        return Instruction(op=op, rt=rt, rs=rs, imm=rng.randrange(0, 16, 4))
    if fmt is Fmt.BR:
        return Instruction(op=op, rs=rs, rt=rt, imm=rng.randrange(-64, 64))
    if fmt is Fmt.J:
        return Instruction(op=op, imm=(PC + rng.randrange(-64, 64) * 4)
                           % (1 << 28) >> 2)
    if fmt is Fmt.JR:
        return Instruction(op=op, rs=rs)
    if fmt is Fmt.JALR:
        return Instruction(op=op, rd=rd, rs=rs)
    return Instruction(op=op)  # NONE: ret, syscall, halt


def _run_both(instr: Instruction, seed: int):
    """Execute one instruction via oracle and closure on twin states."""
    cpu_a, mem_a, sys_a = _fresh_state(seed)
    cpu_b, mem_b, sys_b = _fresh_state(seed)
    rng = random.Random(seed + 1)
    _prepare(instr, cpu_a, rng)
    _prepare(instr, cpu_b, random.Random(seed + 1))

    cpu_a.pc = PC
    next_a = execute(instr, cpu_a, mem_a, sys_a)
    fn = compile_instr(PC, instr, cpu_b, mem_b, sys_b)
    next_b = fn()

    assert next_a == next_b, f"{instr}: next_pc {next_a:#x} != {next_b:#x}"
    assert cpu_a.regs == cpu_b.regs, f"{instr}: register files diverged"
    for offset in range(0, 64, 4):
        assert (mem_a.load_word(MEM_BASE + offset)
                == mem_b.load_word(MEM_BASE + offset)), instr
    assert sys_a.exit_code == sys_b.exit_code, instr


NON_SYSCALL_OPS = [op for op in Op if op is not Op.SYSCALL]


class TestClosureSemantics:
    @pytest.mark.parametrize("op", NON_SYSCALL_OPS, ids=lambda o: o.value)
    def test_matches_oracle_on_random_state(self, op):
        rng = random.Random(hash(op.value) & 0xFFFF)
        for trial in range(16):
            instr = _random_instr(op, rng)
            _run_both(instr, seed=trial * 1021 + 7)

    def test_write_to_r0_discarded(self):
        for op in (Op.ADD, Op.LW, Op.JALR, Op.LUI, Op.SLL):
            rng = random.Random(3)
            instr = _random_instr(op, rng)
            fields = {
                "op": instr.op, "rd": instr.rd, "rs": instr.rs,
                "rt": instr.rt, "imm": instr.imm, "shamt": instr.shamt,
            }
            if OP_TABLE[op].fmt in (Fmt.I2, Fmt.LUI, Fmt.MEM):
                fields["rt"] = 0
            else:
                fields["rd"] = 0
            _run_both(Instruction(**fields), seed=99)

    def test_jalr_rd_equals_rs_reads_target_first(self):
        _run_both(Instruction(op=Op.JALR, rd=5, rs=5), seed=123)

    def test_divide_by_zero_raises_in_both(self):
        instr = Instruction(op=Op.DIV, rd=3, rs=1, rt=2)
        cpu_a, mem_a, sys_a = _fresh_state(0)
        cpu_b, mem_b, sys_b = _fresh_state(0)
        cpu_a.regs[2] = cpu_b.regs[2] = 0
        cpu_a.pc = PC
        with pytest.raises(DivideByZeroFault):
            execute(instr, cpu_a, mem_a, sys_a)
        fn = compile_instr(PC, instr, cpu_b, mem_b, sys_b)
        with pytest.raises(DivideByZeroFault):
            fn()

    def test_memory_fault_raises_in_both(self):
        instr = Instruction(op=Op.LW, rt=3, rs=1, imm=0)
        for misaligned in (0x2000_0001, 0xFFFF_FFFD):
            cpu_a, mem_a, sys_a = _fresh_state(0)
            cpu_b, mem_b, sys_b = _fresh_state(0)
            cpu_a.regs[1] = cpu_b.regs[1] = misaligned
            cpu_a.pc = PC
            a = b = None
            try:
                execute(instr, cpu_a, mem_a, sys_a)
            except Exception as exc:
                a = type(exc)
            fn = compile_instr(PC, instr, cpu_b, mem_b, sys_b)
            try:
                fn()
            except Exception as exc:
                b = type(exc)
            assert a is not None and a is b


class TestSuperblock:
    def _block(self, ops, class_cycles=None):
        pairs = [
            (PC + 4 * i, Instruction(op=op, rd=1, rs=2, rt=3))
            for i, op in enumerate(ops)
        ]
        cpu, mem, sys_ = _fresh_state(1)
        return Superblock(pairs, cpu, mem, sys_, class_cycles=class_cycles)

    def test_counts_and_cycles(self):
        block = self._block(
            [Op.ADD, Op.ADD, Op.MUL, Op.RET],
            class_cycles=SIMPLE.class_cycles,
        )
        assert block.n == 4
        assert block.class_counts == {
            InstrClass.ALU: 2, InstrClass.MUL: 1, InstrClass.RET: 1,
        }
        expected = (
            2 * SIMPLE.class_cycles[InstrClass.ALU]
            + SIMPLE.class_cycles[InstrClass.MUL]
            + SIMPLE.class_cycles[InstrClass.RET]
        )
        assert block.app_cycles == expected
        assert block.term_iclass is InstrClass.RET
        assert block.term_pc == PC + 12
        assert not block.has_syscall

    def test_syscall_flag(self):
        block = self._block([Op.ADD, Op.SYSCALL, Op.ADD])
        assert block.has_syscall

    def test_without_cost_model(self):
        assert self._block([Op.ADD]).app_cycles == 0

    def test_empty_block_rejected(self):
        cpu, mem, sys_ = _fresh_state(0)
        with pytest.raises(ValueError):
            compile_block([], cpu, mem, sys_)


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("oracle", "threaded", "tier2")

    def test_default_is_threaded(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "threaded"
        assert resolve_engine(None) == "threaded"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "oracle")
        assert resolve_engine(None) == "oracle"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "oracle")
        assert resolve_engine("threaded") == "threaded"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("jit")


SOURCE = r"""
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(12));
    return 0;
}
"""


class TestInterpreterThreaded:
    def _program(self):
        from repro.lang import compile_to_program

        return compile_to_program(SOURCE)

    def test_results_identical(self):
        program = self._program()
        oracle = Interpreter(program, engine="oracle").run()
        threaded = Interpreter(program, engine="threaded").run()
        assert threaded.output == oracle.output
        assert threaded.exit_code == oracle.exit_code
        assert threaded.retired == oracle.retired
        assert threaded.iclass_counts == oracle.iclass_counts

    def test_cycles_identical_with_observer(self):
        program = self._program()
        cycles = {}
        for engine in ENGINES:
            model = HostModel(SIMPLE)
            Interpreter(
                program, observer=NativeCostObserver(model), engine=engine
            ).run()
            cycles[engine] = (model.total_cycles, dict(model.cycles))
        for engine in ENGINES[1:]:
            assert cycles[engine] == cycles["oracle"], engine

    def test_fuel_parity_at_every_boundary(self):
        """Both engines stop at exactly the same retired count."""
        program = self._program()
        full = Interpreter(program, engine="oracle").run().retired
        for fuel in (0, 1, 2, 3, 7, 50, 51, 52, 53, full - 1):
            interps = {
                engine: Interpreter(program, engine=engine)
                for engine in ENGINES
            }
            for engine, interp in interps.items():
                with pytest.raises(FuelExhausted):
                    interp.run(fuel)
                assert interp.retired == fuel, (engine, fuel)
            for engine in ENGINES[1:]:
                assert (interps[engine].iclass_counts
                        == interps["oracle"].iclass_counts), (engine, fuel)

    def test_fuel_exactly_sufficient(self):
        program = self._program()
        full = Interpreter(program, engine="oracle").run().retired
        result = Interpreter(program, engine="threaded").run(full)
        assert result.retired == full

    def test_fault_parity(self):
        """A mid-run fault fires at the same retired count in both engines."""
        from repro.isa.assembler import assemble

        program = assemble("""
        .text
        main:
            li t0, 5
            li t1, 3
            add t2, t0, t1
            lw t3, 1(t0)      # misaligned load faults here
            halt
        """)
        outcomes = {}
        for engine in ENGINES:
            interp = Interpreter(program, engine=engine)
            with pytest.raises(Exception) as excinfo:
                interp.run()
            outcomes[engine] = (type(excinfo.value), interp.retired,
                                interp.cpu.pc)
        for engine in ENGINES[1:]:
            assert outcomes[engine] == outcomes["oracle"], engine

    def test_arbitrary_observer_falls_back_to_oracle(self):
        """Custom observers still see every instruction under threaded."""
        program = self._program()
        seen = []
        Interpreter(
            program,
            observer=lambda pc, instr, next_pc: seen.append(pc),
            engine="threaded",
        ).run()
        reference = Interpreter(program, engine="oracle").run()
        assert len(seen) == reference.retired

    def test_blocks_cached_by_entry_pc(self):
        program = self._program()
        interp = Interpreter(program, engine="threaded")
        interp.run()
        assert interp._blocks  # populated
        assert all(pc == block.entry_pc
                   for pc, block in interp._blocks.items())
        assert all(block.n <= MAX_SUPERBLOCK_INSTRS
                   for block in interp._blocks.values())

    def test_minic_conftest_helper_unchanged(self):
        # the shared helper should keep working whatever the default engine
        assert run_minic(SOURCE).exit_code == 0


class TestMemoryFastPath:
    def test_bounds_and_alignment_error_order(self):
        from repro.machine.errors import AlignmentFault

        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.load_word(0xFFFF_FFFE)  # out of range beats misalignment
        with pytest.raises(AlignmentFault):
            mem.load_word(0x1002)
        with pytest.raises(AlignmentFault):
            mem.store_half(0x1001, 1)
        with pytest.raises(MemoryFault):
            mem.store_word(-4, 1)

    def test_roundtrip(self):
        mem = Memory()
        mem.store_word(0x1000, 0xDEADBEEF)
        assert mem.load_word(0x1000) == 0xDEADBEEF
        mem.store_half(0x1004, 0xBEEF)
        assert mem.load_half(0x1004) == 0xBEEF
        assert mem.load_byte(0x1005) == 0xBE
