"""CFG recovery (repro.analysis.cfg)."""

from repro.analysis.cfg import (
    TERM_BRANCH,
    TERM_CALL,
    TERM_FALL,
    TERM_HALT,
    TERM_IJUMP,
    TERM_JUMP,
    TERM_RET,
    build_cfg,
    terminator_kind,
)
from repro.isa.assembler import assemble
from repro.isa.encoding import decode
from repro.lang import compile_to_program

LOOP_SOURCE = """
.text
main:
    li   t0, 3
loop:
    addi t0, t0, -1
    bne  t0, zero, loop
    jal  helper
    halt
helper:
    jr   ra
"""


class TestBlocks:
    def test_leaders_split_at_branch_targets(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        loop = program.symbol("loop")
        helper = program.symbol("helper")
        assert program.entry in cfg.blocks
        assert loop in cfg.blocks
        assert helper in cfg.blocks

    def test_terminators(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        loop = program.symbol("loop")
        helper = program.symbol("helper")
        kinds = {start: b.terminator for start, b in cfg.blocks.items()}
        assert kinds[program.entry] == TERM_FALL
        assert kinds[loop] == TERM_BRANCH
        assert kinds[helper] == TERM_RET   # jr ra is a return

    def test_branch_successors_include_fallthrough(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        loop = program.symbol("loop")
        block = cfg.blocks[loop]
        assert loop in block.successors        # taken edge
        assert block.end in block.successors   # fall-through edge

    def test_call_block_records_target_and_falls_through(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        helper = program.symbol("helper")
        call_block = next(
            b for b in cfg.blocks.values() if b.terminator == TERM_CALL
        )
        assert call_block.call_target == helper
        assert call_block.successors == (call_block.end,)

    def test_halt_has_no_successors(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        halt_block = next(
            b for b in cfg.blocks.values() if b.terminator == TERM_HALT
        )
        assert halt_block.successors == ()

    def test_block_at_maps_interior_pcs(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        loop = program.symbol("loop")
        assert cfg.block_at(loop + 4).start == loop

    def test_linear_covers_all_text(self):
        program = assemble(LOOP_SOURCE)
        cfg = build_cfg(program)
        assert len(cfg.linear()) == len(program.text_words())


class TestTerminatorKind:
    def test_jr_ra_is_return(self):
        program = assemble(".text\nmain:\njr ra\n")
        instr = decode(program.text_words()[0])
        assert terminator_kind(instr) == TERM_RET

    def test_jr_other_register_is_ijump(self):
        program = assemble(".text\nmain:\njr t0\n")
        instr = decode(program.text_words()[0])
        assert terminator_kind(instr) == TERM_IJUMP

    def test_direct_jump(self):
        program = assemble(".text\nmain:\nj main\n")
        instr = decode(program.text_words()[0])
        assert terminator_kind(instr) == TERM_JUMP


class TestCodeRefs:
    def test_la_materialises_const_code_ref(self):
        program = assemble(
            ".text\nmain:\nla t0, helper\nhalt\nhelper:\njr ra\n"
        )
        cfg = build_cfg(program)
        assert program.symbol("helper") in cfg.const_code_refs

    def test_data_word_pointing_into_text(self):
        program = assemble(
            ".text\nmain:\nhalt\nhelper:\njr ra\n"
            ".data\nptr: .word helper\n"
        )
        cfg = build_cfg(program)
        ptr = program.symbol("ptr")
        assert cfg.data_code_words[ptr] == program.symbol("helper")

    def test_plain_data_word_is_not_a_code_ref(self):
        program = assemble(
            ".text\nmain:\nhalt\n.data\nval: .word 42\n"
        )
        cfg = build_cfg(program)
        assert cfg.data_code_words == {}


class TestReachability:
    def test_unreached_block_not_in_walk(self):
        program = assemble(
            ".text\nmain:\nhalt\ndead:\nnop\nhalt\n"
        )
        cfg = build_cfg(program)
        reached = cfg.reachable_blocks({program.entry})
        assert program.symbol("dead") not in reached

    def test_indirect_successors_extend_walk(self):
        program = assemble(
            ".text\nmain:\njr t0\nisland:\nhalt\n"
        )
        cfg = build_cfg(program)
        island = program.symbol("island")
        jr_pc = program.entry
        without = cfg.reachable_blocks({program.entry})
        assert island not in without
        with_edges = cfg.reachable_blocks(
            {program.entry}, indirect_successors={jr_pc: {island}}
        )
        assert island in with_edges


class TestCompiledPrograms:
    def test_cfg_builds_for_compiled_minic(self):
        program = compile_to_program(
            "int main() { print_int(42); return 0; }"
        )
        cfg = build_cfg(program)
        assert cfg.blocks
        assert cfg.block_at(program.entry) is not None
