"""Fragment cache: allocation, flush policy, hooks."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.sdt.cache import FlushHookError, FragmentCache, FragmentTooLarge
from repro.sdt.fragment import (
    ExitKind,
    FRAGMENT_CACHE_BASE,
    Fragment,
    exit_kind_for,
)
from repro.isa.opcodes import InstrClass


def make_fragment(guest_pc: int, n_instrs: int = 2) -> Fragment:
    instrs = [(guest_pc + 4 * i, Instruction(Op.ADD)) for i in range(n_instrs)]
    return Fragment(guest_pc=guest_pc, fc_addr=0, instrs=instrs,
                    exit_kind=ExitKind.JUMP)


class TestFragment:
    def test_size_estimate(self):
        frag = make_fragment(0x1000, 3)
        assert frag.size_bytes == 3 * 4 + 8
        cond = make_fragment(0x1000, 3)
        cond.exit_kind = ExitKind.COND
        assert cond.size_bytes == 3 * 4 + 16

    def test_exit_site_is_last_instruction(self):
        frag = make_fragment(0x1000, 4)
        frag.fc_addr = 0x100
        assert frag.exit_site == 0x100 + 12

    def test_exit_kind_mapping(self):
        assert exit_kind_for(InstrClass.BRANCH) is ExitKind.COND
        assert exit_kind_for(InstrClass.RET) is ExitKind.RET
        assert exit_kind_for(InstrClass.ICALL) is ExitKind.ICALL
        assert exit_kind_for(InstrClass.HALT) is ExitKind.HALT


class TestCacheAllocation:
    def test_reserve_returns_increasing_addresses(self):
        cache = FragmentCache(capacity=1024)
        first = cache.reserve(16)
        second = cache.reserve(16)
        assert first == FRAGMENT_CACHE_BASE
        assert second == FRAGMENT_CACHE_BASE + 16

    def test_lookup_after_insert(self):
        cache = FragmentCache()
        frag = make_fragment(0x1000)
        frag.fc_addr = cache.reserve(frag.size_bytes)
        cache.insert(frag)
        assert cache.lookup(0x1000) is frag
        assert 0x1000 in cache
        assert cache.lookup(0x2000) is None

    def test_oversized_fragment_rejected(self):
        cache = FragmentCache(capacity=32)
        with pytest.raises(ValueError):
            cache.reserve(64)

    def test_oversized_fragment_error_is_actionable(self):
        """The error must say what happened and how to fix it — a flush
        cannot help, so the caller needs the numbers, not a retry."""
        cache = FragmentCache(capacity=32)
        with pytest.raises(FragmentTooLarge) as excinfo:
            cache.reserve(64)
        err = excinfo.value
        assert (err.size_bytes, err.capacity) == (64, 32)
        assert "64 bytes" in str(err) and "32-byte" in str(err)
        assert "fragment_cache_bytes" in str(err)
        assert isinstance(err, ValueError)      # old catch sites still work

    def test_oversized_check_does_not_flush(self):
        cache = FragmentCache(capacity=32)
        cache.reserve(24)
        with pytest.raises(FragmentTooLarge):
            cache.reserve(64)
        assert cache.stats.cache_flushes == 0   # rejected before flushing
        assert cache.bytes_used == 24           # prior allocation intact

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FragmentCache(capacity=0)


class TestFlush:
    def test_flush_on_capacity(self):
        cache = FragmentCache(capacity=64)
        for i in range(4):
            frag = make_fragment(0x1000 + 0x100 * i)
            frag.fc_addr = cache.reserve(24)
            cache.insert(frag)
        # 3rd/4th reserve must have flushed at least once
        assert cache.stats.cache_flushes >= 1

    def test_flush_invalidates_and_clears(self):
        cache = FragmentCache()
        frag = make_fragment(0x1000)
        other = make_fragment(0x2000)
        frag.links["J"] = other
        frag.fc_addr = cache.reserve(frag.size_bytes)
        cache.insert(frag)
        cache.flush()
        assert not frag.valid
        assert frag.links == {}
        assert len(cache) == 0
        assert cache.bytes_used == 0

    def test_flush_hooks_called(self):
        cache = FragmentCache()
        calls = []
        cache.on_flush(lambda: calls.append(1))
        cache.on_flush(lambda: calls.append(2))
        cache.flush()
        assert calls == [1, 2]

    def test_raising_hook_does_not_mask_later_hooks(self):
        cache = FragmentCache()
        calls = []
        cache.on_flush(lambda: calls.append("first"))
        cache.on_flush(lambda: (_ for _ in ()).throw(RuntimeError("h2")))
        cache.on_flush(lambda: calls.append("third"))
        with pytest.raises(FlushHookError):
            cache.flush()
        assert calls == ["first", "third"]      # every hook still ran
        assert len(cache) == 0                  # and the flush completed

    def test_all_hook_exceptions_aggregated(self):
        cache = FragmentCache()

        def boom(msg):
            raise RuntimeError(msg)

        cache.on_flush(lambda: boom("first failure"))
        cache.on_flush(lambda: boom("second failure"))
        with pytest.raises(FlushHookError) as excinfo:
            cache.flush()
        err = excinfo.value
        assert [str(e) for e in err.errors] == \
            ["first failure", "second failure"]
        assert "2 flush hook(s) raised" in str(err)
        assert "first failure" in str(err) and "second failure" in str(err)

    def test_hook_failure_still_counts_the_flush(self):
        cache = FragmentCache()
        cache.on_flush(lambda: (_ for _ in ()).throw(ValueError("x")))
        with pytest.raises(FlushHookError):
            cache.flush()
        assert cache.stats.cache_flushes == 1

    def test_allocation_restarts_after_flush(self):
        cache = FragmentCache(capacity=1024)
        cache.reserve(100)
        cache.flush()
        assert cache.reserve(16) == FRAGMENT_CACHE_BASE
