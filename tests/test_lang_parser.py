"""MiniC parser: AST shapes and syntax errors."""

import pytest

from repro.lang.errors import ParseError
from repro.lang.nodes import (
    Assign,
    Binary,
    Call,
    ExprStmt,
    For,
    Ident,
    If,
    Index,
    IntLit,
    Return,
    Switch,
    Ternary,
    Unary,
    While,
)
from repro.lang.parser import parse


def parse_stmt(body: str):
    unit = parse("int main() { " + body + " }")
    return unit.functions[0].body.stmts


def parse_expr(text: str):
    stmts = parse_stmt(f"x = {text};")
    assert isinstance(stmts[0], Assign)
    return stmts[0].value


class TestTopLevel:
    def test_function_and_globals(self):
        unit = parse("int g = 5; int a[3]; int main() { return 0; }")
        assert [g.name for g in unit.globals] == ["g", "a"]
        assert unit.functions[0].name == "main"

    def test_params(self):
        unit = parse("int f(int a, int b) { return a; } int main() {}")
        assert unit.functions[0].params == ("a", "b")

    def test_void_function(self):
        unit = parse("void f() {} int main() {}")
        assert unit.functions[0].name == "f"

    def test_void_param_list(self):
        unit = parse("int f(void) { return 1; } int main() {}")
        assert unit.functions[0].params == ()

    def test_prototype_ignored(self):
        unit = parse("int f(int x); int f(int x) { return x; } int main() {}")
        assert len(unit.functions) == 2  # f + main

    def test_global_array_initializer(self):
        unit = parse("int t[] = { 1, -2, &main }; int main() {}")
        decl = unit.globals[0]
        assert decl.array_size == 3
        assert decl.init == (1, -2, "main")

    def test_global_array_partial_init(self):
        unit = parse("int t[8] = { 1, 2 }; int main() {}")
        assert unit.globals[0].array_size == 8
        assert unit.globals[0].init == (1, 2)

    def test_too_many_initializers(self):
        with pytest.raises(ParseError):
            parse("int t[1] = { 1, 2 }; int main() {}")

    def test_unsized_uninitialized_array(self):
        with pytest.raises(ParseError):
            parse("int t[]; int main() {}")


class TestStatements:
    def test_if_else(self):
        stmt = parse_stmt("if (x) y = 1; else y = 2;")[0]
        assert isinstance(stmt, If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")[0]
        assert isinstance(stmt, If)
        assert stmt.otherwise is None
        assert isinstance(stmt.then, If)
        assert stmt.then.otherwise is not None

    def test_while_and_for(self):
        stmts = parse_stmt("while (x) x = x - 1; for (i = 0; i < 3; i++) y = i;")
        assert isinstance(stmts[0], While)
        assert isinstance(stmts[1], For)

    def test_for_with_decl_init(self):
        stmt = parse_stmt("for (int i = 0; i < 3; i++) x = i;")[0]
        assert isinstance(stmt, For)
        assert stmt.init is not None

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_increment_decrement_sugar(self):
        stmts = parse_stmt("i++; j--;")
        assert all(isinstance(s, Assign) for s in stmts)
        assert stmts[0].op == "+=" and stmts[1].op == "-="

    def test_compound_assignment(self):
        stmt = parse_stmt("x *= 3;")[0]
        assert isinstance(stmt, Assign) and stmt.op == "*="

    def test_assign_to_index(self):
        stmt = parse_stmt("a[i + 1] = 5;")[0]
        assert isinstance(stmt.target, Index)

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("(x + 1) = 5;")

    def test_call_statement(self):
        stmt = parse_stmt("f(1, 2);")[0]
        assert isinstance(stmt, ExprStmt)
        assert isinstance(stmt.expr, Call)

    def test_return_with_and_without_value(self):
        stmts = parse_stmt("return; return 5;")
        assert isinstance(stmts[0], Return) and stmts[0].value is None
        assert isinstance(stmts[1].value, IntLit)


class TestSwitch:
    def test_groups_and_fallthrough(self):
        stmt = parse_stmt(
            "switch (x) { case 1: case 2: y = 1; break; default: y = 2; }"
        )[0]
        assert isinstance(stmt, Switch)
        assert stmt.groups[0].values == (1, 2)
        assert stmt.groups[1].is_default

    def test_negative_case_values(self):
        stmt = parse_stmt("switch (x) { case -3: y = 1; }")[0]
        assert stmt.groups[0].values == (-3,)

    def test_char_case_values(self):
        stmt = parse_stmt("switch (x) { case 'a': y = 1; }")[0]
        assert stmt.groups[0].values == (97,)

    def test_statement_before_label_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("switch (x) { y = 1; }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, Binary)
        assert expr.right.value == 3

    def test_comparison_below_logical(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<" and expr.right.op == ">"

    def test_bitwise_precedence_chain(self):
        expr = parse_expr("a | b ^ c & d")
        assert expr.op == "|"
        assert expr.right.op == "^"
        assert expr.right.right.op == "&"

    def test_ternary_right_associative(self):
        expr = parse_expr("a ? 1 : b ? 2 : 3")
        assert isinstance(expr, Ternary)
        assert isinstance(expr.otherwise, Ternary)

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert isinstance(expr, Unary) and expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_unary_plus_is_identity(self):
        expr = parse_expr("+x")
        assert isinstance(expr, Ident)

    def test_address_of(self):
        expr = parse_expr("&f")
        assert isinstance(expr, Unary) and expr.op == "&"

    def test_postfix_chains(self):
        expr = parse_expr("t[i](1)(2)")
        assert isinstance(expr, Call)
        assert isinstance(expr.callee, Call)
        assert isinstance(expr.callee.callee, Index)

    def test_parenthesised(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_shift_precedence(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { if x) {} }",
            "int main() { while (1 {} }",
            "int main() { return 1 }",
            "int main() { x = ; }",
            "int main() { case 1: ; }",
            "int main() { break }",
            "int main() { int a[0]; }",
            "int main() { int a[2] = 5; }",
            "int main() { register int a[2]; }",
            "int 5x() {}",
            "float main() {}",
            "int main() { x = 1 +; }",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse(source)
